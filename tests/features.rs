//! Integration tests for the paper's Section I/II extensions, driven
//! through the facade crate the way a downstream user would:
//! alternative objectives, the satisfiability binary search, rank
//! windows, and the constraint vocabulary — all composed together.

use rankhow::core::extensions::{require_first, require_order, window_ranking};
use rankhow::prelude::*;

/// A small "league table": 8 teams, 3 attributes, given ranking produced
/// by a hidden non-linear function (so the linear fit is imperfect and
/// the objectives genuinely differ).
fn league() -> (Dataset, GivenRanking) {
    let rows = vec![
        vec![22.0, 7.0, 3.0],
        vec![19.0, 9.0, 5.0],
        vec![17.0, 4.0, 9.0],
        vec![15.0, 11.0, 2.0],
        vec![12.0, 3.0, 11.0],
        vec![9.0, 13.0, 6.0],
        vec![7.0, 2.0, 13.0],
        vec![4.0, 6.0, 8.0],
    ];
    // Hidden score: wins² + 2·draws + bonus³/10 — non-linear on purpose.
    let mut scored: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r[0] * r[0] + 2.0 * r[1] + f64::powi(r[2], 3) / 10.0))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut positions = vec![None; rows.len()];
    for (rank, &(idx, _)) in scored.iter().take(6).enumerate() {
        positions[idx] = Some(rank as u32 + 1);
    }
    let data =
        Dataset::from_rows(vec!["wins".into(), "draws".into(), "bonus".into()], rows).unwrap();
    (data, GivenRanking::from_positions(positions).unwrap())
}

fn problem() -> OptProblem {
    let (data, given) = league();
    OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0)).unwrap()
}

#[test]
fn all_three_objectives_solve_and_verify() {
    let base = problem();
    for measure in [
        ErrorMeasure::Position,
        ErrorMeasure::KendallTau,
        ErrorMeasure::TopWeighted,
    ] {
        let p = base.clone().with_objective(measure);
        let sol = RankHow::new().solve(&p).unwrap();
        assert_eq!(
            sol.error,
            p.objective_value(&sol.weights),
            "claim consistency for {measure:?}"
        );
        assert!(
            rankhow::core::verify::verify_claim(&p, &sol.weights, sol.error),
            "exact verification for {measure:?}"
        );
    }
}

#[test]
fn satsearch_and_bnb_agree_through_facade() {
    let p = problem();
    let bnb = RankHow::new().solve(&p).unwrap();
    let sat = SatSearch::new().solve(&p).unwrap();
    assert!(bnb.optimal && sat.optimal);
    assert!(bnb.error <= sat.error);
    if bnb.error < sat.error {
        assert!(rankhow::core::verify::relies_on_gap_band(&p, &bnb.weights));
    }
}

#[test]
fn symgd_improves_or_matches_its_seed_under_every_objective() {
    let base = problem();
    let m = base.m();
    let seed = vec![1.0 / m as f64; m];
    for measure in [
        ErrorMeasure::Position,
        ErrorMeasure::KendallTau,
        ErrorMeasure::TopWeighted,
    ] {
        let p = base.clone().with_objective(measure);
        let seed_value = p.objective_value(&seed);
        let res = SymGd::with_config(SymGdConfig {
            cell_size: 0.3,
            max_iterations: 10,
            ..SymGdConfig::default()
        })
        .solve(&p, &seed)
        .unwrap();
        assert!(
            res.error <= seed_value,
            "{measure:?}: symgd {} worse than its own seed {}",
            res.error,
            seed_value
        );
        assert_eq!(res.error, p.objective_value(&res.weights));
    }
}

#[test]
fn window_fit_ignores_tuples_outside_the_window() {
    // Fit only positions 3–6 of the league ranking (the "university
    // climbing the ranks" use case): tuples ranked 1–2 become ⊥.
    let (data, given) = league();
    let full: Vec<u32> = (0..data.n())
        .map(|i| given.position(i).unwrap_or(u32::MAX))
        .collect();
    // Replace unranked sentinel by a position beyond the window.
    let full: Vec<u32> = full
        .iter()
        .map(|&p| if p == u32::MAX { 99 } else { p })
        .collect();
    let windowed = window_ranking(&full, 3, 6).unwrap();
    assert_eq!(windowed.k(), 4);
    let p =
        OptProblem::with_tolerances(data, windowed, Tolerances::explicit(1e-4, 2e-4, 0.0)).unwrap();
    let sol = RankHow::new().solve(&p).unwrap();
    // The window problem is no harder than the full problem restricted
    // to those tuples; its claim verifies like any other.
    assert!(rankhow::core::verify::verify_claim(
        &p,
        &sol.weights,
        sol.error
    ));
}

#[test]
fn constraint_exploration_loop_composes_with_objectives() {
    // Example 1's loop: solve free, then force an attribute floor, then
    // pin the #1 team — each step under the Kendall tau objective.
    let base = problem().with_objective(ErrorMeasure::KendallTau);
    let free = RankHow::new().solve(&base).unwrap();

    let floored = base
        .clone()
        .with_constraints(WeightConstraints::none().min_weight(0, 0.5))
        .unwrap();
    let floored_sol = RankHow::new().solve(&floored).unwrap();
    assert!(floored_sol.weights[0] >= 0.5 - 1e-6);
    assert!(floored_sol.error >= free.error, "constraints cannot help");

    let top_team = base
        .given
        .top_k()
        .iter()
        .copied()
        .find(|&t| base.given.position(t) == Some(1))
        .unwrap();
    let pinned = base
        .clone()
        .with_constraints(require_first(WeightConstraints::none(), &base, top_team))
        .unwrap();
    match RankHow::new().solve(&pinned) {
        Ok(sol) => {
            let scores = rankhow::ranking::scores_f64(pinned.data.features(), &sol.weights);
            assert_eq!(
                rankhow::ranking::rank_of_in(&scores, top_team, pinned.tol.eps),
                1
            );
        }
        Err(rankhow::core::SolverError::Infeasible) => {} // legitimate
        Err(e) => panic!("unexpected {e}"),
    }
}

#[test]
fn pairwise_order_constraint_respected_by_satsearch() {
    let base = problem();
    // Force tuple 1 above tuple 0 (whatever the given ranking says).
    let constrained = base
        .clone()
        .with_constraints(require_order(
            WeightConstraints::none(),
            &base.data,
            1,
            0,
            base.tol.eps1,
        ))
        .unwrap();
    let sat = SatSearch::new().solve(&constrained).unwrap();
    let scores = rankhow::ranking::scores_f64(constrained.data.features(), &sat.weights);
    assert!(
        scores[1] > scores[0],
        "order constraint violated: {} vs {}",
        scores[1],
        scores[0]
    );
}

#[test]
fn position_error_example2_through_facade() {
    // Example 2: scores [3,2,4,1] on a 4-tuple identity ranking give a
    // total rank-position error of 4.
    let given = GivenRanking::from_positions(vec![Some(1), Some(2), Some(3), Some(4)]).unwrap();
    let ranks = score_ranks(&[3.0, 2.0, 4.0, 1.0], 0.0);
    assert_eq!(position_error(&given, &ranks), 4);
}
