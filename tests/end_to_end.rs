//! End-to-end integration tests spanning every crate: data generation →
//! ranking → problem → solvers → verification, through the public
//! facade API only.

use rankhow::prelude::*;
use rankhow::{baselines, core, data, ranking};
use std::time::Duration;

/// The full pipeline on NBA-like data: generate, rank by the hidden
/// MP·PER function, solve exactly, verify, and beat every baseline.
#[test]
fn nba_pipeline_exact_beats_baselines() {
    let gen = data::nba::generate(400, 11);
    let attrs: Vec<usize> = (0..5).collect();
    let table = gen.dataset.select_attrs(&attrs).min_max_normalized();
    let given = gen.mp_per_ranking(4);
    let problem = OptProblem::with_tolerances(table, given, Tolerances::paper_nba()).unwrap();

    let sol = core::RankHow::with_config(core::SolverConfig {
        time_limit: Some(Duration::from_secs(20)),
        ..core::SolverConfig::default()
    })
    .solve(&problem)
    .unwrap();
    assert_eq!(problem.evaluate(&sol.weights), sol.error);

    // Exact verification accepts the solution (Section V-A contract).
    assert!(core::verify::verify_claim(
        &problem,
        &sol.weights,
        sol.error
    ));

    // Baselines cannot beat it (when the solve was proved optimal).
    if sol.optimal {
        let inst = baselines::Instance::new(problem.data.features(), &problem.given, problem.tol);
        let lr = baselines::linear_regression::fit(
            &inst,
            baselines::linear_regression::Variant::Default,
        );
        let or = baselines::ordinal_regression::fit(
            &inst,
            &baselines::ordinal_regression::config_plus(problem.tol),
        );
        let ada = baselines::adarank::fit(&inst, &baselines::adarank::AdaRankConfig::default());
        for (name, err) in [("LR", lr.error), ("OR", or.error), ("AdaRank", ada.error)] {
            assert!(
                err >= sol.error,
                "{name} ({err}) beat optimal {}",
                sol.error
            );
        }
    }
}

/// SYM-GD with the ordinal seed lands within a small gap of the exact
/// optimum and never below it.
#[test]
fn symgd_pipeline_respects_exact_optimum() {
    let table = data::synthetic::generate(data::synthetic::Distribution::Uniform, 200, 4, 5);
    let given = data::rankfns::sum_pow_ranking(&table, 2, 6);
    let problem = OptProblem::with_tolerances(table, given, Tolerances::paper_synthetic()).unwrap();

    let exact = core::RankHow::with_config(core::SolverConfig {
        time_limit: Some(Duration::from_secs(30)),
        ..core::SolverConfig::default()
    })
    .solve(&problem)
    .unwrap();
    let seed = core::seeding::ordinal_seed(&problem);
    let sym = core::SymGd::with_config(core::SymGdConfig {
        cell_size: 0.1,
        adaptive: true,
        total_time: Some(Duration::from_secs(20)),
        ..core::SymGdConfig::default()
    })
    .solve(&problem, &seed)
    .unwrap();
    if exact.optimal {
        assert!(sym.error >= exact.error);
    }
    assert_eq!(problem.evaluate(&sym.weights), sym.error);
}

/// Constraint-exploration loop (Example 1): each added constraint keeps
/// the solution valid and the error monotone non-decreasing.
#[test]
fn constraint_exploration_loop() {
    let table = data::synthetic::generate(data::synthetic::Distribution::Correlated, 120, 4, 3);
    let given = data::rankfns::sum_pow_ranking(&table, 3, 5);
    let problem =
        OptProblem::with_tolerances(table, given, Tolerances::explicit(1e-6, 1e-4, 0.0)).unwrap();
    let budget = core::SolverConfig {
        time_limit: Some(Duration::from_secs(15)),
        ..core::SolverConfig::default()
    };
    let base = core::RankHow::with_config(budget.clone())
        .solve(&problem)
        .unwrap();

    let mut last_error = base.error;
    for min_w0 in [0.3, 0.5, 0.7] {
        let constrained = problem
            .clone()
            .with_constraints(WeightConstraints::none().min_weight(0, min_w0))
            .unwrap();
        let sol = core::RankHow::with_config(budget.clone())
            .solve(&constrained)
            .unwrap();
        assert!(sol.weights[0] >= min_w0 - 1e-6);
        if base.optimal && sol.optimal {
            assert!(
                sol.error >= base.error,
                "tightening constraints cannot improve the optimum"
            );
        }
        last_error = last_error.max(sol.error);
    }
}

/// The facade's prelude quickstart (mirrors the README snippet).
#[test]
fn facade_quickstart() {
    let table = Dataset::from_rows(
        vec!["A1".into(), "A2".into(), "A3".into()],
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ],
    )
    .unwrap();
    let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
    let problem = OptProblem::new(table, pi).unwrap();
    let solution = RankHow::new().solve(&problem).unwrap();
    assert_eq!(solution.error, 0);

    // Definition 2/3 helpers from the prelude.
    let scores = ranking::scores_f64(problem.data.features(), &solution.weights);
    let ranks = score_ranks(&scores, 0.0);
    assert_eq!(position_error(&problem.given, &ranks), 0);
}

/// CSV round-trip + solve: external data can be loaded and used.
#[test]
fn csv_roundtrip_pipeline() {
    let dir = std::env::temp_dir().join("rankhow_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("table.csv");
    let table = data::synthetic::generate(data::synthetic::Distribution::Uniform, 40, 3, 8);
    table.to_csv(&path).unwrap();
    let loaded = Dataset::from_csv(&path).unwrap();
    assert_eq!(loaded.n(), 40);
    let given = data::rankfns::linear_ranking(&loaded, &[0.5, 0.3, 0.2], 5);
    let problem = OptProblem::new(loaded, given).unwrap();
    let sol = RankHow::new().solve(&problem).unwrap();
    assert_eq!(sol.error, 0, "linear ground truth is recoverable");
    std::fs::remove_file(&path).ok();
}

/// Tolerance machinery: the same instance solved with naive vs safe ε1
/// must never produce an unverifiable claim in the safe configuration
/// (Table III's acceptance criterion).
#[test]
fn tolerance_configurations_verify() {
    let gen = data::nba::generate(300, 17);
    let attrs: Vec<usize> = (0..8).collect();
    let table = gen.dataset.select_attrs(&attrs).min_max_normalized();
    let given = gen.mp_per_ranking(5);
    for tol in [
        Tolerances::paper_nba(),
        Tolerances::explicit(5e-5, 1e-10, 0.0),
    ] {
        let problem = OptProblem::with_tolerances(table.clone(), given.clone(), tol).unwrap();
        let sol = core::RankHow::with_config(core::SolverConfig {
            time_limit: Some(Duration::from_secs(15)),
            ..core::SolverConfig::default()
        })
        .solve(&problem)
        .unwrap();
        let report = core::verify::verify(&problem, &sol.weights).unwrap();
        if tol.eps1 > 1e-6 {
            // Safe gap: claims must survive exact verification.
            assert_eq!(report.exact_error, sol.error, "safe config false positive");
        }
        // Either way the f64 evaluator agrees with itself.
        assert_eq!(problem.evaluate(&sol.weights), sol.error);
    }
}

/// Kendall-tau and top-weighted measures through the extensions API.
#[test]
fn alternative_measures_pipeline() {
    let table = data::synthetic::generate(data::synthetic::Distribution::Uniform, 60, 3, 21);
    let given = data::rankfns::sum_pow_ranking(&table, 4, 8);
    let problem = OptProblem::new(table, given).unwrap();
    let sol = RankHow::new().solve(&problem).unwrap();
    let tau = core::extensions::evaluate_measure(
        &problem,
        &sol.weights,
        ranking::ErrorMeasure::KendallTau,
    );
    let topw = core::extensions::evaluate_measure(
        &problem,
        &sol.weights,
        ranking::ErrorMeasure::TopWeighted,
    );
    // Consistency: zero position error forces zero tau and zero weighted.
    if sol.error == 0 {
        assert_eq!(tau, 0);
        assert_eq!(topw, 0);
    } else {
        assert!(topw >= sol.error, "weights ≥ 1 inflate the weighted sum");
    }
}
