//! Integration tests for the `rankhow` CLI binary.

use std::io::Write;
use std::process::Command;

fn write_csv(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rankhow_cli_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 12-row dataset whose `score` column is a hidden linear function.
fn data_csv() -> String {
    let mut out = String::from("a,b,score\n");
    for i in 0..12 {
        let a = ((i * 7) % 12) as f64;
        let b = ((i * 5) % 12) as f64;
        let score = 0.7 * a + 0.3 * b;
        out.push_str(&format!("{a},{b},{score}\n"));
    }
    out
}

#[test]
fn solves_from_score_column() {
    let dir = temp_dir("score");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "6",
            "--budget",
            "10",
        ])
        .output()
        .expect("run cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("position error: 0"), "{stdout}");
    assert!(stdout.contains("exact verification: PASS"), "{stdout}");
}

#[test]
fn solves_from_ranking_file() {
    let dir = temp_dir("ranking");
    // Attributes only (score column dropped manually here).
    let mut data = String::from("a,b\n");
    let mut ranking = String::from("position\n");
    for i in 0..8 {
        let a = (8 - i) as f64;
        let b = i as f64;
        data.push_str(&format!("{a},{b}\n"));
        // Rank by `a` descending: tuple i has position i+1; bottom 3 ⊥.
        if i < 5 {
            ranking.push_str(&format!("{}\n", i + 1));
        } else {
            ranking.push_str("0\n");
        }
    }
    let data = write_csv(&dir, "data.csv", &data);
    let ranking = write_csv(&dir, "ranking.csv", &ranking);
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--ranking",
            ranking.to_str().unwrap(),
            "--budget",
            "10",
        ])
        .output()
        .expect("run cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("position error: 0"), "{stdout}");
}

#[test]
fn weight_constraints_respected() {
    let dir = temp_dir("constraints");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "4",
            "--min-weight",
            "b=0.4",
            "--budget",
            "10",
        ])
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Extract the reported weight of `b` and check the bound.
    let b_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("b "))
        .expect("b row");
    let w: f64 = b_line.split_whitespace().last().unwrap().parse().unwrap();
    assert!(w >= 0.4 - 1e-6, "{stdout}");
}

#[test]
fn symgd_mode_runs() {
    let dir = temp_dir("symgd");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "6",
            "--symgd",
            "0.2",
            "--budget",
            "10",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("position error:"), "{stdout}");
}

#[test]
fn batch_mode_solves_multiple_queries_on_one_scheduler() {
    let dir = temp_dir("batch");
    let data = write_csv(&dir, "data.csv", &data_csv());
    // Second query: same hidden function over a permuted row subset.
    let mut data2 = String::from("a,b,score\n");
    for i in 0..10 {
        let a = ((i * 3) % 10) as f64;
        let b = ((i * 7) % 10) as f64;
        let score = 0.6 * a + 0.4 * b;
        data2.push_str(&format!("{a},{b},{score}\n"));
    }
    let data2 = write_csv(&dir, "data2.csv", &data2);
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "# two concurrent queries, one pool\n\
             {} --score-col score --k 6 --budget 10\n\
             \n\
             {} --score-col score --k 5 --budget 10\n",
            data.to_str().unwrap(),
            data2.to_str().unwrap()
        ),
    );
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_rankhow"))
            .args(["--batch", batch.to_str().unwrap(), "--threads", "1"])
            .output()
            .expect("run cli")
    };
    let out = run();
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("=== query 1/2:"), "{stdout}");
    assert!(stdout.contains("=== query 2/2:"), "{stdout}");
    assert_eq!(
        stdout.matches("position error: 0 (proved optimal)").count(),
        2,
        "{stdout}"
    );
    assert_eq!(stdout.matches("status: optimal").count(), 2, "{stdout}");
    assert_eq!(
        stdout.matches("exact verification: PASS").count(),
        2,
        "{stdout}"
    );
    // threads=1 batch output is deterministic: a re-run is bit-identical.
    let again = run();
    assert!(again.status.success());
    assert_eq!(
        stdout,
        String::from_utf8_lossy(&again.stdout),
        "threads=1 batch output must be deterministic"
    );
}

#[test]
fn batch_mode_runs_symgd_chains_on_the_pool() {
    let dir = temp_dir("batch_symgd");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{d} --score-col score --k 6 --budget 10\n\
             {d} --score-col score --k 6 --symgd 0.2 --budget 10\n",
            d = data.to_str().unwrap()
        ),
    );
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args(["--batch", batch.to_str().unwrap(), "--threads", "1"])
        .output()
        .expect("run cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("status: optimal"), "{stdout}");
    assert!(stdout.contains("status: symgd ("), "{stdout}");
}

#[test]
fn batch_mode_routes_over_multiple_pools_deterministically() {
    let dir = temp_dir("batch_pools");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let mut data2 = String::from("a,b,score\n");
    for i in 0..10 {
        let a = ((i * 3) % 10) as f64;
        let b = ((i * 7) % 10) as f64;
        let score = 0.6 * a + 0.4 * b;
        data2.push_str(&format!("{a},{b},{score}\n"));
    }
    let data2 = write_csv(&dir, "data2.csv", &data2);
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{} --score-col score --k 6 --budget 10\n\
             {} --score-col score --k 5 --budget 10\n",
            data.to_str().unwrap(),
            data2.to_str().unwrap()
        ),
    );
    // Two pools, one worker each: routed solves must be bit-identical
    // to the single-pool run, and re-runs bit-identical to each other.
    let run = |pools: &str| {
        Command::new(env!("CARGO_BIN_EXE_rankhow"))
            .args([
                "--batch",
                batch.to_str().unwrap(),
                "--threads",
                "1",
                "--pools",
                pools,
            ])
            .output()
            .expect("run cli")
    };
    let sharded = run("2");
    assert!(
        sharded.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    let stdout = String::from_utf8_lossy(&sharded.stdout).to_string();
    assert_eq!(stdout.matches("status: optimal").count(), 2, "{stdout}");
    assert!(
        String::from_utf8_lossy(&sharded.stderr).contains("2 pool(s)"),
        "stderr: {}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    let again = run("2");
    assert_eq!(
        stdout,
        String::from_utf8_lossy(&again.stdout),
        "threads=1 output must be deterministic for any pool count"
    );
    let single = run("1");
    assert_eq!(
        stdout,
        String::from_utf8_lossy(&single.stdout),
        "routing must not change results"
    );
}

#[test]
fn batch_mode_reports_the_malformed_line_number() {
    let dir = temp_dir("batch_lineno");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "# comment line\n\
             {d} --score-col score --k 6\n\
             {d} --score-col score --bogus-flag\n",
            d = data.to_str().unwrap()
        ),
    );
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args(["--batch", batch.to_str().unwrap()])
        .output()
        .expect("run cli");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // 1-based: the bad flag sits on line 3 (after the comment line).
    assert!(stderr.contains("queries.txt:3:"), "stderr: {stderr}");
    assert!(stderr.contains("unknown flag"), "stderr: {stderr}");
}

#[test]
fn batch_mode_rejects_malformed_lines_with_usage_exit() {
    let dir = temp_dir("batch_bad");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{} --score-col score --bogus-flag\n",
            data.to_str().unwrap()
        ),
    );
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args(["--batch", batch.to_str().unwrap()])
        .output()
        .expect("run cli");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn malformed_flags_exit_with_usage_code() {
    let dir = temp_dir("badflag");
    let data = write_csv(&dir, "data.csv", &data_csv());
    // Unknown flag.
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([data.to_str().unwrap(), "--score-col", "score", "--bogus"])
        .output()
        .expect("run cli");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    // Non-numeric value for a numeric flag.
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "many",
        ])
        .output()
        .expect("run cli");
    assert_eq!(out.status.code(), Some(2));
    // Flag at the end with its value missing.
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([data.to_str().unwrap(), "--score-col"])
        .output()
        .expect("run cli");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn router_flags_require_batch_mode() {
    // --pools / --queue-cap / --no-cache / --cache-cap / --retries /
    // --retry-backoff-ms shape the --batch serving topology; on a
    // single query they must be refused, not silently ignored.
    let dir = temp_dir("router_flags");
    let data = write_csv(&dir, "data.csv", &data_csv());
    for flag in [
        &["--pools", "2"][..],
        &["--queue-cap", "4"],
        &["--no-cache"],
        &["--cache-cap", "8"],
        &["--retries", "2"],
        &["--retry-backoff-ms", "5"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
            .args([data.to_str().unwrap(), "--score-col", "score"])
            .args(flag)
            .output()
            .expect("run cli");
        assert_eq!(out.status.code(), Some(2), "{flag:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("only applies to --batch"),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn batch_retry_flags_are_inert_on_healthy_runs() {
    // --retries / --retry-backoff-ms arm the router's re-admission
    // policy; with nothing failing they must not change results, and
    // the --stats fault counters must stay silent.
    let dir = temp_dir("batch_retry");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{} --score-col score --k 6 --budget 10\n",
            data.to_str().unwrap()
        ),
    );
    let run = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_rankhow"))
            .args(["--batch", batch.to_str().unwrap(), "--threads", "1"])
            .args(extra)
            .output()
            .expect("run cli")
    };
    let plain = run(&["--stats"]);
    let retried = run(&["--retries", "3", "--retry-backoff-ms", "5", "--stats"]);
    for out in [&plain, &retried] {
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !String::from_utf8_lossy(&out.stderr).contains("faults:"),
            "healthy runs must not print fault counters: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&retried.stdout),
        "retry policy must not change healthy results"
    );
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Missing file.
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args(["/nonexistent.csv", "--score-col", "x"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());

    // Unknown column.
    let dir = temp_dir("bad");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([data.to_str().unwrap(), "--score-col", "nope"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no column"));
}

#[test]
fn measure_flag_optimizes_the_requested_objective() {
    let dir = temp_dir("measure");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "6",
            "--budget",
            "10",
            "--measure",
            "kendall",
        ])
        .output()
        .expect("run cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The hidden function is linear, so the tau optimum is 0, and the
    // CLI reports the objective under its proper name plus the plain
    // position error for comparability.
    assert!(stdout.contains("kendall-tau error: 0"), "{stdout}");
    assert!(stdout.contains("position error:"), "{stdout}");
    assert!(stdout.contains("exact verification: PASS"), "{stdout}");
}

#[test]
fn stats_flag_prints_lp_telemetry() {
    let dir = temp_dir("stats");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "6",
            "--budget",
            "10",
            "--stats",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The telemetry line carries the LP warm-starting counters.
    assert!(stderr.contains("stats:"), "{stderr}");
    assert!(stderr.contains("warm /"), "{stderr}");
    assert!(stderr.contains("pivots"), "{stderr}");

    // Without the flag, no telemetry is printed.
    let quiet = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "6",
            "--budget",
            "10",
        ])
        .output()
        .expect("run cli");
    assert!(quiet.status.success());
    let stderr = String::from_utf8_lossy(&quiet.stderr);
    assert!(!stderr.contains("stats:"), "{stderr}");
}

#[test]
fn stats_flag_prints_batch_aggregate() {
    let dir = temp_dir("stats_batch");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let queries = format!(
        "{d} --score-col score --k 6 --budget 10\n{d} --score-col score --k 4 --budget 10\n",
        d = data.to_str().unwrap()
    );
    let batch = write_csv(&dir, "queries.txt", &queries);
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            "--batch",
            batch.to_str().unwrap(),
            "--threads",
            "1",
            "--stats",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("router:"), "{stderr}");
    assert!(stderr.contains("stats:"), "{stderr}");
    assert!(stderr.contains("2 job(s)"), "{stderr}");
}

#[test]
fn batch_duplicate_queries_are_cache_invariant() {
    // A batch with repeated identical lines must print byte-identical
    // stdout at --threads 1 whether the cross-query cache serves the
    // repeats or every line solves cold (--no-cache): an exact hit
    // returns the stored solution bit for bit, so caching can never
    // change what the user sees — only how fast it arrives.
    let dir = temp_dir("batch_cache_dup");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let mut data2 = String::from("a,b,score\n");
    for i in 0..10 {
        let a = ((i * 3) % 10) as f64;
        let b = ((i * 7) % 10) as f64;
        let score = 0.6 * a + 0.4 * b;
        data2.push_str(&format!("{a},{b},{score}\n"));
    }
    let data2 = write_csv(&dir, "data2.csv", &data2);
    // Three copies of one query interleaved with a distinct one.
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{d} --score-col score --k 6 --budget 10\n\
             {d} --score-col score --k 6 --budget 10\n\
             {e} --score-col score --k 5 --budget 10\n\
             {d} --score-col score --k 6 --budget 10\n",
            d = data.to_str().unwrap(),
            e = data2.to_str().unwrap()
        ),
    );
    let run = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_rankhow"))
            .args(["--batch", batch.to_str().unwrap(), "--threads", "1"])
            .args(extra)
            .output()
            .expect("run cli")
    };
    let cached = run(&["--stats"]);
    assert!(
        cached.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cached.stderr)
    );
    let cached_stdout = String::from_utf8_lossy(&cached.stdout).to_string();
    assert_eq!(
        cached_stdout.matches("status: optimal").count(),
        4,
        "{cached_stdout}"
    );
    let cold = run(&["--no-cache", "--stats"]);
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(
        cached_stdout,
        String::from_utf8_lossy(&cold.stdout),
        "cache on/off must not change batch output"
    );
    // The cold run's telemetry must not claim any cache traffic.
    let cold_stderr = String::from_utf8_lossy(&cold.stderr);
    assert!(!cold_stderr.contains("cache:"), "{cold_stderr}");
    // Cache-on re-run: still byte-identical (hit timing may vary — the
    // whole batch is spawned before the first completion at tight
    // interleavings — but output never does).
    let again = run(&["--stats"]);
    assert_eq!(cached_stdout, String::from_utf8_lossy(&again.stdout));
}

/// Pull `"key":<integer>` out of a JSON payload without a parser (the
/// build is serde-free; `rankhow::obs::json::validate` checks
/// well-formedness, this digs out the few counters the tests compare).
fn json_u64(payload: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = payload
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {payload}"));
    payload[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer value")
}

#[test]
fn observability_outputs_are_valid_and_reconcile() {
    let dir = temp_dir("obs_single");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let stats_json = dir.join("stats.json");
    let metrics = dir.join("metrics.json");
    let traces = dir.join("traces");
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            data.to_str().unwrap(),
            "--score-col",
            "score",
            "--k",
            "6",
            "--stats",
            "--stats-json",
            stats_json.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            traces.to_str().unwrap(),
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stats:"), "{stderr}");

    let stats_payload = std::fs::read_to_string(&stats_json).expect("stats json written");
    assert!(
        rankhow::obs::json::validate(&stats_payload),
        "{stats_payload}"
    );
    let metrics_payload = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        rankhow::obs::json::validate(&metrics_payload),
        "{metrics_payload}"
    );
    let trace_payload =
        std::fs::read_to_string(traces.join("query-0001.json")).expect("trace written");
    assert!(
        rankhow::obs::json::validate(&trace_payload),
        "{trace_payload}"
    );

    if rankhow::obs::ENABLED {
        // The histogram summary rides --stats only when telemetry is
        // compiled in.
        assert!(stderr.contains("lp solve"), "{stderr}");
        // The reconciliation invariant, end to end through the CLI: the
        // LP-time histogram saw exactly SolverStats::lp_solves entries.
        let lp_solves = json_u64(&stats_payload, "lp_solves");
        assert!(lp_solves > 0);
        let lp_hist = metrics_payload
            .split("\"lp_solve\":")
            .nth(1)
            .expect("lp_solve histogram in metrics");
        assert_eq!(json_u64(lp_hist, "count"), lp_solves);
        // One completed query, one latency entry.
        let latency = metrics_payload
            .split("\"latency\":")
            .nth(1)
            .expect("latency histogram in metrics");
        assert_eq!(json_u64(latency, "count"), 1);
        assert!(
            trace_payload.contains("\"event\":\"admitted\""),
            "{trace_payload}"
        );
        assert!(
            trace_payload.contains("\"event\":\"completed\""),
            "{trace_payload}"
        );
    }
}

#[test]
fn batch_observability_outputs_cover_every_query() {
    let dir = temp_dir("obs_batch");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{0} --score-col score --k 6 --budget 10\n\
             {0} --score-col score --k 5 --budget 10\n",
            data.to_str().unwrap()
        ),
    );
    let stats_json = dir.join("stats.json");
    let metrics = dir.join("metrics.json");
    let traces = dir.join("traces");
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args([
            "--batch",
            batch.to_str().unwrap(),
            "--threads",
            "1",
            "--stats-json",
            stats_json.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            traces.to_str().unwrap(),
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats_payload = std::fs::read_to_string(&stats_json).expect("stats json written");
    assert!(
        rankhow::obs::json::validate(&stats_payload),
        "{stats_payload}"
    );
    assert!(stats_payload.contains("\"router\":"), "{stats_payload}");
    assert!(stats_payload.contains("\"cache\":"), "{stats_payload}");
    let metrics_payload = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        rankhow::obs::json::validate(&metrics_payload),
        "{metrics_payload}"
    );
    // One trace file per direct query, each well-formed.
    for name in ["query-0001.json", "query-0002.json"] {
        let payload = std::fs::read_to_string(traces.join(name)).expect(name);
        assert!(rankhow::obs::json::validate(&payload), "{payload}");
    }
    if rankhow::obs::ENABLED {
        let latency = metrics_payload
            .split("\"latency\":")
            .nth(1)
            .expect("latency histogram in metrics");
        assert_eq!(
            json_u64(latency, "count"),
            2,
            "one latency entry per completed query"
        );
    }
}

#[test]
fn observability_flags_are_process_level_not_batch_line_level() {
    let dir = temp_dir("obs_flags");
    let data = write_csv(&dir, "data.csv", &data_csv());
    let batch = write_csv(
        &dir,
        "queries.txt",
        &format!(
            "{} --score-col score --k 6 --metrics-out nope.json\n",
            data.to_str().unwrap()
        ),
    );
    let out = Command::new(env!("CARGO_BIN_EXE_rankhow"))
        .args(["--batch", batch.to_str().unwrap()])
        .output()
        .expect("run cli");
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed batch line is a usage error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--metrics-out cannot appear inside a batch file"),
        "{stderr}"
    );
}
