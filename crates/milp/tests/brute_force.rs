//! Brute-force cross-validation of the branch-and-bound MILP solver.
//!
//! Small random integer programs are solved twice: by the solver under
//! test and by exhaustive enumeration of every integral assignment
//! (with the continuous part, when present, optimized by a plain LP per
//! assignment). The two must agree on feasibility and on the optimal
//! objective — the solver shares no enumeration code with the oracle,
//! so agreement over hundreds of random programs is strong evidence of
//! correctness.

use proptest::prelude::*;
use rankhow_lp::{Op, Problem as Lp, Sense, Status};
use rankhow_milp::{BnbConfig, MilpProblem, MilpStatus};

/// A random pure-binary program: min/max `c·x` s.t. `A x ≤ b`.
#[derive(Debug, Clone)]
struct BinaryProgram {
    maximize: bool,
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn binary_program() -> impl Strategy<Value = BinaryProgram> {
    (2usize..7, 1usize..4, any::<bool>()).prop_flat_map(|(n, r, maximize)| {
        let costs = prop::collection::vec(-5.0..5.0f64, n);
        let rows = prop::collection::vec((prop::collection::vec(-3.0..3.0f64, n), -2.0..6.0f64), r);
        (costs, rows).prop_map(move |(costs, rows)| BinaryProgram {
            maximize,
            costs,
            rows,
        })
    })
}

fn build(p: &BinaryProgram) -> MilpProblem {
    let sense = if p.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = MilpProblem::new(sense);
    let vars: Vec<_> = p
        .costs
        .iter()
        .enumerate()
        .map(|(i, &c)| m.add_binary(&format!("x{i}"), c))
        .collect();
    for (coefs, rhs) in &p.rows {
        let terms: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
        m.add_constraint(&terms, Op::Le, *rhs);
    }
    m
}

/// Exhaustive oracle over all 2^n assignments.
fn brute_force(p: &BinaryProgram) -> Option<f64> {
    let n = p.costs.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        let feasible = p.rows.iter().all(|(coefs, rhs)| {
            let lhs: f64 = coefs.iter().zip(&x).map(|(c, v)| c * v).sum();
            lhs <= rhs + 1e-9
        });
        if !feasible {
            continue;
        }
        let obj: f64 = p.costs.iter().zip(&x).map(|(c, v)| c * v).sum();
        best = Some(match best {
            None => obj,
            Some(b) => {
                if p.maximize {
                    b.max(obj)
                } else {
                    b.min(obj)
                }
            }
        });
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn binary_programs_match_brute_force(p in binary_program()) {
        let milp = build(&p);
        let sol = milp.solve().unwrap();
        match brute_force(&p) {
            Some(best) => {
                prop_assert_eq!(sol.status, MilpStatus::Optimal);
                prop_assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "solver {} vs oracle {}",
                    sol.objective,
                    best
                );
                // The reported point must be integral and feasible.
                for (i, &v) in sol.x.iter().enumerate() {
                    prop_assert!(
                        (v - v.round()).abs() < 1e-6,
                        "x{i} = {v} not integral"
                    );
                }
            }
            None => prop_assert_eq!(sol.status, MilpStatus::Infeasible),
        }
    }

    #[test]
    fn mixed_programs_match_enumeration_plus_lp(
        n_bin in 2usize..5,
        costs in prop::collection::vec(-4.0..4.0f64, 5),
        link in prop::collection::vec(-2.0..2.0f64, 4),
        rhs in 0.0..4.0f64,
        cont_cost in -3.0..3.0f64,
    ) {
        // min c·x + cont_cost·y  s.t.  link·x + y ≤ rhs,  y ∈ [0, 2].
        let costs = &costs[..n_bin];
        let link = &link[..n_bin];

        let mut m = MilpProblem::new(Sense::Minimize);
        let bins: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_binary(&format!("x{i}"), c))
            .collect();
        let y = m.add_var("y", 0.0, 2.0, cont_cost);
        let mut terms: Vec<_> = bins.iter().copied().zip(link.iter().copied()).collect();
        terms.push((y, 1.0));
        m.add_constraint(&terms, Op::Le, rhs);
        let sol = m.solve().unwrap();

        // Oracle: enumerate binaries, solve the 1-variable LP by hand:
        // y ∈ [0, min(2, rhs − link·x)], pick the end minimizing cost.
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n_bin) {
            let x: Vec<f64> = (0..n_bin).map(|i| ((mask >> i) & 1) as f64).collect();
            let slack: f64 = rhs - link.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
            let y_hi = slack.min(2.0);
            if y_hi < -1e-9 {
                continue; // infeasible even at y = 0
            }
            let y_hi = y_hi.max(0.0);
            let base: f64 = costs.iter().zip(&x).map(|(c, v)| c * v).sum();
            let y_best = if cont_cost < 0.0 { y_hi } else { 0.0 };
            best = best.min(base + cont_cost * y_best);
        }
        if best.is_finite() {
            prop_assert_eq!(sol.status, MilpStatus::Optimal);
            prop_assert!(
                (sol.objective - best).abs() < 1e-6,
                "solver {} vs oracle {}",
                sol.objective,
                best
            );
        } else {
            prop_assert_eq!(sol.status, MilpStatus::Infeasible);
        }
    }

    #[test]
    fn bounded_integers_match_enumeration(
        lo in -3i64..1,
        span in 1i64..5,
        c1 in -3.0..3.0f64,
        c2 in -3.0..3.0f64,
        cap in 0.0..6.0f64,
    ) {
        // min c1·u + c2·v  s.t.  u + v ≤ cap,  u,v ∈ [lo, lo+span] ∩ ℤ.
        let hi = lo + span;
        let mut m = MilpProblem::new(Sense::Minimize);
        let u = m.add_integer("u", lo as f64, hi as f64, c1);
        let v = m.add_integer("v", lo as f64, hi as f64, c2);
        m.add_constraint(&[(u, 1.0), (v, 1.0)], Op::Le, cap);
        let sol = m.solve().unwrap();

        let mut best = f64::INFINITY;
        for uu in lo..=hi {
            for vv in lo..=hi {
                if (uu + vv) as f64 <= cap + 1e-9 {
                    best = best.min(c1 * uu as f64 + c2 * vv as f64);
                }
            }
        }
        if best.is_finite() {
            prop_assert_eq!(sol.status, MilpStatus::Optimal);
            prop_assert!((sol.objective - best).abs() < 1e-6,
                "solver {} vs oracle {}", sol.objective, best);
        } else {
            prop_assert_eq!(sol.status, MilpStatus::Infeasible);
        }
    }

    #[test]
    fn indicator_semantics_hold_at_optimum(
        d0 in -4.0..4.0f64,
        d1 in -4.0..4.0f64,
        threshold in 0.1..1.0f64,
    ) {
        // One weight pair (w0, w1) on the simplex, one indicator δ with
        // δ=1 ⇒ d·w ≥ t and δ=0 ⇒ d·w ≤ 0, objective max δ: the solver
        // may set δ=1 iff some simplex point reaches the threshold.
        let mut m = MilpProblem::new(Sense::Maximize);
        let w0 = m.add_var("w0", 0.0, 1.0, 0.0);
        let w1 = m.add_var("w1", 0.0, 1.0, 0.0);
        let d = m.add_binary("d", 1.0);
        m.add_constraint(&[(w0, 1.0), (w1, 1.0)], Op::Eq, 1.0);
        let big_m = d0.abs().max(d1.abs()) + threshold + 1.0;
        m.add_indicator_ge(d, &[(w0, d0), (w1, d1)], threshold, big_m);
        m.add_indicator_le(d, &[(w0, d0), (w1, d1)], 0.0, big_m);
        let sol = m.solve().unwrap();

        // Over the simplex, d·w ranges over [min(d0,d1), max(d0,d1)].
        // δ=1 is realizable iff the max reaches the threshold; δ=0 iff
        // the min reaches 0. If *neither* holds (0 < d·w < t everywhere)
        // the program is correctly infeasible — the geometric origin of
        // the paper's (ε2, ε1) gap band.
        let can_beat = d0.max(d1) >= threshold;
        let can_miss = d0.min(d1) <= 0.0;
        if !can_beat && !can_miss {
            prop_assert_eq!(sol.status, MilpStatus::Infeasible);
            return Ok(());
        }
        prop_assert_eq!(sol.status, MilpStatus::Optimal);
        let delta = sol.x[d].round() as i64;
        if can_beat {
            prop_assert_eq!(delta, 1, "threshold reachable but δ = 0");
            let dot = d0 * sol.x[w0] + d1 * sol.x[w1];
            prop_assert!(dot >= threshold - 1e-6, "dot {dot} below {threshold}");
        } else {
            prop_assert_eq!(delta, 0);
            let dot = d0 * sol.x[w0] + d1 * sol.x[w1];
            prop_assert!(dot <= 1e-6, "δ=0 but dot {dot} > 0");
        }
    }
}

/// The LP relaxation of an integral-vertex polytope solves the MILP
/// directly; the B&B must not branch at all in that case.
#[test]
fn integral_relaxation_short_circuits() {
    // Assignment-style: x01 + x02 = 1 with binaries — the relaxation
    // polytope has integral vertices.
    let mut m = MilpProblem::new(Sense::Maximize);
    let a = m.add_binary("a", 3.0);
    let b = m.add_binary("b", 1.0);
    m.add_constraint(&[(a, 1.0), (b, 1.0)], Op::Eq, 1.0);
    let sol = m.solve().unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!((sol.objective - 3.0).abs() < 1e-9);
    assert_eq!(sol.stats.nodes_solved, 1, "no branching needed");
}

/// Wide absolute gap stops at the first incumbent good enough — the
/// satisfiability-probe configuration used by the core's SatSearch.
#[test]
fn wide_gap_accepts_early_incumbent() {
    let mut m = MilpProblem::new(Sense::Minimize);
    // Feasibility-style: all costs zero; any integral point is optimal.
    let x = m.add_binary("x", 0.0);
    let y = m.add_binary("y", 0.0);
    m.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Ge, 1.0);
    let sol = m
        .solve_with(&BnbConfig {
            absolute_gap: 0.99,
            ..BnbConfig::default()
        })
        .unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!(sol.has_incumbent);
    assert!(sol.objective.abs() < 1e-9);
}

/// Cross-check a knapsack family against the textbook DP solution.
#[test]
fn knapsack_matches_dynamic_programming() {
    let values = [6.0, 10.0, 12.0, 7.0, 3.0, 9.0];
    let weights = [1.0, 2.0, 3.0, 2.0, 1.0, 3.0];
    for cap in 0..=12 {
        let mut m = MilpProblem::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(&format!("x{i}"), v))
            .collect();
        let terms: Vec<_> = vars.iter().copied().zip(weights.iter().copied()).collect();
        m.add_constraint(&terms, Op::Le, cap as f64);
        let sol = m.solve().unwrap();

        // 0/1 knapsack DP over integral weights.
        let mut dp = vec![0.0f64; cap + 1];
        for (i, &w) in weights.iter().enumerate() {
            let w = w as usize;
            for c in (w..=cap).rev() {
                dp[c] = dp[c].max(dp[c - w] + values[i]);
            }
        }
        assert!(
            (sol.objective - dp[cap]).abs() < 1e-9,
            "cap {cap}: milp {} vs dp {}",
            sol.objective,
            dp[cap]
        );
    }
}

/// The relaxation accessor exposes the underlying LP, whose optimum
/// bounds the integral optimum from the correct side.
#[test]
fn relaxation_bounds_integral_optimum() {
    let mut m = MilpProblem::new(Sense::Maximize);
    let x = m.add_binary("x", 5.0);
    let y = m.add_binary("y", 4.0);
    m.add_constraint(&[(x, 2.0), (y, 3.0)], Op::Le, 4.0);
    let relaxed = m.relaxation().clone().solve().unwrap();
    assert_eq!(relaxed.status, Status::Optimal);
    let integral = m.solve().unwrap();
    assert!(relaxed.objective >= integral.objective - 1e-9);
    assert!((integral.objective - 5.0).abs() < 1e-9, "take x only");
}

/// An unconstrained maximize over binaries with positive costs hits the
/// all-ones vertex without issues (no constraint rows at all).
#[test]
fn no_constraints_edge_case() {
    let mut m = MilpProblem::new(Sense::Maximize);
    let _x = m.add_binary("x", 2.0);
    let _y = m.add_binary("y", 3.0);
    let sol = m.solve().unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!((sol.objective - 5.0).abs() < 1e-9);
}

/// Reference LP used by the mixed-program oracle is itself sane (guards
/// the oracle, not the solver).
#[test]
fn oracle_lp_reference_sane() {
    let mut lp = Lp::new(Sense::Minimize);
    let y = lp.add_var("y", 0.0, 2.0, -1.0);
    lp.add_constraint(&[(y, 1.0)], Op::Le, 1.5);
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.x[y] - 1.5).abs() < 1e-9);
}
