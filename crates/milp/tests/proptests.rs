//! Property tests: branch-and-bound must agree with brute-force
//! enumeration over all 0/1 assignments on small random MILPs.

use proptest::prelude::*;
use rankhow_lp::{Op, Sense, Status};
use rankhow_milp::{MilpProblem, MilpStatus};

#[derive(Debug, Clone)]
struct RandomBinaryMilp {
    objs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // a·x ≤ b
}

fn random_milp() -> impl Strategy<Value = RandomBinaryMilp> {
    (2usize..7, 1usize..5).prop_flat_map(|(n, m)| {
        let objs = prop::collection::vec(-5.0..5.0f64, n);
        let rows = prop::collection::vec((prop::collection::vec(-3.0..3.0f64, n), -2.0..6.0f64), m);
        (objs, rows).prop_map(|(objs, rows)| RandomBinaryMilp { objs, rows })
    })
}

/// Brute-force the optimum over all binary assignments.
fn brute_force(milp: &RandomBinaryMilp) -> Option<f64> {
    let n = milp.objs.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        let feasible = milp
            .rows
            .iter()
            .all(|(a, b)| a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + 1e-9);
        if feasible {
            let obj: f64 = milp.objs.iter().zip(&x).map(|(c, xi)| c * xi).sum();
            best = Some(best.map_or(obj, |b: f64| b.max(obj)));
        }
    }
    best
}

fn build(milp: &RandomBinaryMilp) -> MilpProblem {
    let mut m = MilpProblem::new(Sense::Maximize);
    let vars: Vec<_> = milp
        .objs
        .iter()
        .enumerate()
        .map(|(i, &c)| m.add_binary(&format!("b{i}"), c))
        .collect();
    for (a, b) in &milp.rows {
        let terms: Vec<(usize, f64)> = vars.iter().zip(a).map(|(&v, &c)| (v, c)).collect();
        m.add_constraint(&terms, Op::Le, *b);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bnb_matches_brute_force(milp in random_milp()) {
        let truth = brute_force(&milp);
        let sol = build(&milp).solve().unwrap();
        match truth {
            None => prop_assert_eq!(sol.status, MilpStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status, MilpStatus::Optimal);
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "bnb {} vs brute {}", sol.objective, best);
            }
        }
    }

    #[test]
    fn bnb_solution_is_integral_and_feasible(milp in random_milp()) {
        let m = build(&milp);
        let sol = m.solve().unwrap();
        if sol.status == MilpStatus::Optimal {
            for &xi in &sol.x {
                prop_assert!((xi - xi.round()).abs() < 1e-6);
            }
            prop_assert!(m.relaxation().violation_at(&sol.x) < 1e-6);
        }
    }

    #[test]
    fn relaxation_bounds_milp(milp in random_milp()) {
        // The LP relaxation value is always ≥ the MILP optimum (maximize).
        let m = build(&milp);
        let relax = m.relaxation().solve().unwrap();
        let sol = m.solve().unwrap();
        if sol.status == MilpStatus::Optimal && relax.status == Status::Optimal {
            prop_assert!(relax.objective >= sol.objective - 1e-6);
        }
    }

    #[test]
    fn big_m_indicators_consistent(thresh in 0.2..0.8f64) {
        // δ=1 ⇒ y ≥ thresh; δ=0 ⇒ y ≤ thresh/2. Force each side with the
        // objective and check the implication holds.
        for force_up in [true, false] {
            let mut m = MilpProblem::new(Sense::Maximize);
            let d = m.add_binary("d", if force_up { 1.0 } else { -1.0 });
            let y = m.add_var("y", 0.0, 1.0, 0.001);
            m.add_indicator_ge(d, &[(y, 1.0)], thresh, 2.0);
            m.add_indicator_le(d, &[(y, 1.0)], thresh / 2.0, 2.0);
            let s = m.solve().unwrap();
            prop_assert_eq!(s.status, MilpStatus::Optimal);
            let delta = s.x[d].round() as i32;
            if delta == 1 {
                prop_assert!(s.x[y] >= thresh - 1e-6);
            } else {
                prop_assert!(s.x[y] <= thresh / 2.0 + 1e-6);
            }
        }
    }
}

/// Deterministic regression: a problem where plain rounding of the
/// relaxation is infeasible, so the search must actually branch.
#[test]
fn branching_required_case() {
    let mut m = MilpProblem::new(Sense::Maximize);
    let a = m.add_binary("a", 1.0);
    let b = m.add_binary("b", 1.0);
    let c = m.add_binary("c", 1.0);
    // Pairwise exclusions: at most one of the three.
    m.add_constraint(&[(a, 1.0), (b, 1.0)], Op::Le, 1.0);
    m.add_constraint(&[(b, 1.0), (c, 1.0)], Op::Le, 1.0);
    m.add_constraint(&[(a, 1.0), (c, 1.0)], Op::Le, 1.0);
    let s = m.solve().unwrap();
    assert_eq!(s.status, MilpStatus::Optimal);
    assert!((s.objective - 1.0).abs() < 1e-6);
}

/// Stats sanity on a nontrivial instance.
#[test]
fn stats_reflect_search() {
    let mut m = MilpProblem::new(Sense::Maximize);
    let vars: Vec<_> = (0..10)
        .map(|i| m.add_binary(&format!("b{i}"), (i as f64 * 7.0) % 5.0 + 1.0))
        .collect();
    let terms: Vec<(usize, f64)> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, 1.0 + (i as f64 * 3.0) % 4.0))
        .collect();
    m.add_constraint(&terms, Op::Le, 11.0);
    let s = m.solve().unwrap();
    assert_eq!(s.status, MilpStatus::Optimal);
    assert!(s.stats.nodes_solved >= 1);

    // Brute force the same knapsack.
    let mut best = 0.0f64;
    for mask in 0u32..(1 << 10) {
        let (mut w, mut v) = (0.0, 0.0);
        for i in 0..10 {
            if (mask >> i) & 1 == 1 {
                w += 1.0 + (i as f64 * 3.0) % 4.0;
                v += (i as f64 * 7.0) % 5.0 + 1.0;
            }
        }
        if w <= 11.0 {
            best = best.max(v);
        }
    }
    assert!((s.objective - best).abs() < 1e-6);
}
