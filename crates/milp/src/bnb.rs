//! Branch-and-bound core.

use rankhow_lp::{Op, Problem, Sense, SolveError, Status, VarId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Integrality tolerance: an LP value within this of an integer counts as
/// integral.
const INT_TOL: f64 = 1e-6;

/// Branch-and-bound tuning knobs.
#[derive(Clone, Debug)]
pub struct BnbConfig {
    /// Give up after expanding this many nodes (0 = unlimited).
    pub max_nodes: usize,
    /// Wall-clock limit (None = unlimited).
    pub time_limit: Option<Duration>,
    /// Stop when `|incumbent − best bound|` falls below this.
    pub absolute_gap: f64,
    /// Try the rounding heuristic at every node.
    pub rounding_heuristic: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 2_000_000,
            time_limit: None,
            absolute_gap: 1e-9,
            rounding_heuristic: true,
        }
    }
}

/// Search statistics, useful for the paper's solver-behaviour benches.
#[derive(Clone, Debug, Default)]
pub struct BnbStats {
    /// LP relaxations solved.
    pub nodes_solved: usize,
    /// Nodes pruned by bound.
    pub nodes_pruned: usize,
    /// Incumbents found.
    pub incumbents: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Outcome of a MILP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MilpStatus {
    /// Proven optimal.
    Optimal,
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation is unbounded in the objective direction.
    Unbounded,
    /// Stopped at a limit; `x`/`objective` hold the best incumbent if any.
    LimitReached,
}

/// MILP solution.
#[derive(Clone, Debug)]
pub struct MilpSolution {
    /// Outcome classification.
    pub status: MilpStatus,
    /// Best point found (meaningful for `Optimal` and for `LimitReached`
    /// when `has_incumbent`).
    pub x: Vec<f64>,
    /// Its objective value in the problem's sense.
    pub objective: f64,
    /// Whether `x` is an actual incumbent (always true for `Optimal`).
    pub has_incumbent: bool,
    /// Search statistics.
    pub stats: BnbStats,
}

/// A mixed-integer linear program.
#[derive(Clone, Debug)]
pub struct MilpProblem {
    lp: Problem,
    sense: Sense,
    integer: Vec<VarId>,
    is_integer: Vec<bool>,
}

impl MilpProblem {
    /// New empty problem.
    pub fn new(sense: Sense) -> Self {
        MilpProblem {
            lp: Problem::new(sense),
            sense,
            integer: Vec::new(),
            is_integer: Vec::new(),
        }
    }

    /// Add a continuous variable.
    pub fn add_var(&mut self, name: &str, lo: f64, hi: f64, obj: f64) -> VarId {
        let v = self.lp.add_var(name, lo, hi, obj);
        self.is_integer.push(false);
        v
    }

    /// Add a binary (0/1) variable.
    pub fn add_binary(&mut self, name: &str, obj: f64) -> VarId {
        self.add_integer(name, 0.0, 1.0, obj)
    }

    /// Add a general bounded integer variable.
    pub fn add_integer(&mut self, name: &str, lo: f64, hi: f64, obj: f64) -> VarId {
        let v = self.lp.add_var(name, lo, hi, obj);
        self.is_integer.push(true);
        self.integer.push(v);
        v
    }

    /// Add a linear constraint.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: Op, rhs: f64) {
        self.lp.add_constraint(terms, op, rhs);
    }

    /// Indicator constraint `delta = 1 ⇒ Σ terms ≥ rhs`, encoded as the
    /// big-M row `Σ terms + M·(1−δ) ≥ rhs`. `big_m` must upper-bound
    /// `rhs − Σ terms` over the feasible box.
    pub fn add_indicator_ge(&mut self, delta: VarId, terms: &[(VarId, f64)], rhs: f64, big_m: f64) {
        assert!(self.is_integer[delta], "indicator must be integer");
        let mut row = terms.to_vec();
        row.push((delta, -big_m));
        self.lp.add_constraint(&row, Op::Ge, rhs - big_m);
    }

    /// Indicator constraint `delta = 0 ⇒ Σ terms ≤ rhs`, encoded as the
    /// big-M row `Σ terms − M·δ ≤ rhs`. `big_m` must upper-bound
    /// `Σ terms − rhs` over the feasible box.
    pub fn add_indicator_le(&mut self, delta: VarId, terms: &[(VarId, f64)], rhs: f64, big_m: f64) {
        assert!(self.is_integer[delta], "indicator must be integer");
        let mut row = terms.to_vec();
        row.push((delta, -big_m));
        self.lp.add_constraint(&row, Op::Le, rhs);
    }

    /// Access the underlying relaxation.
    pub fn relaxation(&self) -> &Problem {
        &self.lp
    }

    /// Number of variables (continuous + integer).
    pub fn num_vars(&self) -> usize {
        self.lp.num_vars()
    }

    /// Number of integer variables.
    pub fn num_integers(&self) -> usize {
        self.integer.len()
    }

    /// Solve with default configuration.
    pub fn solve(&self) -> Result<MilpSolution, SolveError> {
        self.solve_with(&BnbConfig::default())
    }

    /// Solve with explicit configuration.
    pub fn solve_with(&self, cfg: &BnbConfig) -> Result<MilpSolution, SolveError> {
        Bnb {
            milp: self,
            cfg,
            start: Instant::now(),
            stats: BnbStats::default(),
        }
        .run()
    }

    fn sense_sign(&self) -> f64 {
        // Internally we minimize `sign * objective`.
        match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        }
    }
}

struct Bnb<'a> {
    milp: &'a MilpProblem,
    cfg: &'a BnbConfig,
    start: Instant,
    stats: BnbStats,
}

/// A node in the search tree: bound overrides on integer variables.
#[derive(Clone, Debug)]
struct Node {
    /// `(var, lo, hi)` overrides accumulated along the path.
    overrides: Vec<(VarId, f64, f64)>,
    /// Parent's relaxation value (internal minimize sense): a valid bound.
    bound: f64,
    depth: usize,
}

/// Heap ordering: lowest bound first (min-heap via reversed comparison),
/// ties broken deepest-first for plunging behaviour.
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.depth == other.0.depth
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: we want the smallest bound on top, so
        // reverse. Among equal bounds prefer deeper nodes (plunge).
        other
            .0
            .bound
            .total_cmp(&self.0.bound)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
    }
}

impl Bnb<'_> {
    fn run(mut self) -> Result<MilpSolution, SolveError> {
        let sign = self.milp.sense_sign();
        let mut incumbent: Option<(Vec<f64>, f64)> = None; // (x, internal obj)
        let mut heap = BinaryHeap::new();
        heap.push(HeapNode(Node {
            overrides: Vec::new(),
            bound: f64::NEG_INFINITY,
            depth: 0,
        }));
        let mut root_unbounded = false;

        while let Some(HeapNode(node)) = heap.pop() {
            if let Some((_, inc)) = &incumbent {
                if node.bound >= *inc - self.cfg.absolute_gap {
                    self.stats.nodes_pruned += 1;
                    continue;
                }
            }
            if self.limits_hit() {
                return Ok(self.finish(incumbent, sign, MilpStatus::LimitReached));
            }

            // Solve the relaxation with this node's bound overrides.
            let mut lp = self.milp.lp.clone();
            let mut empty_box = false;
            for &(v, lo, hi) in &node.overrides {
                let (cur_lo, cur_hi) = lp.bounds(v);
                let nlo = cur_lo.max(lo);
                let nhi = cur_hi.min(hi);
                if nlo > nhi {
                    empty_box = true;
                    break;
                }
                lp.set_bounds(v, nlo, nhi);
            }
            if empty_box {
                self.stats.nodes_pruned += 1;
                continue;
            }
            let relax = lp.solve()?;
            self.stats.nodes_solved += 1;
            match relax.status {
                Status::Infeasible => continue,
                Status::Unbounded => {
                    if node.depth == 0 {
                        root_unbounded = true;
                        break;
                    }
                    // An unbounded child of a bounded parent can only
                    // happen with free continuous vars; treat as bound
                    // −inf and branch on, by falling through with the
                    // point at hand (which is meaningless) — safest is to
                    // just continue searching children of other nodes.
                    continue;
                }
                Status::Optimal => {}
            }
            let internal_obj = sign * relax.objective;
            if let Some((_, inc)) = &incumbent {
                if internal_obj >= *inc - self.cfg.absolute_gap {
                    self.stats.nodes_pruned += 1;
                    continue;
                }
            }

            // Integral already?
            let frac_var = self.most_fractional(&relax.x);
            match frac_var {
                None => {
                    // Integral solution: new incumbent.
                    if incumbent
                        .as_ref()
                        .map_or(true, |(_, inc)| internal_obj < *inc)
                    {
                        incumbent = Some((round_integers(self.milp, &relax.x), internal_obj));
                        self.stats.incumbents += 1;
                    }
                }
                Some((var, val)) => {
                    // Rounding heuristic for an early incumbent.
                    if self.cfg.rounding_heuristic {
                        if let Some((rx, robj)) = self.try_rounding(&lp, &relax.x) {
                            let robj_i = sign * robj;
                            if incumbent.as_ref().map_or(true, |(_, inc)| robj_i < *inc) {
                                incumbent = Some((rx, robj_i));
                                self.stats.incumbents += 1;
                            }
                        }
                    }
                    // Branch.
                    let floor = val.floor();
                    for (lo, hi) in [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)] {
                        let mut overrides = node.overrides.clone();
                        overrides.push((var, lo, hi));
                        heap.push(HeapNode(Node {
                            overrides,
                            bound: internal_obj,
                            depth: node.depth + 1,
                        }));
                    }
                }
            }
        }

        if root_unbounded {
            return Ok(MilpSolution {
                status: MilpStatus::Unbounded,
                x: vec![0.0; self.milp.num_vars()],
                objective: f64::NAN,
                has_incumbent: false,
                stats: self.take_stats(),
            });
        }
        let status = if incumbent.is_some() {
            MilpStatus::Optimal
        } else {
            MilpStatus::Infeasible
        };
        Ok(self.finish(incumbent, sign, status))
    }

    fn finish(
        mut self,
        incumbent: Option<(Vec<f64>, f64)>,
        sign: f64,
        status: MilpStatus,
    ) -> MilpSolution {
        self.stats.elapsed = self.start.elapsed();
        match incumbent {
            Some((x, internal)) => MilpSolution {
                status,
                objective: sign * internal,
                x,
                has_incumbent: true,
                stats: self.stats,
            },
            None => MilpSolution {
                status: if status == MilpStatus::Optimal {
                    MilpStatus::Infeasible
                } else {
                    status
                },
                x: vec![0.0; self.milp.num_vars()],
                objective: f64::NAN,
                has_incumbent: false,
                stats: self.stats,
            },
        }
    }

    fn take_stats(&mut self) -> BnbStats {
        let mut s = std::mem::take(&mut self.stats);
        s.elapsed = self.start.elapsed();
        s
    }

    fn limits_hit(&self) -> bool {
        if self.cfg.max_nodes > 0 && self.stats.nodes_solved >= self.cfg.max_nodes {
            return true;
        }
        if let Some(tl) = self.cfg.time_limit {
            if self.start.elapsed() >= tl {
                return true;
            }
        }
        false
    }

    /// The integer variable whose LP value is farthest from integral.
    fn most_fractional(&self, x: &[f64]) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64, f64)> = None;
        for &v in &self.milp.integer {
            let val = x[v];
            let frac = (val - val.round()).abs();
            if frac > INT_TOL {
                let dist = (val.fract() - 0.5).abs(); // smaller = more fractional
                if best.as_ref().map_or(true, |&(_, _, d)| dist < d) {
                    best = Some((v, val, dist));
                }
            }
        }
        best.map(|(v, val, _)| (v, val))
    }

    /// Round integer vars to nearest and accept if feasible.
    fn try_rounding(&self, lp: &Problem, x: &[f64]) -> Option<(Vec<f64>, f64)> {
        let rx = round_integers(self.milp, x);
        if lp.violation_at(&rx) < 1e-7 {
            let obj = lp.objective_at(&rx);
            Some((rx, obj))
        } else {
            None
        }
    }
}

fn round_integers(milp: &MilpProblem, x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    for &v in &milp.integer {
        out[v] = out[v].round();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_lp::{Op, Sense};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6, binary → a+c = 17? check:
        // a+b: weight 7 >6. a+c: 5 ≤ 6, value 17. b+c: 6 ≤ 6, value 20. ✓
        let mut m = MilpProblem::new(Sense::Maximize);
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        m.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], Op::Le, 6.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!((s.x[b] - 1.0).abs() < 1e-6 && (s.x[c] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn integrality_changes_optimum() {
        // LP relaxation optimum is fractional; MILP must round down.
        // max x s.t. 2x ≤ 3, x integer in [0, 5] → 1 (relaxation: 1.5).
        let mut m = MilpProblem::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 5.0, 1.0);
        m.add_constraint(&[(x, 2.0)], Op::Le, 3.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 2x + y, x binary, y ∈ [0, 10] continuous, x + y ≤ 3.5
        // → x=1, y=2.5, obj 4.5.
        let mut m = MilpProblem::new(Sense::Maximize);
        let x = m.add_binary("x", 2.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Le, 3.5);
        let s = m.solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 4.5).abs() < 1e-6);
        assert!((s.x[x] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 ≤ x ≤ 0.6 has continuous solutions but no integer ones.
        let mut m = MilpProblem::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Op::Ge, 0.4);
        m.add_constraint(&[(x, 1.0)], Op::Le, 0.6);
        let s = m.solve().unwrap();
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn indicator_ge_forces_gap() {
        // δ=1 must force y ≥ 0.8; objective pushes y down but δ up.
        let mut m = MilpProblem::new(Sense::Maximize);
        let d = m.add_binary("d", 1.0);
        let y = m.add_var("y", 0.0, 1.0, -0.1);
        m.add_indicator_ge(d, &[(y, 1.0)], 0.8, 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        // Taking δ=1 costs 0.08 in y but gains 1.0: worth it.
        assert!((s.x[d] - 1.0).abs() < 1e-6);
        assert!(s.x[y] >= 0.8 - 1e-6);
    }

    #[test]
    fn indicator_le_released_when_delta_one() {
        // δ=0 ⇒ y ≤ 0.2. Maximizing y forces δ=1 unless δ is penalized
        // harder than the y gain.
        let mut m = MilpProblem::new(Sense::Maximize);
        let d = m.add_binary("d", -10.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_indicator_le(d, &[(y, 1.0)], 0.2, 2.0);
        let s = m.solve().unwrap();
        // Penalty of 10 outweighs the 0.8 extra y: δ=0, y=0.2.
        assert!((s.x[d]).abs() < 1e-6);
        assert!((s.x[y] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_limit_status() {
        // A problem big enough not to finish in 1 node.
        let mut m = MilpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(&format!("b{i}"), 1.0 + i as f64 * 0.1))
            .collect();
        let terms: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(&terms, Op::Le, 6.5);
        let cfg = BnbConfig {
            max_nodes: 1,
            ..BnbConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert_eq!(s.status, MilpStatus::LimitReached);
    }

    #[test]
    fn equality_with_binaries() {
        // Exactly two of four binaries: maximize weighted sum.
        let mut m = MilpProblem::new(Sense::Maximize);
        let w = [4.0, 1.0, 3.0, 2.0];
        let vars: Vec<_> = (0..4)
            .map(|i| m.add_binary(&format!("b{i}"), w[i]))
            .collect();
        let terms: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(&terms, Op::Eq, 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6); // picks weights 4 and 3
    }

    #[test]
    fn stats_are_populated() {
        let mut m = MilpProblem::new(Sense::Maximize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Op::Le, 1.0);
        let s = m.solve().unwrap();
        assert!(s.stats.nodes_solved >= 1);
        assert!(s.has_incumbent);
    }
}
