//! Mixed-integer linear programming by branch-and-bound.
//!
//! This crate plays the role Gurobi plays in the RankHow paper for the
//! *literal* Equation (2) encoding: binary indicator variables linked to
//! the weight vector through big-M indicator constraints. It is a generic
//! MILP solver — the RankHow core additionally ships a solver specialized
//! to OPT's geometry, and the two are cross-validated against each other
//! in tests.
//!
//! Solver ingredients (the ones Section III-B credits for MILP beating the
//! naive PTIME enumeration):
//! - **best-first search** on the LP relaxation bound with depth-first
//!   plunging to find incumbents early,
//! - **incumbent rounding heuristic** at every node,
//! - **global pruning**: any node whose relaxation bound cannot beat the
//!   incumbent is discarded — this is the "use results from one part of
//!   the search space to rule out others" behaviour,
//! - most-fractional branching.
//!
//! # Example
//! ```
//! use rankhow_lp::{Op, Sense};
//! use rankhow_milp::{MilpProblem, MilpStatus};
//!
//! // max x + y, x,y binary, x + y ≤ 1  → optimum 1.
//! let mut m = MilpProblem::new(Sense::Maximize);
//! let x = m.add_binary("x", 1.0);
//! let y = m.add_binary("y", 1.0);
//! m.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Le, 1.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.status, MilpStatus::Optimal);
//! assert!((sol.objective - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod bnb;

pub use bnb::{BnbConfig, BnbStats, MilpProblem, MilpSolution, MilpStatus};
