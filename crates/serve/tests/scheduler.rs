//! Cross-validation of the job-based scheduler against the blocking
//! solver, plus the serving semantics the scheduler promises:
//! concurrent-job optimum parity, monotone anytime incumbents under
//! cancellation, prompt deadline expiry, and SYM-GD-on-scheduler
//! equivalence.

mod support;

use proptest::prelude::*;
use rankhow_core::{
    OptProblem, RankHow, SolveStatus, SolverConfig, SymGd, SymGdConfig, WeightConstraints,
};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;
use rankhow_serve::Scheduler;
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{blocker_config, blocker_problem, build, light_problem, small_instance};

/// A deeper anti-correlated instance: the search tree survives many
/// node slices, which the cancellation/deadline tests rely on.
fn deep_problem(n: usize, k: usize, twist: u64) -> OptProblem {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                i as f64,
                (n - i) as f64,
                ((i as u64 * (3 + twist % 5)) % 7) as f64,
            ]
        })
        .collect();
    let scores: Vec<f64> = rows.iter().map(|r| r[0] * 0.4 + r[2]).collect();
    let given = GivenRanking::from_scores(&scores, k, 0.0).unwrap();
    let names = vec!["a".into(), "b".into(), "c".into()];
    let data = Dataset::from_rows(names, rows).unwrap();
    OptProblem::new(data, given).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// N ≥ 4 jobs solved concurrently on one scheduler prove the same
    /// *certified* optimum N sequential `RankHow::solve` calls prove,
    /// and every returned weight vector realizes its claimed error.
    ///
    /// Exact error equality is deliberately NOT asserted: the instances
    /// are built with `Tolerances::exact()`, whose (ε2, ε1) = (0, 1e-12)
    /// gap band is excluded from every optimality proof. Two searches
    /// may legitimately return different errors when one's incumbent
    /// sits inside that band (roughly 1% of jobs did, which made the
    /// old `sol.error == seq_err` assertion flaky). What both searches
    /// DO prove is a bracket on the certified optimum C* — the best
    /// error over weight vectors avoiding the band:
    /// `error ≤ C* ≤ certified_error`. The brackets must therefore
    /// overlap in both directions, and when both final answers are
    /// themselves certified they pin C* exactly and must agree.
    #[test]
    fn concurrent_jobs_match_sequential_solves(insts in prop::collection::vec(small_instance(), 4..6)) {
        let problems: Vec<OptProblem> = insts.iter().filter_map(build).collect();
        if problems.len() < 4 {
            return Err(TestCaseError::reject("invalid ranking"));
        }
        let sequential: Vec<rankhow_core::Solution> = problems
            .iter()
            .map(|p| {
                let sol = RankHow::with_config(SolverConfig { threads: 1, ..SolverConfig::default() })
                    .solve(p)
                    .expect("feasible unconstrained instance");
                assert!(sol.optimal);
                sol
            })
            .collect();
        let scheduler = Scheduler::new(4);
        let handles: Vec<_> = problems
            .iter()
            .map(|p| scheduler.spawn(p.clone(), SolverConfig::default()))
            .collect();
        for ((handle, p), seq) in handles.into_iter().zip(&problems).zip(&sequential) {
            let sol = handle.join().expect("feasible unconstrained instance");
            prop_assert!(sol.optimal, "scheduler job must close the tree");
            prop_assert_eq!(sol.status, SolveStatus::Optimal);
            prop_assert_eq!(p.evaluate(&sol.weights), sol.error, "weights do not realize the error");
            // Each search brackets the certified optimum C*:
            // its error is a lower bound, its certified incumbent an
            // upper bound. Cross-check the brackets pairwise.
            prop_assert!(sol.error <= sol.certified_error);
            prop_assert!(seq.error <= seq.certified_error);
            prop_assert!(
                sol.error <= seq.certified_error,
                "scheduler lower bound {} exceeds sequential certified bound {}",
                sol.error, seq.certified_error
            );
            prop_assert!(
                seq.error <= sol.certified_error,
                "sequential lower bound {} exceeds scheduler certified bound {}",
                seq.error, sol.certified_error
            );
            if sol.certified_error != u64::MAX {
                prop_assert_eq!(
                    p.evaluate(&sol.certified_weights), sol.certified_error,
                    "certified incumbent does not realize its error"
                );
                prop_assert!(
                    !rankhow_core::verify::relies_on_gap_band(p, &sol.certified_weights),
                    "certified incumbent relies on the gap band"
                );
            }
            if sol.certified && seq.certified {
                // Both answers avoid the band, so both equal C* exactly.
                prop_assert_eq!(
                    sol.error, seq.error,
                    "certified optima diverged between scheduler and sequential"
                );
            }
        }
        let agg = scheduler.stats();
        prop_assert_eq!(agg.jobs, problems.len(), "aggregate stats count completed jobs");
    }

    /// Cancelling a job mid-search yields a monotone best-so-far: every
    /// later observation (including the final solution) is no worse
    /// than any earlier `best_so_far()` observation.
    #[test]
    fn cancelled_job_is_monotone_no_worse_than_observations(twist in 0u64..40) {
        let problem = deep_problem(11 + (twist % 3) as usize, 6, twist);
        let scheduler = Scheduler::new(2);
        // No start heuristic: keep the incumbent improving during the
        // search so the observations are interesting.
        let handle = scheduler.spawn(problem.clone(), SolverConfig {
            root_samples: 0,
            ..SolverConfig::default()
        });
        let mut observed: Vec<u64> = Vec::new();
        for _ in 0..50 {
            if let Some((err, w)) = handle.best_so_far() {
                prop_assert_eq!(problem.evaluate(&w), err, "incumbent snapshot inconsistent");
                if let Some(&last) = observed.last() {
                    prop_assert!(err <= last, "best-so-far regressed: {} after {}", err, last);
                }
                observed.push(err);
            }
            if handle.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        handle.cancel();
        let sol = handle.join().expect("root incumbent exists");
        prop_assert!(
            sol.status == SolveStatus::Cancelled || sol.status == SolveStatus::Optimal,
            "unexpected status {:?}", sol.status
        );
        if sol.status == SolveStatus::Cancelled {
            prop_assert!(!sol.optimal);
        }
        for &err in &observed {
            prop_assert!(sol.error <= err, "final {} worse than observed {}", sol.error, err);
        }
        prop_assert_eq!(problem.evaluate(&sol.weights), sol.error);
    }

    /// Deadline-expired jobs terminate promptly: the join returns well
    /// within the test budget even though the full search would take
    /// far longer, and the status records the truncation.
    #[test]
    fn deadline_expires_promptly(twist in 0u64..40) {
        let problem = deep_problem(12, 7, twist);
        let scheduler = Scheduler::new(2);
        let handle = scheduler.spawn(problem.clone(), SolverConfig {
            root_samples: 0,
            ..SolverConfig::default()
        });
        handle.deadline(Duration::from_millis(30));
        let t0 = Instant::now();
        let sol = handle.join().expect("root incumbent exists");
        // Generous CI bound: the node-granular check means overshoot is
        // at most one slice per worker, far below a second.
        prop_assert!(
            t0.elapsed() < Duration::from_secs(10),
            "deadline ignored: join took {:?}", t0.elapsed()
        );
        prop_assert!(
            sol.status == SolveStatus::TimeLimit || sol.status == SolveStatus::Optimal,
            "unexpected status {:?}", sol.status
        );
        prop_assert_eq!(sol.optimal, sol.status == SolveStatus::Optimal);
        prop_assert_eq!(problem.evaluate(&sol.weights), sol.error);
    }
}

#[test]
fn try_spawn_respects_the_cap_and_hands_the_inputs_back() {
    let scheduler = Scheduler::new(1);
    let problem = Arc::new(blocker_problem(12, 6, 0));
    let occupant = scheduler.spawn_shared(Arc::clone(&problem), blocker_config());
    assert_eq!(scheduler.live_jobs(), 1);
    // Cap 1 is reached: the spawn is refused and the submitted problem
    // comes back unchanged (same allocation, not a copy).
    let refused = scheduler
        .try_spawn_shared(Arc::clone(&problem), SolverConfig::default(), 1)
        .err()
        .expect("cap reached");
    assert!(Arc::ptr_eq(&refused.problem, &problem));
    assert_eq!(scheduler.live_jobs(), 1, "refused spawns are not enqueued");
    // Cap 0 = unbounded: the same spawn is admitted.
    let second = scheduler
        .try_spawn_shared(refused.problem, refused.config, 0)
        .ok()
        .expect("cap 0 admits unconditionally");
    assert_eq!(scheduler.live_jobs(), 2);
    occupant.cancel();
    second.cancel();
}

#[test]
fn rejected_handles_complete_immediately_without_incumbent() {
    let handle = rankhow_serve::SolveHandle::rejected();
    assert!(handle.is_finished());
    assert!(handle.best_so_far().is_none());
    handle.cancel(); // no-op
    handle.deadline(Duration::from_millis(1)); // no-op
    let sol = handle.join().expect("rejection is a status, not an error");
    assert_eq!(sol.status, SolveStatus::Rejected);
    assert!(sol.status.is_bounded());
    assert!(!sol.optimal);
    assert!(sol.weights.is_empty());
    assert_eq!(sol.error, u64::MAX);
}

#[test]
fn unstarted_jobs_migrate_between_pools() {
    let source = Scheduler::new(1);
    let target = Scheduler::new(2);
    let problem = Arc::new(blocker_problem(12, 6, 0));
    // A light query that solves in milliseconds once a worker reaches it.
    let light = Arc::new(light_problem());
    // The lone worker parks in the blocker's root setup; three more
    // spawns stay unstarted in the source run queue.
    let blocker = source.spawn_shared(Arc::clone(&problem), blocker_config());
    let waiters: Vec<_> = (0..3)
        .map(|_| source.spawn_shared(Arc::clone(&light), SolverConfig::default()))
        .collect();
    assert_eq!(source.live_jobs(), 4);
    let load = source.load();
    assert_eq!(load.workers, 1);
    assert!(
        load.queued >= 3,
        "waiters must be unstarted while the blocker roots, queued {}",
        load.queued
    );
    // Migrate one: live accounting follows the job to its new pool,
    // and the job keeps working — its handle resolves through `target`.
    let migrated = source.take_unstarted().expect("unstarted job available");
    assert_eq!(source.live_jobs(), 3);
    target.adopt(migrated);
    assert_eq!(target.live_jobs(), 1);
    blocker.cancel();
    for handle in waiters {
        let sol = handle.join().expect("feasible instance");
        assert!(sol.optimal, "migration must not change results");
    }
    assert_eq!(
        target.stats().jobs,
        1,
        "the adopted job completed on the target pool"
    );
    assert_eq!(target.jobs_spawned(), 0, "adoption is not a spawn");
}

#[test]
fn dropping_a_taken_job_sheds_it_instead_of_hanging_its_joiner() {
    let scheduler = Scheduler::new(1);
    let problem = Arc::new(blocker_problem(12, 6, 0));
    let blocker = scheduler.spawn_shared(Arc::clone(&problem), blocker_config());
    let waiter = scheduler.spawn_shared(Arc::clone(&problem), SolverConfig::default());
    let taken = scheduler.take_unstarted().expect("waiter is unstarted");
    drop(taken); // never adopted anywhere
    let sol = waiter.join().expect("shed, not an error");
    assert_eq!(sol.status, SolveStatus::Rejected);
    assert!(sol.weights.is_empty());
    blocker.cancel();
}

#[test]
fn infeasible_constraints_surface_through_join() {
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into()],
        vec![vec![1.0, 0.0], vec![0.0, 1.0]],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(1), Some(2)]).unwrap();
    let problem = OptProblem::new(data, given)
        .unwrap()
        .with_constraints(
            WeightConstraints::none()
                .min_weight(0, 0.8)
                .max_weight(0, 0.1),
        )
        .unwrap();
    let scheduler = Scheduler::new(2);
    let handle = scheduler.spawn(problem, SolverConfig::default());
    assert!(matches!(
        handle.join(),
        Err(rankhow_core::SolverError::Infeasible)
    ));
}

#[test]
fn symgd_chain_on_scheduler_matches_blocking_path() {
    // A hidden-linear-function instance (same shape as the SYM-GD unit
    // tests): the scheduler path must be step-for-step identical to the
    // blocking path when both run one worker.
    let n = 24;
    let hidden = [0.55, 0.35, 0.1];
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..3)
                .map(|j| (((i * (7 + 3 * j) + j) % n) as f64) / n as f64)
                .collect()
        })
        .collect();
    let scores: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().zip(hidden.iter()).map(|(a, w)| a * w).sum())
        .collect();
    let names = (0..3).map(|j| format!("A{j}")).collect();
    let data = Dataset::from_rows(names, rows).unwrap();
    let given = GivenRanking::from_scores(&scores, 6, 0.0).unwrap();
    let problem = Arc::new(OptProblem::new(data, given).unwrap());
    let seed = [0.5, 0.4, 0.1];

    let config = SymGdConfig {
        threads: 1,
        ..SymGdConfig::default()
    };
    let blocking = SymGd::with_config(config.clone())
        .solve(&problem, &seed)
        .unwrap();
    let scheduler = Scheduler::new(1);
    let served = SymGd::with_config(config)
        .solve_on(&scheduler, &problem, &seed)
        .unwrap();
    assert_eq!(served.error, blocking.error, "scheduler chain diverged");
    assert_eq!(
        served.weights, blocking.weights,
        "single-worker determinism"
    );
    assert_eq!(served.iterations, blocking.iterations);
    assert_eq!(scheduler.jobs_spawned() as usize, served.iterations);
    assert_eq!(served.error, 0, "seeded near the hidden weights");
}

#[test]
fn dropping_the_scheduler_cancels_outstanding_jobs() {
    let problem = deep_problem(13, 7, 1);
    let scheduler = Scheduler::new(1);
    let handle = scheduler.spawn(
        problem,
        SolverConfig {
            root_samples: 0,
            ..SolverConfig::default()
        },
    );
    drop(scheduler);
    let t0 = Instant::now();
    // Either the pool got far enough for a best-so-far incumbent
    // (Cancelled/Optimal) or the job was stopped before its root setup
    // (reported as Infeasible per the engine's no-incumbent rule);
    // what matters is that join returns promptly instead of hanging.
    match handle.join() {
        Ok(sol) => assert!(
            sol.status == SolveStatus::Cancelled || sol.status == SolveStatus::Optimal,
            "unexpected status {:?}",
            sol.status
        ),
        Err(rankhow_core::SolverError::Infeasible) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
    assert!(t0.elapsed() < Duration::from_secs(10));
}

#[test]
fn best_so_far_streams_before_completion() {
    let problem = deep_problem(12, 6, 3);
    let scheduler = Scheduler::new(1);
    let handle = scheduler.spawn(
        problem.clone(),
        SolverConfig {
            root_samples: 0,
            ..SolverConfig::default()
        },
    );
    // The root center is offered as the first incumbent during root
    // setup, so an observation must appear while (or before) the
    // search runs.
    let mut saw_incumbent = false;
    for _ in 0..100_000 {
        if let Some((err, w)) = handle.best_so_far() {
            assert_eq!(problem.evaluate(&w), err);
            saw_incumbent = true;
            break;
        }
        if handle.is_finished() {
            break;
        }
        std::thread::yield_now();
    }
    // Don't run the deep search to exhaustion — the observation was the
    // point; stop the job and check the stream's last value survives.
    handle.cancel();
    let sol = handle.join().unwrap();
    assert!(
        saw_incumbent || sol.optimal,
        "no incumbent ever observed on a feasible instance"
    );
}

#[test]
fn node_limited_jobs_report_node_limit_status() {
    let problem = deep_problem(12, 7, 5);
    let scheduler = Scheduler::new(2);
    let handle = scheduler.spawn(
        problem.clone(),
        SolverConfig {
            node_limit: 3,
            root_samples: 0,
            incumbent_sampling: false,
            ..SolverConfig::default()
        },
    );
    let sol = handle.join().expect("root incumbent exists");
    if !sol.optimal {
        assert_eq!(sol.status, SolveStatus::NodeLimit);
        assert!(sol.status.is_bounded());
    }
    assert_eq!(problem.evaluate(&sol.weights), sol.error);
}

#[test]
fn admission_stamp_survives_migration_and_feeds_queue_wait() {
    use rankhow_obs::{MetricsRegistry, SolveTelemetry};
    use rankhow_serve::SpawnOptions;

    let source = Scheduler::new(1);
    let target = Scheduler::new(1);
    let blocker = source.spawn_shared(Arc::new(blocker_problem(12, 6, 0)), blocker_config());
    // Wait for the lone worker to claim the blocker, so the next spawn
    // is deterministically the one unstarted (migratable) entry.
    let t0 = Instant::now();
    while source.load().queued > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "worker never started"
        );
        std::thread::yield_now();
    }

    // A query "admitted" 250 ms ago: the stamp the router would have
    // taken before its first placement attempt.
    let backdated = Instant::now() - Duration::from_millis(250);
    let tel = Arc::new(SolveTelemetry::new(Arc::new(MetricsRegistry::new())));
    let handle = source
        .try_spawn_with(
            Arc::new(light_problem()),
            SolverConfig {
                telemetry: Some(Arc::clone(&tel)),
                ..SolverConfig::default()
            },
            0,
            SpawnOptions {
                admitted: Some(backdated),
                ..SpawnOptions::default()
            },
        )
        .ok()
        .expect("cap 0 admits unconditionally");

    // The stamp rides the migrated entry itself, not the source pool.
    let migrated = source.take_unstarted().expect("light query is unstarted");
    assert_eq!(migrated.admitted(), Some(backdated));
    target.adopt(migrated);
    let sol = handle.join().expect("feasible instance");
    assert!(sol.optimal, "migration must not change results");
    blocker.cancel();

    if rankhow_obs::ENABLED {
        // Queue wait is charged from the ORIGINAL admission: at least
        // the backdating, even though the job spent almost no time on
        // the target pool's queue.
        let wait = tel.metrics.queue_wait.snapshot();
        assert_eq!(wait.count, 1);
        assert!(
            wait.min() >= 250_000_000,
            "wait measured from re-enqueue, not admission: {} ns",
            wait.min()
        );
        let latency = tel.metrics.latency.snapshot();
        assert_eq!(latency.count, 1);
        assert!(latency.max() >= wait.max(), "latency includes the wait");
    }
}
