//! Panic isolation and worker supervision (runs only under the
//! `fault-inject` cargo feature; the default build compiles this file
//! to nothing). Deterministic counterparts of the chaos proptests in
//! the router crate: one injected fault, one asserted recovery.

#![cfg(feature = "fault-inject")]

// This suite uses only a slice of the shared helpers.
#[allow(dead_code)]
mod support;

use rankhow_core::fault::{silence_injected_panics, FaultPlan, LpFault};
use rankhow_core::{SolveStatus, SolverConfig, SolverError};
use rankhow_serve::{Scheduler, DEFAULT_RESPAWN_CAP};
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::light_problem;

fn faulty_config(plan: FaultPlan) -> SolverConfig {
    SolverConfig {
        faults: Some(Arc::new(plan)),
        ..SolverConfig::default()
    }
}

/// A panicking job finalizes `Failed` — bounded join, no hang — while a
/// clean sibling on the same pool still proves its optimum.
#[test]
fn injected_panic_is_isolated_from_siblings() {
    silence_injected_panics();
    let scheduler = Scheduler::new(2);
    let doomed = scheduler.spawn(light_problem(), faulty_config(FaultPlan::new().panic_at(1)));
    let clean = scheduler.spawn(light_problem(), SolverConfig::default());

    let failed = doomed.join().expect("failed jobs deliver Ok(Failed)");
    assert_eq!(failed.status, SolveStatus::Failed);
    assert!(!failed.optimal);
    assert_eq!(failed.stats.job_panics, 1);

    let sol = clean.join().expect("sibling must be untouched");
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_eq!(sol.error, 0);

    let stats = scheduler.stats();
    assert_eq!(stats.job_panics, 1, "exactly one caught panic");
    assert_eq!(stats.worker_respawns, 0, "plain panics don't kill workers");
}

/// A `WorkerDeath` panic takes the thread with it: the job fails, the
/// supervisor respawns a replacement, and the pool keeps serving.
#[test]
fn worker_death_respawns_and_pool_keeps_serving() {
    silence_injected_panics();
    let scheduler = Scheduler::with_options(1, 256, DEFAULT_RESPAWN_CAP);
    let doomed = scheduler.spawn(
        light_problem(),
        faulty_config(FaultPlan::new().kill_worker_at(1)),
    );
    let failed = doomed.join().expect("killed jobs deliver Ok(Failed)");
    assert_eq!(failed.status, SolveStatus::Failed);

    // The only worker died — a successor must pick this job up.
    let after = scheduler.spawn(light_problem(), SolverConfig::default());
    let sol = after.join().expect("respawned worker serves new jobs");
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_eq!(sol.error, 0);
    assert!(!scheduler.is_dead());

    let stats = scheduler.stats();
    assert_eq!(stats.job_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
}

/// With the respawn budget at zero, the last worker's death turns the
/// pool *dead*: queued jobs drain as `Failed` (bounded joins — nobody
/// hangs), and later spawns complete `Failed` immediately instead of
/// enqueueing into a pool nobody will ever drain.
#[test]
fn respawn_cap_exhaustion_fails_fast_without_hanging() {
    silence_injected_panics();
    let scheduler = Scheduler::with_options(1, 256, 0);
    let killer = scheduler.spawn(
        light_problem(),
        faulty_config(FaultPlan::new().kill_worker_at(1)),
    );
    // Enqueue behind the killer; with one worker and no respawns these
    // can only resolve through the dead-pool drain.
    let queued: Vec<_> = (0..3)
        .map(|_| scheduler.spawn(light_problem(), SolverConfig::default()))
        .collect();

    let start = Instant::now();
    let failed = killer.join().expect("killed jobs deliver Ok(Failed)");
    assert_eq!(failed.status, SolveStatus::Failed);
    for handle in queued {
        let sol = handle.join().expect("drained jobs deliver Ok(Failed)");
        assert_eq!(sol.status, SolveStatus::Failed);
    }
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "dead-pool joins must be bounded"
    );

    assert!(scheduler.is_dead());
    assert_eq!(scheduler.stats().worker_respawns, 0);
    // Spawns on a dead pool complete immediately (Failed), never hang.
    let late = scheduler.spawn(light_problem(), SolverConfig::default());
    assert!(late.is_finished());
    let sol = late.join().expect("dead-pool spawns deliver Ok(Failed)");
    assert_eq!(sol.status, SolveStatus::Failed);
}

/// A forced root-LP verdict surfaces as a clean `Err` through the
/// normal join path (no panic, no hang), and fires exactly once.
#[test]
fn forced_root_lp_verdict_delivers_clean_error() {
    let scheduler = Scheduler::new(1);
    let handle = scheduler.spawn(
        light_problem(),
        faulty_config(FaultPlan::new().root_lp(LpFault::Infeasible)),
    );
    match handle.join() {
        Err(SolverError::Infeasible) => {}
        other => panic!("expected forced infeasibility, got {other:?}"),
    }
    // The trigger fired once: the same pool solves the same problem
    // fine afterwards.
    let sol = scheduler
        .spawn(light_problem(), SolverConfig::default())
        .join()
        .expect("pool unaffected by the forced verdict");
    assert_eq!(sol.error, 0);
}

/// A stalled step delays but never wedges: the deadline still expires
/// the job with its best-so-far result.
#[test]
fn stalled_step_still_honors_deadline() {
    let scheduler = Scheduler::new(1);
    let handle = scheduler.spawn(
        support::blocker_problem(12, 4, 1),
        SolverConfig {
            faults: Some(Arc::new(FaultPlan::new().stall_at(2, 30))),
            ..support::blocker_config()
        },
    );
    handle.deadline(Duration::from_millis(100));
    let sol = handle.join().expect("deadline delivers best-so-far");
    assert!(
        matches!(sol.status, SolveStatus::TimeLimit | SolveStatus::Optimal),
        "unexpected status {:?}",
        sol.status
    );
}
