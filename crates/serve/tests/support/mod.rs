//! Test-instance helpers shared between the serve and router
//! integration suites (the router crate includes this file via
//! `#[path]`, so there is exactly one copy of each technique).

use proptest::prelude::*;
use rankhow_core::{OptProblem, SolverConfig, Tolerances};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;

/// A random small OPT instance: integer-grid attributes (well-separated
/// score differences) and a shuffled top-k given ranking.
#[derive(Debug, Clone)]
pub struct SmallInstance {
    pub rows: Vec<Vec<f64>>,
    pub k: usize,
    pub perm_seed: u64,
}

pub fn small_instance() -> impl Strategy<Value = SmallInstance> {
    (4usize..8, 2usize..4, any::<u64>()).prop_flat_map(|(n, m, perm_seed)| {
        prop::collection::vec(prop::collection::vec((0u32..10).prop_map(f64::from), m), n).prop_map(
            move |rows| SmallInstance {
                rows,
                k: 3.min(n - 1),
                perm_seed,
            },
        )
    })
}

/// Build the OPT problem a [`SmallInstance`] describes. Deterministic
/// Fisher–Yates from the seed: the ranked prefix is a random subset in
/// random order, so most instances have nonzero optimal error (the
/// interesting case for parity testing).
pub fn build(inst: &SmallInstance) -> Option<OptProblem> {
    let n = inst.rows.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = inst.perm_seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut positions = vec![None; n];
    for (pos, &idx) in order.iter().take(inst.k).enumerate() {
        positions[idx] = Some(pos as u32 + 1);
    }
    let names = (0..inst.rows[0].len()).map(|j| format!("A{j}")).collect();
    let data = Dataset::from_rows(names, inst.rows.clone()).ok()?;
    let given = GivenRanking::from_positions(positions).ok()?;
    OptProblem::with_tolerances(data, given, Tolerances::exact()).ok()
}

/// An instance whose given ranking violates a dominance pair (tuple 0
/// dominates tuple 1 on every attribute but is ranked *below* it), so
/// no weight vector reaches error 0: the root start heuristic can never
/// exit early, and the huge `root_samples` count in [`blocker_config`]
/// keeps the first stepping worker busy in root setup for a long,
/// controllable time while later spawns sit unstarted in the run queue.
/// The other rows are anti-correlated so the remaining search tree is
/// deep too.
pub fn blocker_problem(n: usize, k: usize, twist: u64) -> OptProblem {
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                i as f64,
                (n - i) as f64,
                ((i as u64 * (3 + twist % 5)) % 7) as f64,
            ]
        })
        .collect();
    rows[0] = vec![9.0, 9.0, 9.0];
    rows[1] = vec![1.0, 1.0, 1.0];
    let mut positions = vec![None; n];
    positions[1] = Some(1);
    positions[0] = Some(2);
    for (offset, idx) in (2..n).take(k.saturating_sub(2)).enumerate() {
        positions[idx] = Some(offset as u32 + 3);
    }
    let names = vec!["a".into(), "b".into(), "c".into()];
    let data = Dataset::from_rows(names, rows).unwrap();
    let given = GivenRanking::from_positions(positions).unwrap();
    OptProblem::new(data, given).unwrap()
}

/// Config that parks the first stepping worker in root setup (pairs
/// with [`blocker_problem`], where the sampling loop cannot exit
/// early).
pub fn blocker_config() -> SolverConfig {
    SolverConfig {
        root_samples: 400_000,
        ..SolverConfig::default()
    }
}

/// A 3-row instance with a consistent given ranking: solves to a
/// proved error-0 optimum in milliseconds once a worker reaches it —
/// the counterpart of [`blocker_problem`] for tests that need jobs to
/// *finish*.
pub fn light_problem() -> OptProblem {
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into()],
        vec![vec![3.0, 1.0], vec![2.0, 2.0], vec![1.0, 3.0]],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
    OptProblem::new(data, given).unwrap()
}
