//! The scheduler: a long-lived worker pool multiplexing many
//! [`SolveJob`]s with round-robin node-budget time slicing.

use crate::handle::{Completion, SolveHandle};
use rankhow_core::{
    CellScheduler, EngineScratch, OptProblem, RootArtifacts, Solution, SolveJob, SolveStatus,
    SolverConfig, SolverError, SolverStats, StepOutcome,
};
use rankhow_sync as sync;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default fairness slice: nodes a worker expands on one job before
/// rotating to the next queued job. Small enough that a heavy query
/// cannot starve light ones, large enough to amortize the rotation.
pub const DEFAULT_SLICE_NODES: usize = 64;

/// Default cap on supervised worker respawns per pool
/// ([`Scheduler::with_options`]): enough to ride out sporadic thread
/// deaths, small enough that a deterministically crashing workload
/// cannot respawn forever.
pub const DEFAULT_RESPAWN_CAP: usize = 8;

/// Callback a spawner attaches to a job, invoked exactly once when the
/// job is finalized with a real result (`Ok` *or* `Err` — the router's
/// retry layer needs failures too) — *before* its joiner is woken, so
/// anything the hook publishes (e.g. a cross-query cache insert) is
/// visible by the time [`SolveHandle::join`] returns. Jobs shed by a
/// dropped [`QueuedJob`] never ran, and their hook is never called. A
/// panicking hook is caught and ignored: it can never wedge the joiner
/// or kill the finalizing worker.
pub type CompletionHook =
    Arc<dyn Fn(&Result<Solution, SolverError>, Option<RootArtifacts>) + Send + Sync>;

/// Spawn-time metadata riding a job entry ([`Scheduler::try_spawn_with`]).
#[derive(Default, Clone)]
pub struct SpawnOptions {
    /// The admission-time canonical query fingerprint, computed once by
    /// the router and carried here so placement retries and
    /// [`Scheduler::take_unstarted`] rebalancing never re-walk the
    /// instance.
    pub fingerprint: Option<u64>,
    /// See [`CompletionHook`].
    pub on_complete: Option<CompletionHook>,
    /// When the query was admitted by its submitter (the router stamps
    /// this before its first placement attempt). Queue-wait and
    /// end-to-end latency telemetry are measured from here, so they
    /// survive placement retries and [`Scheduler::take_unstarted`]
    /// migrations — wait is charged from *original* admission, not
    /// re-enqueue. Defaults to the spawn instant.
    pub admitted: Option<Instant>,
    /// Pool label for the flight-recorder `placed` event. When set, the
    /// spawn records [`rankhow_obs::Event::Placed`] under the queue
    /// lock, *before* the entry is visible to workers — so a trace
    /// always orders `placed` ahead of the worker's `dequeued`, which a
    /// post-spawn recording by the submitter cannot guarantee. `None`
    /// (direct scheduler use, or router telemetry off) records nothing.
    pub placed_pool: Option<usize>,
}

/// One spawned job: the reentrant engine state plus completion plumbing.
pub(crate) struct JobEntry {
    pub(crate) job: SolveJob<Arc<OptProblem>>,
    pub(crate) completion: Completion,
    /// Admission-time query fingerprint (see [`SpawnOptions`]).
    fingerprint: Option<u64>,
    /// Completion callback (see [`CompletionHook`]).
    on_complete: Option<CompletionHook>,
    /// Taken (CAS) by the worker that packages the final result.
    finalized: AtomicBool,
    /// Workers currently holding this entry between popping it and
    /// finishing their slice (the entry is re-enqueued *before* being
    /// stepped, so it can sit in the queue while also claimed).
    /// [`Scheduler::take_unstarted`] only migrates unclaimed entries,
    /// which guarantees no worker of the source pool is (or ever will
    /// be) stepping a migrated job.
    claims: AtomicUsize,
    /// Taken (CAS) by the first worker about to step this job, moving
    /// it from the owning pool's `queued` count to its in-flight count
    /// exactly once — keeps [`Scheduler::load`] O(1) instead of a
    /// queue scan on the placement hot path.
    started_accounted: AtomicBool,
    /// Original admission time (see [`SpawnOptions::admitted`]). Rides
    /// the entry itself, so a `take_unstarted` → `adopt` migration
    /// keeps the stamp.
    admitted: Instant,
}

struct Shared {
    /// Round-robin run queue. Invariant: every spawned, not-yet-
    /// finalized-and-observed entry appears here exactly once; workers
    /// re-enqueue an entry *before* stepping it, so idle workers can
    /// co-step the same job.
    queue: Mutex<VecDeque<Arc<JobEntry>>>,
    available: Condvar,
    /// Notified (under the queue lock) whenever `live` decreases —
    /// admission backpressure parks here.
    capacity: Condvar,
    shutdown: AtomicBool,
    threads: usize,
    slice_nodes: usize,
    jobs_spawned: AtomicU64,
    /// Jobs this pool currently owns: spawned or adopted, not yet
    /// finalized, not migrated away. Written under the queue lock
    /// (spawn/adopt/take) or immediately before a `capacity` notify
    /// under that lock (finalize), so admission checks are atomic.
    live: AtomicUsize,
    /// Of `live`, the jobs no worker has begun stepping (the migratable
    /// run-queue depth): +1 at spawn/adopt, −1 at `take_unstarted` and
    /// at each entry's `started_accounted` transition.
    queued: AtomicUsize,
    /// Aggregate statistics over completed jobs (`jobs` counts them).
    finished_stats: Mutex<SolverStats>,
    /// Panics caught unwinding out of a job step (each finalized that
    /// job as [`SolveStatus::Failed`]).
    job_panics: AtomicU64,
    /// Worker threads the supervisor respawned after a death.
    worker_respawns: AtomicU64,
    /// Remaining respawn budget ([`Scheduler::with_options`]).
    respawns_left: AtomicUsize,
    /// Worker threads currently running (spawned or respawned, not yet
    /// exited). When a death drives this to zero with the respawn
    /// budget exhausted, the pool goes [`dead`](Shared::dead).
    workers_alive: AtomicUsize,
    /// Set (under the queue lock) when the last worker died with no
    /// respawns left: the queue has been drained-and-failed, and
    /// spawns are refused from then on. Checked by `try_spawn_with`
    /// under the same lock, so no entry can slip into a dead pool's
    /// queue.
    dead: AtomicBool,
    /// Join handles of every worker ever spawned, including supervisor
    /// respawns (a dying worker pushes its successor's handle here
    /// before exiting). Drained by [`Scheduler::drop`] in rounds until
    /// empty — the finite respawn budget bounds the rounds.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A load snapshot of one scheduler pool (see [`Scheduler::load`]).
#[derive(Clone, Copy, Debug)]
pub struct PoolLoad {
    /// Run-queue depth: spawned jobs no worker has started stepping.
    /// These are exactly the jobs [`Scheduler::take_unstarted`] can
    /// migrate to another pool.
    pub queued: usize,
    /// Jobs the pool's workers are actively advancing. Each occupies up
    /// to all of the pool's frontier lanes (idle workers co-step).
    pub in_flight: usize,
    /// Pool worker count.
    pub workers: usize,
}

impl PoolLoad {
    /// Scalar placement score: run-queue depth plus in-flight jobs
    /// (each in-flight job occupies frontier lanes until it finishes).
    /// Lower is less loaded.
    pub fn score(&self) -> usize {
        self.queued + self.in_flight
    }
}

/// A spawn refused by admission control: the pool already owned its
/// cap's worth of live (queued + in-flight) jobs. Carries the
/// submitted problem and config back to the caller, which can shed the query ([`SolveHandle::rejected`]), retry
/// another pool, or wait for capacity ([`Scheduler::wait_capacity`]).
pub struct RejectedSpawn {
    /// The submitted problem, returned unchanged.
    pub problem: Arc<OptProblem>,
    /// The submitted solver configuration, returned unchanged.
    pub config: SolverConfig,
    /// The submitted spawn metadata, returned unchanged (so a retry on
    /// another pool keeps the precomputed fingerprint and hook).
    pub opts: SpawnOptions,
}

/// A not-yet-started job removed from one scheduler's run queue by
/// [`Scheduler::take_unstarted`], in transit to another pool's
/// [`Scheduler::adopt`]. Un-started jobs have no root state (the
/// reduction and root heuristics run inside the first step), so the
/// move is free: no search state crosses pools.
///
/// Dropping a `QueuedJob` without adopting it sheds the job: its
/// [`SolveHandle`] completes immediately with
/// [`SolveStatus::Rejected`](rankhow_core::SolveStatus) and no
/// incumbent, so the submitter never hangs.
pub struct QueuedJob {
    entry: Option<Arc<JobEntry>>,
}

impl QueuedJob {
    /// The admission-time query fingerprint the job was spawned with —
    /// the router's rebalancer re-places migrated jobs by this without
    /// re-walking the instance. `None` for jobs spawned without one.
    pub fn fingerprint(&self) -> Option<u64> {
        self.entry.as_ref().and_then(|e| e.fingerprint)
    }

    /// The job's original admission stamp. Migration moves the entry
    /// wholesale, so queue-wait telemetry keeps measuring from the
    /// *first* admission even after a rebalance re-enqueues the job on
    /// another pool.
    pub fn admitted(&self) -> Option<Instant> {
        self.entry.as_ref().map(|e| e.admitted)
    }
}

impl Drop for QueuedJob {
    fn drop(&mut self) {
        if let Some(entry) = self.entry.take() {
            entry.job.cancel();
            if entry
                .finalized
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                entry.completion.set(Ok(Solution::rejected()));
            }
        }
    }
}

/// A long-lived worker pool that interleaves node expansion across many
/// concurrent solve jobs.
///
/// Fairness: each worker advances the front job of a shared round-robin
/// queue by one node-budget slice, then rotates. A job with more lanes
/// than active claimants is co-stepped by idle workers (work-stealing
/// across its frontier lanes), so a lone heavy query still uses the
/// whole pool.
///
/// Dropping the scheduler cancels every outstanding job cooperatively,
/// finalizes it with its best-so-far incumbent, and joins the workers —
/// outstanding [`SolveHandle::join`] calls return promptly.
pub struct Scheduler {
    shared: Arc<Shared>,
}

impl Scheduler {
    /// A pool of `threads` workers (≥ 1) with the default fairness
    /// slice.
    pub fn new(threads: usize) -> Self {
        Scheduler::with_slice(threads, DEFAULT_SLICE_NODES)
    }

    /// A pool with an explicit fairness slice (nodes per job turn) and
    /// the default respawn cap ([`DEFAULT_RESPAWN_CAP`]).
    pub fn with_slice(threads: usize, slice_nodes: usize) -> Self {
        Scheduler::with_options(threads, slice_nodes, DEFAULT_RESPAWN_CAP)
    }

    /// A pool with an explicit fairness slice and supervisor respawn
    /// cap: up to `respawn_cap` worker deaths are repaired by spawning
    /// replacement threads ([`SolverStats::worker_respawns`] counts
    /// them). When the *last* worker dies with the cap exhausted the
    /// pool goes dead ([`Scheduler::is_dead`]): queued jobs are
    /// finalized [`SolveStatus::Failed`] and further spawns are
    /// refused — joiners always resolve, they never hang on a pool
    /// with nobody left to step.
    pub fn with_options(threads: usize, slice_nodes: usize, respawn_cap: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
            slice_nodes: slice_nodes.max(1),
            jobs_spawned: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            finished_stats: Mutex::new(SolverStats::default()),
            job_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            respawns_left: AtomicUsize::new(respawn_cap),
            workers_alive: AtomicUsize::new(0),
            dead: AtomicBool::new(false),
            handles: Mutex::new(Vec::with_capacity(threads)),
        });
        {
            let mut handles = sync::lock(&shared.handles);
            for wid in 0..threads {
                handles.push(spawn_worker(&shared, wid));
            }
        }
        Scheduler { shared }
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Total jobs ever spawned on this scheduler (adopted jobs count on
    /// their origin pool, not here).
    pub fn jobs_spawned(&self) -> u64 {
        self.shared.jobs_spawned.load(Ordering::Acquire)
    }

    /// Jobs this pool currently owns: spawned or adopted, not yet
    /// completed. This is the quantity admission caps bound.
    pub fn live_jobs(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// A snapshot of the pool's load: run-queue depth (jobs no worker
    /// has started) and in-flight jobs. O(1) — two counter reads, no
    /// queue lock — so placement can call it on every spawn. The two
    /// counters are read without a common critical section; concurrent
    /// workers may shift a job between them mid-read — placement
    /// decisions treat the snapshot as a heuristic.
    pub fn load(&self) -> PoolLoad {
        let queued = self.shared.queued.load(Ordering::Acquire);
        let live = self.shared.live.load(Ordering::Acquire);
        PoolLoad {
            queued,
            in_flight: live.saturating_sub(queued),
            workers: self.shared.threads,
        }
    }

    /// Aggregate statistics over *completed* jobs (`stats().jobs` is
    /// their count; counters are summed across jobs), plus the pool's
    /// fault counters: `job_panics` (panics caught stepping jobs) and
    /// `worker_respawns` (supervisor thread respawns).
    pub fn stats(&self) -> SolverStats {
        let mut stats = sync::lock(&self.shared.finished_stats).clone();
        stats.job_panics = self.shared.job_panics.load(Ordering::Acquire) as usize;
        stats.worker_respawns = self.shared.worker_respawns.load(Ordering::Acquire) as usize;
        stats
    }

    /// Whether the pool is dead: its last worker died with the respawn
    /// budget exhausted. A dead pool refuses spawns
    /// ([`Scheduler::try_spawn_shared`] rejects; [`Scheduler::spawn`]
    /// returns an already-failed handle) and has already failed its
    /// queue — nothing submitted to it can hang.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Enqueue a solve job; returns immediately. The job runs with one
    /// frontier lane per pool worker — `config.threads` is ignored here,
    /// the pool decides the parallelism. Root setup (reduction, root
    /// heuristics) happens on a worker, not on the calling thread; even
    /// an infeasible instance surfaces through
    /// [`SolveHandle::join`](crate::SolveHandle::join), never as a
    /// spawn-time panic.
    pub fn spawn(&self, problem: OptProblem, config: SolverConfig) -> SolveHandle {
        self.spawn_shared(Arc::new(problem), config)
    }

    /// [`Scheduler::spawn`] without copying the problem — for callers
    /// that submit many jobs over the same dataset (batch serving,
    /// SYM-GD cell chains).
    pub fn spawn_shared(&self, problem: Arc<OptProblem>, config: SolverConfig) -> SolveHandle {
        match self.try_spawn_shared(problem, config, 0) {
            Ok(handle) => handle,
            // Cap 0 admits unconditionally; only a dead pool refuses.
            // Keep the no-panic spawn surface: hand back an
            // already-failed handle instead of an enqueue nobody would
            // ever step.
            Err(_) => SolveHandle::completed(Solution::failed()),
        }
    }

    /// [`Scheduler::spawn_shared`] with admission control: the spawn is
    /// refused (and the inputs handed back) when the pool already owns
    /// `queue_cap` live jobs. `queue_cap == 0` means unbounded — the
    /// spawn always succeeds. The capacity check and the enqueue are
    /// one atomic step under the queue lock, so concurrent spawners
    /// cannot overshoot the cap.
    pub fn try_spawn_shared(
        &self,
        problem: Arc<OptProblem>,
        config: SolverConfig,
        queue_cap: usize,
    ) -> Result<SolveHandle, Box<RejectedSpawn>> {
        self.try_spawn_with(problem, config, queue_cap, SpawnOptions::default())
    }

    /// [`Scheduler::try_spawn_shared`] carrying spawn metadata: a
    /// precomputed query fingerprint and/or a completion hook
    /// ([`SpawnOptions`]) — the router's cache-aware spawn path.
    pub fn try_spawn_with(
        &self,
        problem: Arc<OptProblem>,
        config: SolverConfig,
        queue_cap: usize,
        opts: SpawnOptions,
    ) -> Result<SolveHandle, Box<RejectedSpawn>> {
        let entry = {
            let queue_lock = &self.shared.queue;
            let mut queue = sync::lock(queue_lock);
            // `dead` flips under this same lock, so a spawn can never
            // slip an entry into a queue nobody will ever drain.
            if self.shared.dead.load(Ordering::Acquire)
                || (queue_cap > 0 && self.shared.live.load(Ordering::Acquire) >= queue_cap)
            {
                return Err(Box::new(RejectedSpawn {
                    problem,
                    config,
                    opts,
                }));
            }
            let entry = Arc::new(JobEntry {
                job: SolveJob::new(problem, config, self.shared.threads),
                completion: Completion::new(),
                fingerprint: opts.fingerprint,
                on_complete: opts.on_complete,
                finalized: AtomicBool::new(false),
                claims: AtomicUsize::new(0),
                started_accounted: AtomicBool::new(false),
                admitted: opts.admitted.unwrap_or_else(Instant::now),
            });
            // Stamp placement while the entry is still invisible to
            // workers (they pop under this same lock), so the trace
            // orders `placed` strictly before `dequeued`.
            if let (Some(pool), Some(tel)) = (opts.placed_pool, entry.job.telemetry()) {
                tel.event(rankhow_obs::Event::Placed { pool });
            }
            self.shared.jobs_spawned.fetch_add(1, Ordering::AcqRel);
            self.shared.live.fetch_add(1, Ordering::AcqRel);
            self.shared.queued.fetch_add(1, Ordering::AcqRel);
            queue.push_back(Arc::clone(&entry));
            entry
        };
        self.shared.available.notify_one();
        Ok(SolveHandle::new(entry))
    }

    /// Block until the pool owns fewer than `below` live jobs (i.e. a
    /// [`Scheduler::try_spawn_shared`] with `queue_cap == below` would
    /// be admitted right now) or `timeout` elapses. Returns whether
    /// capacity was observed. `below == 0` (unbounded) returns `true`
    /// immediately. The admission itself can still race another
    /// spawner — callers loop `wait_capacity` + `try_spawn_shared`.
    pub fn wait_capacity(&self, below: usize, timeout: Duration) -> bool {
        if below == 0 {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut queue = sync::lock(&self.shared.queue);
        while self.shared.live.load(Ordering::Acquire) >= below {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) =
                sync::wait_timeout(&self.shared.capacity, queue, deadline - now);
            queue = guard;
        }
        true
    }

    /// Remove the most recently queued job *no worker has started* from
    /// the run queue — the router's rebalancing hook. Un-started jobs
    /// have no root state, so nothing but the entry itself moves.
    /// Returns `None` when every queued job is already being stepped
    /// (or the queue is empty). Taking from the back preserves FIFO
    /// fairness for the jobs that stay.
    pub fn take_unstarted(&self) -> Option<QueuedJob> {
        let mut queue = sync::lock(&self.shared.queue);
        let idx = queue.iter().rposition(|e| {
            !e.job.is_started() && !e.job.is_finished() && e.claims.load(Ordering::Acquire) == 0
        })?;
        let entry = queue.remove(idx).expect("index from rposition");
        self.shared.live.fetch_sub(1, Ordering::AcqRel);
        // An entry passing the predicate was never popped by a worker
        // (claims == 0 and never stepped), so it still counts as queued.
        self.shared.queued.fetch_sub(1, Ordering::AcqRel);
        // The vacated slot is capacity for a new admission.
        self.shared.capacity.notify_all();
        Some(QueuedJob { entry: Some(entry) })
    }

    /// Adopt a job migrated from another pool: it joins the back of the
    /// run queue and counts against this pool's live jobs from now on.
    /// The job keeps its origin lane count; worker ids map onto lanes
    /// modulo, so pools of any size can adopt it.
    pub fn adopt(&self, mut job: QueuedJob) {
        let entry = job.entry.take().expect("taken only by adopt or Drop");
        {
            let mut queue = sync::lock(&self.shared.queue);
            self.shared.live.fetch_add(1, Ordering::AcqRel);
            self.shared.queued.fetch_add(1, Ordering::AcqRel);
            queue.push_back(entry);
        }
        self.shared.available.notify_one();
    }
}

/// SYM-GD cell solves become scheduler jobs: the chain shares the
/// pool with every other in-flight query, and each cell reuses the
/// workers' warm LP workspaces.
impl CellScheduler for Scheduler {
    fn solve_cell(
        &self,
        problem: &Arc<OptProblem>,
        config: SolverConfig,
    ) -> Result<Solution, SolverError> {
        self.spawn_shared(Arc::clone(problem), config).join()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Cancel everything still live so joiners unblock promptly;
            // workers drain the queue, finalizing each job with its
            // best-so-far incumbent.
            let queue = sync::lock(&self.shared.queue);
            for entry in queue.iter() {
                entry.job.cancel();
            }
        }
        self.shared.available.notify_all();
        // Join in rounds: a dying worker pushes its successor's handle
        // *before* exiting, so once a round's handles are all joined,
        // any handle they produced is visible to the next round. The
        // finite respawn budget bounds the rounds.
        loop {
            let round: Vec<JoinHandle<()>> = sync::lock(&self.shared.handles).drain(..).collect();
            if round.is_empty() {
                break;
            }
            for worker in round {
                let _ = worker.join();
            }
        }
    }
}

/// Spawn one supervised worker thread: `workers_alive` is incremented
/// here (before the thread exists) so a concurrent death of the old
/// worker can never observe a transient zero while its replacement is
/// being created.
fn spawn_worker(shared: &Arc<Shared>, wid: usize) -> JoinHandle<()> {
    shared.workers_alive.fetch_add(1, Ordering::AcqRel);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("rankhow-serve-{wid}"))
        .spawn(move || {
            let watch = DeathWatch {
                shared: Arc::clone(&shared),
                wid,
            };
            worker_loop(&shared, wid);
            drop(watch);
        })
        .expect("spawn scheduler worker")
}

/// Supervision guard living on each worker thread's stack. On a normal
/// shutdown exit it only decrements the live count; when the thread is
/// *unwinding* (a panic escaped the worker loop — e.g. an injected
/// `WorkerDeath` re-raise), it respawns a replacement if the budget
/// allows, and otherwise — if this was the last worker — declares the
/// pool dead and fails every queued job so no joiner is left hanging.
struct DeathWatch {
    shared: Arc<Shared>,
    wid: usize,
}

impl Drop for DeathWatch {
    fn drop(&mut self) {
        let shared = &self.shared;
        shared.workers_alive.fetch_sub(1, Ordering::AcqRel);
        if !std::thread::panicking() || shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let respawn = shared
            .respawns_left
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok();
        if respawn {
            shared.worker_respawns.fetch_add(1, Ordering::AcqRel);
            let successor = spawn_worker(&self.shared, self.wid);
            sync::lock(&shared.handles).push(successor);
            return;
        }
        if shared.workers_alive.load(Ordering::Acquire) > 0 {
            // Other workers keep the pool serving at reduced width.
            return;
        }
        // Last worker, respawn budget gone: the pool is dead. Flip the
        // flag and drain under the queue lock (the same lock spawns
        // check), then fail each job outside it — `finalize` re-takes
        // the lock for its capacity release.
        let drained: Vec<Arc<JobEntry>> = {
            let mut queue = sync::lock(&shared.queue);
            shared.dead.store(true, Ordering::Release);
            queue.drain(..).collect()
        };
        for entry in drained {
            entry.job.cancel();
            entry.job.fail();
            finalize(shared, &entry);
        }
        // Backpressured spawners parked on `capacity` re-check against
        // a pool that now refuses admission; wake them.
        shared.capacity.notify_all();
    }
}

fn worker_loop(shared: &Shared, wid: usize) {
    // One scratch for this worker's whole life: the SimplexWorkspace
    // tableau allocation survives across every job it touches, and the
    // incremental-LP workspace doubles as the worker's basis cache — a
    // node popped here after time-slicing (or stolen from another
    // lane) re-installs its parent-basis snapshot onto this scratch,
    // so LP warm starts survive the scheduler's job rotation.
    let mut scratch = EngineScratch::new();
    loop {
        let entry = {
            let mut queue = sync::lock(&shared.queue);
            loop {
                if let Some(entry) = queue.pop_front() {
                    // Claimed while the queue lock is held: from here to
                    // the end of the slice, `take_unstarted` skips this
                    // job, so a migrated job can never be concurrently
                    // stepped (or finalized) by this pool.
                    entry.claims.fetch_add(1, Ordering::AcqRel);
                    break Some(entry);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = sync::wait(&shared.available, queue);
            }
        };
        let Some(entry) = entry else {
            return; // shutdown, queue drained
        };
        if entry.job.is_finished() {
            // Drop the queue's copy of a finished job (and make sure it
            // was finalized, e.g. when `Done` raced between workers).
            finalize(shared, &entry);
            entry.claims.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            entry.job.cancel();
        }
        // Re-enqueue *before* stepping: keeps the round-robin rotation
        // going and lets idle workers co-step this job's other lanes.
        {
            let mut queue = sync::lock(&shared.queue);
            queue.push_back(Arc::clone(&entry));
        }
        shared.available.notify_one();
        // First worker to commit to stepping this job moves it from the
        // run-queue count to in-flight, exactly once.
        if entry
            .started_accounted
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            shared.queued.fetch_sub(1, Ordering::AcqRel);
            // Queue wait ends here: one entry per job, measured from the
            // original admission stamp (survives rebalance migration).
            if let Some(tel) = entry.job.telemetry() {
                tel.metrics.queue_wait.record(entry.admitted.elapsed());
                tel.event(rankhow_obs::Event::Dequeued);
            }
        }
        // Panic isolation: a panic unwinding out of the step fails *this
        // job* (best-so-far kept, joiner woken, siblings untouched) —
        // the job's shared state is guarded by poison-tolerant locks and
        // stays structurally valid, only this worker's slice-local state
        // died with the unwind.
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            entry.job.step(wid, &mut scratch, shared.slice_nodes)
        }));
        match stepped {
            Ok(StepOutcome::Done) => finalize(shared, &entry),
            Ok(StepOutcome::Starved) => std::thread::yield_now(),
            Ok(StepOutcome::Progress) => {}
            Err(payload) => {
                shared.job_panics.fetch_add(1, Ordering::AcqRel);
                if let Some(tel) = entry.job.telemetry() {
                    tel.event(rankhow_obs::Event::Failed);
                }
                entry.job.fail();
                finalize(shared, &entry);
                entry.claims.fetch_sub(1, Ordering::AcqRel);
                // The unwound step may have left the scratch's LP
                // tableau mid-rebuild; start the next slice clean.
                scratch = EngineScratch::new();
                // An injected *worker death* additionally kills this
                // thread: re-raise after the job is safely finalized so
                // the DeathWatch supervisor takes over.
                #[cfg(feature = "fault-inject")]
                if payload.is::<rankhow_core::fault::WorkerDeath>() {
                    if let Some(tel) = entry.job.telemetry() {
                        if !shared.shutdown.load(Ordering::Acquire)
                            && shared.respawns_left.load(Ordering::Acquire) > 0
                        {
                            tel.event(rankhow_obs::Event::WorkerRespawned { worker: wid });
                        }
                    }
                    std::panic::panic_any(rankhow_core::fault::WorkerDeath);
                }
                drop(payload);
                continue;
            }
        }
        entry.claims.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Package a finished job's result exactly once, release its admission
/// slot, and wake its joiner.
fn finalize(shared: &Shared, entry: &JobEntry) {
    if entry
        .finalized
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return;
    }
    let result = entry.job.result();
    if let Ok(solution) = &result {
        sync::lock(&shared.finished_stats).merge(&solution.stats);
        // End-to-end latency: original admission → completion. One
        // entry per completed job, so latency.count == finished jobs.
        if let Some(tel) = entry.job.telemetry() {
            tel.metrics.latency.record(entry.admitted.elapsed());
            tel.event(rankhow_obs::Event::Completed {
                status: match solution.status {
                    SolveStatus::Optimal => "optimal",
                    SolveStatus::NodeLimit => "node_limit",
                    SolveStatus::TimeLimit => "time_limit",
                    SolveStatus::Cancelled => "cancelled",
                    SolveStatus::Rejected => "rejected",
                    SolveStatus::Failed => "failed",
                },
            });
        }
    }
    // Run the spawner's hook *before* waking the joiner: a caller
    // observing completion may rely on what the hook published (e.g.
    // the router's cache insert serving the next query). `Err` results
    // flow through too — the router's retry/quarantine bookkeeping
    // needs them — and a panicking hook is contained here rather than
    // taking the finalizing worker (and the wakeup below) with it.
    if let Some(hook) = &entry.on_complete {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hook(&result, entry.job.root_artifacts());
        }));
    }
    // Release the job's admission slot under the queue lock so a
    // `wait_capacity` parked on the capacity condvar cannot miss the
    // wakeup between its predicate check and its wait. This happens
    // *before* the joiner wakes: anything `join` returns into (a load
    // snapshot, `live_jobs`) already reflects the completed job.
    {
        let _queue = sync::lock(&shared.queue);
        shared.live.fetch_sub(1, Ordering::AcqRel);
        shared.capacity.notify_all();
    }
    entry.completion.set(result);
}
