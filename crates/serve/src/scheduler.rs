//! The scheduler: a long-lived worker pool multiplexing many
//! [`SolveJob`]s with round-robin node-budget time slicing.

use crate::handle::{Completion, SolveHandle};
use rankhow_core::{
    CellScheduler, EngineScratch, OptProblem, Solution, SolveJob, SolverConfig, SolverError,
    SolverStats, StepOutcome,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default fairness slice: nodes a worker expands on one job before
/// rotating to the next queued job. Small enough that a heavy query
/// cannot starve light ones, large enough to amortize the rotation.
const DEFAULT_SLICE_NODES: usize = 64;

/// One spawned job: the reentrant engine state plus completion plumbing.
pub(crate) struct JobEntry {
    pub(crate) job: SolveJob<Arc<OptProblem>>,
    pub(crate) completion: Completion,
    /// Taken (CAS) by the worker that packages the final result.
    finalized: AtomicBool,
}

struct Shared {
    /// Round-robin run queue. Invariant: every spawned, not-yet-
    /// finalized-and-observed entry appears here exactly once; workers
    /// re-enqueue an entry *before* stepping it, so idle workers can
    /// co-step the same job.
    queue: Mutex<VecDeque<Arc<JobEntry>>>,
    available: Condvar,
    shutdown: AtomicBool,
    threads: usize,
    slice_nodes: usize,
    jobs_spawned: AtomicU64,
    /// Aggregate statistics over completed jobs (`jobs` counts them).
    finished_stats: Mutex<SolverStats>,
}

/// A long-lived worker pool that interleaves node expansion across many
/// concurrent solve jobs.
///
/// Fairness: each worker advances the front job of a shared round-robin
/// queue by one node-budget slice, then rotates. A job with more lanes
/// than active claimants is co-stepped by idle workers (work-stealing
/// across its frontier lanes), so a lone heavy query still uses the
/// whole pool.
///
/// Dropping the scheduler cancels every outstanding job cooperatively,
/// finalizes it with its best-so-far incumbent, and joins the workers —
/// outstanding [`SolveHandle::join`] calls return promptly.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// A pool of `threads` workers (≥ 1) with the default fairness
    /// slice.
    pub fn new(threads: usize) -> Self {
        Scheduler::with_slice(threads, DEFAULT_SLICE_NODES)
    }

    /// A pool with an explicit fairness slice (nodes per job turn).
    pub fn with_slice(threads: usize, slice_nodes: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
            slice_nodes: slice_nodes.max(1),
            jobs_spawned: AtomicU64::new(0),
            finished_stats: Mutex::new(SolverStats::default()),
        });
        let workers = (0..threads)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rankhow-serve-{wid}"))
                    .spawn(move || worker_loop(&shared, wid))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { shared, workers }
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Total jobs ever spawned on this scheduler.
    pub fn jobs_spawned(&self) -> u64 {
        self.shared.jobs_spawned.load(Ordering::Acquire)
    }

    /// Aggregate statistics over *completed* jobs (`stats().jobs` is
    /// their count; counters are summed across jobs).
    pub fn stats(&self) -> SolverStats {
        self.shared.finished_stats.lock().unwrap().clone()
    }

    /// Enqueue a solve job; returns immediately. The job runs with one
    /// frontier lane per pool worker — `config.threads` is ignored here,
    /// the pool decides the parallelism. Root setup (reduction, root
    /// heuristics) happens on a worker, not on the calling thread; even
    /// an infeasible instance surfaces through
    /// [`SolveHandle::join`](crate::SolveHandle::join), never as a
    /// spawn-time panic.
    pub fn spawn(&self, problem: OptProblem, config: SolverConfig) -> SolveHandle {
        self.spawn_shared(Arc::new(problem), config)
    }

    /// [`Scheduler::spawn`] without copying the problem — for callers
    /// that submit many jobs over the same dataset (batch serving,
    /// SYM-GD cell chains).
    pub fn spawn_shared(&self, problem: Arc<OptProblem>, config: SolverConfig) -> SolveHandle {
        let entry = Arc::new(JobEntry {
            job: SolveJob::new(problem, config, self.shared.threads),
            completion: Completion::new(),
            finalized: AtomicBool::new(false),
        });
        self.shared.jobs_spawned.fetch_add(1, Ordering::AcqRel);
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(Arc::clone(&entry));
        }
        self.shared.available.notify_one();
        SolveHandle::new(entry)
    }
}

/// SYM-GD cell solves become scheduler jobs: the chain shares the
/// pool with every other in-flight query, and each cell reuses the
/// workers' warm LP workspaces.
impl CellScheduler for Scheduler {
    fn solve_cell(
        &self,
        problem: &Arc<OptProblem>,
        config: SolverConfig,
    ) -> Result<Solution, SolverError> {
        self.spawn_shared(Arc::clone(problem), config).join()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Cancel everything still live so joiners unblock promptly;
            // workers drain the queue, finalizing each job with its
            // best-so-far incumbent.
            let queue = self.shared.queue.lock().unwrap();
            for entry in queue.iter() {
                entry.job.cancel();
            }
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, wid: usize) {
    // One scratch for this worker's whole life: the SimplexWorkspace
    // tableau allocation survives across every job it touches.
    let mut scratch = EngineScratch::new();
    loop {
        let entry = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(entry) = queue.pop_front() {
                    break Some(entry);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        let Some(entry) = entry else {
            return; // shutdown, queue drained
        };
        if entry.job.is_finished() {
            // Drop the queue's copy of a finished job (and make sure it
            // was finalized, e.g. when `Done` raced between workers).
            finalize(shared, &entry);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            entry.job.cancel();
        }
        // Re-enqueue *before* stepping: keeps the round-robin rotation
        // going and lets idle workers co-step this job's other lanes.
        {
            let mut queue = shared.queue.lock().unwrap();
            queue.push_back(Arc::clone(&entry));
        }
        shared.available.notify_one();
        match entry.job.step(wid, &mut scratch, shared.slice_nodes) {
            StepOutcome::Done => finalize(shared, &entry),
            StepOutcome::Starved => std::thread::yield_now(),
            StepOutcome::Progress => {}
        }
    }
}

/// Package a finished job's result exactly once and wake its joiner.
fn finalize(shared: &Shared, entry: &JobEntry) {
    if entry
        .finalized
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return;
    }
    let result = entry.job.result();
    if let Ok(solution) = &result {
        shared.finished_stats.lock().unwrap().merge(&solution.stats);
    }
    entry.completion.set(result);
}
