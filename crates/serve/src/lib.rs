//! # RankHow serving layer: one worker pool, many concurrent solves
//!
//! The blocking [`RankHow::solve`](rankhow_core::RankHow) is the wrong
//! shape for serving: one query owns a whole thread pool until it
//! finishes, with no way to cancel, bound, or observe it. This crate
//! turns the engine's reentrant [`SolveJob`](rankhow_core::SolveJob)
//! API into a service:
//!
//! - [`Scheduler`] owns a long-lived worker pool. [`Scheduler::spawn`]
//!   enqueues an OPT instance as a *job* and returns immediately with a
//!   [`SolveHandle`].
//! - Workers advance jobs in round-robin **node-budget slices**
//!   (fairness: no query can starve the others), stealing work from
//!   each other's frontier lanes *within* a job, and co-stepping the
//!   same job when the queue has fewer jobs than workers.
//! - Each worker keeps one [`EngineScratch`](rankhow_core::EngineScratch)
//!   — i.e. one reusable `rankhow_lp::SimplexWorkspace` tableau —
//!   across *all* jobs it ever touches, so hopping between queries
//!   allocates nothing in the LP layer.
//! - [`SolveHandle::cancel`] and [`SolveHandle::deadline`] stop a job
//!   cooperatively at node granularity; the job still completes with
//!   its best-so-far incumbent and a bounded
//!   [`SolveStatus`](rankhow_core::SolveStatus) instead of an error.
//! - [`SolveHandle::best_so_far`] streams anytime incumbents while the
//!   job runs.
//!
//! SYM-GD chains plug in through
//! [`CellScheduler`](rankhow_core::CellScheduler): `SymGd::solve_on`
//! submits each cell solve as a job here, warm-started from the
//! previous cell's optimum.
//!
//! For multi-pool serving, the scheduler also exposes the primitives
//! the `rankhow-router` layer shards over:
//!
//! - [`Scheduler::load`] — a [`PoolLoad`] snapshot (run-queue depth +
//!   in-flight jobs) for least-loaded placement;
//! - [`Scheduler::try_spawn_shared`] — spawn with an admission cap,
//!   handing a [`RejectedSpawn`] back instead of enqueueing when the
//!   pool is full, and [`Scheduler::wait_capacity`] for backpressure;
//! - [`Scheduler::take_unstarted`] / [`Scheduler::adopt`] — migrate a
//!   [`QueuedJob`] between pools; un-started jobs have no root state,
//!   so rebalancing moves only the entry itself;
//! - [`SolveHandle::rejected`] — the pre-completed handle a shed query
//!   resolves to
//!   ([`SolveStatus::Rejected`](rankhow_core::SolveStatus)).
//!
//! # Fault tolerance
//!
//! A panicking job is *isolated*, not fatal: every
//! [`SolveJob::step`](rankhow_core::SolveJob::step) runs under
//! `catch_unwind`, so a panic
//! finalizes that one job with
//! [`SolveStatus::Failed`](rankhow_core::SolveStatus) (best-so-far
//! incumbent preserved, joiner woken normally) while sibling jobs keep
//! solving. If the panic was a *worker death*
//! (`rankhow_core::fault::WorkerDeath` under the `fault-inject`
//! feature), the thread itself unwinds and the pool's supervisor
//! respawns a replacement, up to [`Scheduler::with_options`]'s respawn
//! cap ([`DEFAULT_RESPAWN_CAP`]); a pool whose last worker dies with
//! the cap exhausted goes *dead* — it fails its queue, refuses new
//! spawns, and never hangs a joiner. The caught-panic and respawn
//! counts surface as
//! [`SolverStats::{job_panics, worker_respawns}`](rankhow_core::SolverStats).
//!
//! All internal locks go through the shared poison-tolerant helpers
//! ([`rankhow_sync`]): a worker that panics mid-step cannot wedge other
//! handles' `join` / `best_so_far` or the run queue itself.
//!
//! ```
//! use rankhow_core::{OptProblem, SolverConfig};
//! use rankhow_serve::Scheduler;
//! use rankhow_data::Dataset;
//! use rankhow_ranking::GivenRanking;
//!
//! let data = Dataset::from_rows(
//!     vec!["A1".into(), "A2".into(), "A3".into()],
//!     vec![vec![3.0, 2.0, 8.0], vec![4.0, 1.0, 15.0], vec![1.0, 1.0, 14.0]],
//! )
//! .unwrap();
//! let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
//! let problem = OptProblem::new(data, pi).unwrap();
//!
//! let scheduler = Scheduler::new(2);
//! let handle = scheduler.spawn(problem, SolverConfig::default());
//! let solution = handle.join().unwrap();
//! assert_eq!(solution.error, 0);
//! assert!(solution.optimal);
//! ```

#![warn(missing_docs)]

mod handle;
mod scheduler;

pub use handle::{RetryRelay, SolveHandle};
pub use scheduler::{
    CompletionHook, PoolLoad, QueuedJob, RejectedSpawn, Scheduler, SpawnOptions,
    DEFAULT_RESPAWN_CAP, DEFAULT_SLICE_NODES,
};
