//! Poison-tolerant locking for the serving layer.
//!
//! A worker that panics while holding a lock poisons it; the default
//! `.lock().unwrap()` then re-raises that panic in *every* other thread
//! touching the same mutex — one crashed worker would wedge every
//! handle's `join`/`best_so_far` and the scheduler's own run queue.
//! The data these locks protect (the job queue, completion slots,
//! aggregate counters) stays structurally valid across a mid-operation
//! panic — every critical section either fully applies or leaves a
//! still-consistent container — so the serving layer recovers the guard
//! and keeps the other queries alive instead of cascading the panic.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering a poisoned guard.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering a poisoned guard. The `bool`
/// is whether the wait timed out (spurious wakeups return `false`; the
/// caller rechecks its predicate either way).
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((guard, timeout)) => (guard, timeout.timed_out()),
        Err(poisoned) => {
            let (guard, timeout) = poisoned.into_inner();
            (guard, timeout.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_survives_poisoning() {
        let shared = Arc::new(Mutex::new(7usize));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(shared.is_poisoned(), "panic while locked must poison");
        // The helper recovers the guard where `.lock().unwrap()` would
        // propagate the worker's panic into this thread.
        assert_eq!(*lock(&shared), 7);
        *lock(&shared) = 8;
        assert_eq!(*lock(&shared), 8);
    }
}
