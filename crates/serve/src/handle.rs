//! The caller's view of one in-flight job.

use crate::scheduler::JobEntry;
use rankhow_core::{Solution, SolverError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Completion slot: the finalized result plus the condvar its joiner
/// parks on.
pub(crate) struct Completion {
    slot: Mutex<Option<Result<Solution, SolverError>>>,
    done: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Self {
        Completion {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Store the final result (first write wins) and wake joiners.
    pub(crate) fn set(&self, result: Result<Solution, SolverError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Result<Solution, SolverError> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap();
        }
    }

    fn is_set(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }
}

/// Handle to a job spawned on a [`Scheduler`](crate::Scheduler).
///
/// The handle is an observer — dropping it does *not* cancel the job
/// (the scheduler keeps solving; cancel explicitly if the answer is no
/// longer wanted).
pub struct SolveHandle {
    entry: Arc<JobEntry>,
}

impl SolveHandle {
    pub(crate) fn new(entry: Arc<JobEntry>) -> Self {
        SolveHandle { entry }
    }

    /// Request cooperative cancellation. The job stops at the next node
    /// boundary and completes with
    /// [`SolveStatus::Cancelled`](rankhow_core::SolveStatus) carrying
    /// its best-so-far incumbent (or
    /// [`SolverError::Infeasible`] if none was ever found). Idempotent;
    /// a no-op once the job finished.
    pub fn cancel(&self) {
        self.entry.job.cancel();
    }

    /// Set (or move) the job's deadline to `after` from now. Checked at
    /// node granularity: once expired, the job completes with
    /// [`SolveStatus::TimeLimit`](rankhow_core::SolveStatus) and its
    /// best-so-far incumbent, overshooting by at most one fairness
    /// slice per worker.
    pub fn deadline(&self, after: Duration) {
        self.entry.job.deadline(after);
    }

    /// The latest anytime incumbent `(error, weights)`, `None` before
    /// the first feasible point. Monotone: successive observations
    /// never report a larger error, and the final
    /// [`Solution::error`](rankhow_core::Solution) is never worse than
    /// any observation.
    pub fn best_so_far(&self) -> Option<(u64, Vec<f64>)> {
        self.entry.job.best_so_far()
    }

    /// Whether the final result is available ([`SolveHandle::join`]
    /// would return without blocking).
    pub fn is_finished(&self) -> bool {
        self.entry.completion.is_set()
    }

    /// Block until the job completes and return its solution. Bounded
    /// jobs (cancelled / deadline / node limit) return `Ok` with the
    /// corresponding [`SolveStatus`](rankhow_core::SolveStatus) — an
    /// `Err` means infeasibility (or no feasible point before the job
    /// was stopped) or an LP failure.
    pub fn join(self) -> Result<Solution, SolverError> {
        self.entry.completion.wait()
    }
}
