//! The caller's view of one in-flight job.

use crate::scheduler::JobEntry;
use rankhow_core::{Solution, SolverError};
use rankhow_sync as sync;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Completion slot: the finalized result plus the condvar its joiner
/// parks on.
pub(crate) struct Completion {
    slot: Mutex<Option<Result<Solution, SolverError>>>,
    done: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Self {
        Completion {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Store the final result (first write wins) and wake joiners.
    pub(crate) fn set(&self, result: Result<Solution, SolverError>) {
        let mut slot = sync::lock(&self.slot);
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Result<Solution, SolverError> {
        let mut slot = sync::lock(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = sync::wait(&self.done, slot);
        }
    }

    fn is_set(&self) -> bool {
        sync::lock(&self.slot).is_some()
    }
}

/// What a [`SolveHandle`] observes: a live scheduler job, a query that
/// was answered before it ever became one (a cross-query cache exact
/// hit), one that admission control shed, or a retryable query whose
/// result arrives through a [`RetryRelay`] rather than any single
/// attempt.
enum Inner {
    Job(Arc<JobEntry>),
    Completed(Box<Solution>),
    Rejected,
    Relay(Arc<RetryRelay>),
}

/// Completion relay decoupling a [`SolveHandle`] from any one spawn
/// attempt — the router's retry layer resolves it once, after however
/// many re-admissions its `RetryPolicy` allows.
///
/// The joiner parks on the relay's own completion slot; each attempt's
/// [`JobEntry`] is *bound* ([`RetryRelay::bind`]) as the current
/// attempt so `cancel` / `deadline` / `best_so_far` keep working
/// mid-retry. Whoever orchestrates retries (the router's delivery hook)
/// calls [`RetryRelay::resolve`] exactly once with the final result;
/// first write wins, so a racing orchestrator teardown can safely
/// resolve defensively too.
pub struct RetryRelay {
    slot: Completion,
    current: Mutex<Option<Arc<JobEntry>>>,
    cancelled: AtomicBool,
}

impl RetryRelay {
    /// Bind `attempt` (a handle freshly returned by a spawn) as the
    /// relay's current attempt. Only live-job handles bind; completed /
    /// rejected handles are ignored — resolve the relay directly with
    /// their result instead. If the relay was cancelled while no
    /// attempt was bound, the new attempt is cancelled immediately so a
    /// retry cannot resurrect a cancelled query.
    pub fn bind(&self, attempt: &SolveHandle) {
        if let Inner::Job(entry) = &attempt.inner {
            *sync::lock(&self.current) = Some(Arc::clone(entry));
            if self.cancelled.load(Ordering::Acquire) {
                entry.job.cancel();
            }
        }
    }

    /// Deliver the final result to the joiner (first write wins;
    /// idempotent afterwards).
    pub fn resolve(&self, result: Result<Solution, SolverError>) {
        self.slot.set(result);
    }

    /// Whether the handle side requested cancellation — a retry
    /// orchestrator must not re-admit a cancelled query.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Whether [`RetryRelay::resolve`] has delivered the final result.
    pub fn is_resolved(&self) -> bool {
        self.slot.is_set()
    }
}

/// Handle to a job spawned on a [`Scheduler`](crate::Scheduler).
///
/// The handle is an observer — dropping it does *not* cancel the job
/// (the scheduler keeps solving; cancel explicitly if the answer is no
/// longer wanted).
pub struct SolveHandle {
    inner: Inner,
}

impl SolveHandle {
    pub(crate) fn new(entry: Arc<JobEntry>) -> Self {
        SolveHandle {
            inner: Inner::Job(entry),
        }
    }

    /// An already-completed handle for a query shed by admission
    /// control: [`SolveHandle::join`] returns
    /// [`Solution::rejected`](rankhow_core::Solution::rejected)
    /// immediately, [`SolveHandle::best_so_far`] is always `None`, and
    /// cancel/deadline are no-ops. This is the shape `rankhow-router`
    /// hands back for over-capacity spawns, keeping the spawn surface
    /// uniform: callers always get a handle, never an error or a panic.
    pub fn rejected() -> Self {
        SolveHandle {
            inner: Inner::Rejected,
        }
    }

    /// An already-completed handle carrying a ready solution — what the
    /// router hands back on a cross-query cache *exact hit*: no pool is
    /// touched, [`SolveHandle::join`] returns the stored solution
    /// immediately, and cancel/deadline are no-ops (there is nothing
    /// running to stop).
    pub fn completed(solution: Solution) -> Self {
        SolveHandle {
            inner: Inner::Completed(Box::new(solution)),
        }
    }

    /// A handle whose result arrives through a [`RetryRelay`] instead
    /// of any single spawn attempt — the shape the router hands back
    /// when its `RetryPolicy` may transparently re-admit the query
    /// after a failure. The caller keeps the handle; the orchestrator
    /// keeps the relay, binds each attempt, and resolves it once.
    pub fn relayed() -> (Self, Arc<RetryRelay>) {
        let relay = Arc::new(RetryRelay {
            slot: Completion::new(),
            current: Mutex::new(None),
            cancelled: AtomicBool::new(false),
        });
        (
            SolveHandle {
                inner: Inner::Relay(Arc::clone(&relay)),
            },
            relay,
        )
    }

    /// Request cooperative cancellation. The job stops at the next node
    /// boundary and completes with
    /// [`SolveStatus::Cancelled`](rankhow_core::SolveStatus) carrying
    /// its best-so-far incumbent (or
    /// [`SolverError::Infeasible`] if none was ever found). Idempotent;
    /// a no-op once the job finished.
    pub fn cancel(&self) {
        match &self.inner {
            Inner::Job(entry) => entry.job.cancel(),
            Inner::Relay(relay) => {
                // Flag first so a concurrent retry re-admission sees the
                // cancellation, then stop the in-flight attempt.
                relay.cancelled.store(true, Ordering::Release);
                if let Some(entry) = sync::lock(&relay.current).as_ref() {
                    entry.job.cancel();
                }
            }
            Inner::Completed(_) | Inner::Rejected => {}
        }
    }

    /// Set (or move) the job's deadline to `after` from now. Checked at
    /// node granularity: once expired, the job completes with
    /// [`SolveStatus::TimeLimit`](rankhow_core::SolveStatus) and its
    /// best-so-far incumbent, overshooting by at most one fairness
    /// slice per worker.
    ///
    /// On a relayed (retryable) handle the deadline applies to the
    /// *current* attempt only — a later retry starts with a fresh
    /// budget, exactly like a manual resubmission would.
    pub fn deadline(&self, after: Duration) {
        match &self.inner {
            Inner::Job(entry) => entry.job.deadline(after),
            Inner::Relay(relay) => {
                if let Some(entry) = sync::lock(&relay.current).as_ref() {
                    entry.job.deadline(after);
                }
            }
            Inner::Completed(_) | Inner::Rejected => {}
        }
    }

    /// The latest anytime incumbent `(error, weights)`, `None` before
    /// the first feasible point. Monotone: successive observations
    /// never report a larger error, and the final
    /// [`Solution::error`](rankhow_core::Solution) is never worse than
    /// any observation. A rejected handle never has one.
    pub fn best_so_far(&self) -> Option<(u64, Vec<f64>)> {
        match &self.inner {
            Inner::Job(entry) => entry.job.best_so_far(),
            Inner::Completed(sol) => {
                (sol.error != u64::MAX).then(|| (sol.error, sol.weights.clone()))
            }
            Inner::Rejected => None,
            Inner::Relay(relay) => {
                let entry = sync::lock(&relay.current).as_ref().map(Arc::clone)?;
                entry.job.best_so_far()
            }
        }
    }

    /// Whether the final result is available ([`SolveHandle::join`]
    /// would return without blocking).
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Job(entry) => entry.completion.is_set(),
            Inner::Completed(_) => true,
            Inner::Rejected => true,
            Inner::Relay(relay) => relay.slot.is_set(),
        }
    }

    /// Block until the job completes and return its solution. Bounded
    /// jobs (cancelled / deadline / node limit / admission-rejected)
    /// return `Ok` with the corresponding
    /// [`SolveStatus`](rankhow_core::SolveStatus) — an
    /// `Err` means infeasibility (or no feasible point before the job
    /// was stopped) or an LP failure.
    pub fn join(self) -> Result<Solution, SolverError> {
        match self.inner {
            Inner::Job(entry) => entry.completion.wait(),
            Inner::Completed(sol) => Ok(*sol),
            Inner::Rejected => Ok(Solution::rejected()),
            Inner::Relay(relay) => relay.slot.wait(),
        }
    }
}
