//! The caller's view of one in-flight job.

use crate::scheduler::JobEntry;
use crate::sync;
use rankhow_core::{Solution, SolverError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Completion slot: the finalized result plus the condvar its joiner
/// parks on.
pub(crate) struct Completion {
    slot: Mutex<Option<Result<Solution, SolverError>>>,
    done: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Self {
        Completion {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Store the final result (first write wins) and wake joiners.
    pub(crate) fn set(&self, result: Result<Solution, SolverError>) {
        let mut slot = sync::lock(&self.slot);
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Result<Solution, SolverError> {
        let mut slot = sync::lock(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = sync::wait(&self.done, slot);
        }
    }

    fn is_set(&self) -> bool {
        sync::lock(&self.slot).is_some()
    }
}

/// What a [`SolveHandle`] observes: a live scheduler job, a query that
/// was answered before it ever became one (a cross-query cache exact
/// hit), or one that admission control shed.
enum Inner {
    Job(Arc<JobEntry>),
    Completed(Box<Solution>),
    Rejected,
}

/// Handle to a job spawned on a [`Scheduler`](crate::Scheduler).
///
/// The handle is an observer — dropping it does *not* cancel the job
/// (the scheduler keeps solving; cancel explicitly if the answer is no
/// longer wanted).
pub struct SolveHandle {
    inner: Inner,
}

impl SolveHandle {
    pub(crate) fn new(entry: Arc<JobEntry>) -> Self {
        SolveHandle {
            inner: Inner::Job(entry),
        }
    }

    /// An already-completed handle for a query shed by admission
    /// control: [`SolveHandle::join`] returns
    /// [`Solution::rejected`](rankhow_core::Solution::rejected)
    /// immediately, [`SolveHandle::best_so_far`] is always `None`, and
    /// cancel/deadline are no-ops. This is the shape `rankhow-router`
    /// hands back for over-capacity spawns, keeping the spawn surface
    /// uniform: callers always get a handle, never an error or a panic.
    pub fn rejected() -> Self {
        SolveHandle {
            inner: Inner::Rejected,
        }
    }

    /// An already-completed handle carrying a ready solution — what the
    /// router hands back on a cross-query cache *exact hit*: no pool is
    /// touched, [`SolveHandle::join`] returns the stored solution
    /// immediately, and cancel/deadline are no-ops (there is nothing
    /// running to stop).
    pub fn completed(solution: Solution) -> Self {
        SolveHandle {
            inner: Inner::Completed(Box::new(solution)),
        }
    }

    /// Request cooperative cancellation. The job stops at the next node
    /// boundary and completes with
    /// [`SolveStatus::Cancelled`](rankhow_core::SolveStatus) carrying
    /// its best-so-far incumbent (or
    /// [`SolverError::Infeasible`] if none was ever found). Idempotent;
    /// a no-op once the job finished.
    pub fn cancel(&self) {
        if let Inner::Job(entry) = &self.inner {
            entry.job.cancel();
        }
    }

    /// Set (or move) the job's deadline to `after` from now. Checked at
    /// node granularity: once expired, the job completes with
    /// [`SolveStatus::TimeLimit`](rankhow_core::SolveStatus) and its
    /// best-so-far incumbent, overshooting by at most one fairness
    /// slice per worker.
    pub fn deadline(&self, after: Duration) {
        if let Inner::Job(entry) = &self.inner {
            entry.job.deadline(after);
        }
    }

    /// The latest anytime incumbent `(error, weights)`, `None` before
    /// the first feasible point. Monotone: successive observations
    /// never report a larger error, and the final
    /// [`Solution::error`](rankhow_core::Solution) is never worse than
    /// any observation. A rejected handle never has one.
    pub fn best_so_far(&self) -> Option<(u64, Vec<f64>)> {
        match &self.inner {
            Inner::Job(entry) => entry.job.best_so_far(),
            Inner::Completed(sol) => {
                (sol.error != u64::MAX).then(|| (sol.error, sol.weights.clone()))
            }
            Inner::Rejected => None,
        }
    }

    /// Whether the final result is available ([`SolveHandle::join`]
    /// would return without blocking).
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Job(entry) => entry.completion.is_set(),
            Inner::Completed(_) => true,
            Inner::Rejected => true,
        }
    }

    /// Block until the job completes and return its solution. Bounded
    /// jobs (cancelled / deadline / node limit / admission-rejected)
    /// return `Ok` with the corresponding
    /// [`SolveStatus`](rankhow_core::SolveStatus) — an
    /// `Err` means infeasibility (or no feasible point before the job
    /// was stopped) or an LP failure.
    pub fn join(self) -> Result<Solution, SolverError> {
        match self.inner {
            Inner::Job(entry) => entry.completion.wait(),
            Inner::Completed(sol) => Ok(*sol),
            Inner::Rejected => Ok(Solution::rejected()),
        }
    }
}
