//! # Poison-tolerant locking for the serving stack
//!
//! A worker that panics while holding a lock poisons it; the default
//! `.lock().unwrap()` then re-raises that panic in *every* other thread
//! touching the same mutex — one crashed worker would wedge every
//! handle's `join`/`best_so_far`, the scheduler's run queue, the
//! router's cache shards, and the telemetry registry. The data these
//! locks protect (job queues, completion slots, aggregate counters,
//! LRU shards, event rings) stays structurally valid across a
//! mid-operation panic — every critical section either fully applies or
//! leaves a still-consistent container — so the serving layers recover
//! the guard and keep the other queries alive instead of cascading the
//! panic.
//!
//! Every layer of the stack (`rankhow-obs`, `rankhow-core`'s engine,
//! `rankhow-serve`, `rankhow-router`) routes its internal mutexes and
//! condvars through these three helpers; `.lock().unwrap()` is reserved
//! for test code that *wants* to observe poisoning.

#![warn(missing_docs)]

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock `mutex`, recovering the guard if a panicking thread poisoned it.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering a poisoned guard.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering a poisoned guard. The `bool`
/// is whether the wait timed out (spurious wakeups return `false`; the
/// caller rechecks its predicate either way).
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((guard, timeout)) => (guard, timeout.timed_out()),
        Err(poisoned) => {
            let (guard, timeout) = poisoned.into_inner();
            (guard, timeout.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    #[test]
    fn lock_survives_poisoning() {
        let shared = Arc::new(Mutex::new(7usize));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(shared.is_poisoned(), "panic while locked must poison");
        // The helper recovers the guard where `.lock().unwrap()` would
        // propagate the worker's panic into this thread.
        assert_eq!(*lock(&shared), 7);
        *lock(&shared) = 8;
        assert_eq!(*lock(&shared), 8);
    }

    #[test]
    fn condvar_waits_survive_poisoning() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let pair = Arc::clone(&pair);
            let _ = std::thread::spawn(move || {
                let _guard = pair.0.lock().unwrap();
                panic!("poison under the condvar's mutex");
            })
            .join();
        }
        assert!(pair.0.is_poisoned());
        // A timed wait on the poisoned pair still returns a usable
        // guard and a truthful timeout flag.
        let guard = lock(&pair.0);
        let (guard, timed_out) = wait_timeout(&pair.1, guard, Duration::from_millis(1));
        assert!(timed_out);
        assert!(!*guard);
    }
}
