//! Plain-text table/series emitters: the same rows the paper's tables
//! show and the same (x, series...) points its figures plot.

use std::io::Write;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }
}

/// Print a [`Table`] with aligned columns (markdown-pipe style).
pub fn print_table(title: &str, table: &Table) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut widths: Vec<usize> = table.headers.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let _ = writeln!(out, "\n## {title}\n");
    let header: Vec<String> = table
        .headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "| {} |", sep.join(" | "));
    for row in &table.rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    }
    let _ = out.flush();
}

/// Print an x-vs-many-series block (one figure panel): header row then
/// one line per x value.
pub fn print_series(
    title: &str,
    x_name: &str,
    series_names: &[&str],
    points: &[(String, Vec<String>)],
) {
    let mut headers = vec![x_name];
    headers.extend_from_slice(series_names);
    let mut t = Table::new(&headers);
    for (x, ys) in points {
        let mut row = vec![x.clone()];
        row.extend(ys.iter().cloned());
        t.row(row);
    }
    print_table(title, &t);
}

/// Format seconds with sensible precision.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 0.001 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs < 100.0 {
        format!("{secs:.2}s")
    } else {
        format!("{secs:.0}s")
    }
}

/// Format an error-per-tuple value.
pub fn fmt_ept(error: u64, k: usize) -> String {
    format!("{:.3}", error as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(1000.0), "1000s");
        assert_eq!(fmt_ept(6, 4), "1.500");
    }
}
