//! Unified method runner: every algorithm the paper compares, behind one
//! interface, timed and evaluated identically.

use rankhow_baselines::{
    adarank::{self, AdaRankConfig},
    linear_regression, ordinal_regression,
    sampling::{self, SamplingConfig},
    tree::{self, TreeConfig},
    Instance,
};
use rankhow_core::{seeding, OptProblem, RankHow, SolverConfig, SymGd, SymGdConfig};
use std::time::{Duration, Instant};

/// Which algorithm to run.
#[derive(Clone, Debug, PartialEq)]
pub enum Method {
    /// Exact RankHow (specialized branch-and-bound), with a time budget.
    RankHow {
        /// Solver time budget.
        budget: Duration,
    },
    /// SYM-GD with a fixed cell size (Algorithm 1).
    SymGd {
        /// Fixed cell size `c`.
        cell: f64,
    },
    /// SYM-GD adaptive with a total budget (Algorithm 2).
    SymGdAdaptive {
        /// Total wall-clock budget `t_total`.
        budget: Duration,
    },
    /// Ordinal regression (the paper's OR, ε-gap variant).
    OrdinalRegression,
    /// Plain least squares on rank labels.
    LinearRegression,
    /// AdaRank boosting.
    AdaRank,
    /// Random simplex sampling under a budget.
    Sampling {
        /// Sampling time budget.
        budget: Duration,
    },
    /// Arrangement-tree enumeration with safety limits.
    Tree {
        /// LP-check limit (0 = unlimited).
        node_limit: usize,
        /// Wall-clock limit.
        budget: Duration,
        /// Use the paper's ε1 gap (TREE+) instead of a hairline.
        with_gap: bool,
    },
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::RankHow { .. } => "RankHow",
            Method::SymGd { .. } => "Sym-GD",
            Method::SymGdAdaptive { .. } => "Sym-GD (adaptive)",
            Method::OrdinalRegression => "Ordinal Regression",
            Method::LinearRegression => "Linear Regression",
            Method::AdaRank => "AdaRank",
            Method::Sampling { .. } => "Sampling",
            Method::Tree { with_gap, .. } => {
                if *with_gap {
                    "Tree+eps1"
                } else {
                    "Tree"
                }
            }
        }
    }
}

/// Result of one method run.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method display name.
    pub name: &'static str,
    /// Position error (Definition 3).
    pub error: u64,
    /// Error divided by k (the paper's per-tuple y-axis).
    pub error_per_tuple: f64,
    /// Wall-clock runtime.
    pub time: Duration,
    /// Whether the method proved optimality (exact methods only).
    pub optimal: bool,
    /// The fitted weights.
    pub weights: Vec<f64>,
}

/// Run one method on one problem.
pub fn run_method(problem: &OptProblem, method: &Method) -> MethodResult {
    let k = problem.given.k().max(1);
    let start = Instant::now();
    let (error, optimal, weights) = match method {
        Method::RankHow { budget } => {
            let seed = seeding::ordinal_seed(problem);
            let solver = RankHow::with_config(SolverConfig {
                time_limit: Some(*budget),
                warm_start: Some(seed),
                // Figure/table reproductions must be bit-reproducible:
                // one worker keeps the returned weight vector (not just
                // the proved error) schedule-independent.
                threads: 1,
                ..SolverConfig::default()
            });
            match solver.solve(problem) {
                Ok(sol) => (sol.error, sol.optimal, sol.weights),
                Err(_) => (u64::MAX, false, vec![]),
            }
        }
        Method::SymGd { cell } => {
            let seed = seeding::ordinal_seed(problem);
            let res = SymGd::with_config(SymGdConfig {
                cell_size: *cell,
                adaptive: false,
                max_iterations: 25,
                cell_time_limit: Some(Duration::from_secs(5)),
                ..SymGdConfig::default()
            })
            .solve(problem, &seed)
            .expect("symgd");
            (res.error, false, res.weights)
        }
        Method::SymGdAdaptive { budget } => {
            let seed = seeding::ordinal_seed(problem);
            let res = SymGd::with_config(SymGdConfig::adaptive(*budget))
                .solve(problem, &seed)
                .expect("symgd");
            (res.error, false, res.weights)
        }
        Method::OrdinalRegression => {
            let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
            let cfg = ordinal_regression::config_plus(problem.tol);
            let f = ordinal_regression::fit(&inst, &cfg);
            (f.error, false, f.weights)
        }
        Method::LinearRegression => {
            let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
            let f = linear_regression::fit(&inst, linear_regression::Variant::Default);
            (f.error, false, f.weights)
        }
        Method::AdaRank => {
            let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
            let f = adarank::fit(&inst, &AdaRankConfig::default());
            (f.error, false, f.weights)
        }
        Method::Sampling { budget } => {
            let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
            let res = sampling::fit(
                &inst,
                &SamplingConfig {
                    budget: *budget,
                    ..SamplingConfig::default()
                },
                None,
            );
            (res.fitted.error, false, res.fitted.weights)
        }
        Method::Tree {
            node_limit,
            budget,
            with_gap,
        } => {
            let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
            let cfg = if *with_gap {
                TreeConfig {
                    node_limit: *node_limit,
                    time_limit: Some(*budget),
                    ..TreeConfig::with_gap(problem.tol)
                }
            } else {
                TreeConfig {
                    node_limit: *node_limit,
                    time_limit: Some(*budget),
                    ..TreeConfig::default()
                }
            };
            let res = tree::fit(&inst, &cfg);
            match res.fitted {
                Some(f) => (f.error, res.completed, f.weights),
                None => (u64::MAX, false, vec![]),
            }
        }
    };
    let time = start.elapsed();
    MethodResult {
        name: method.name(),
        error,
        error_per_tuple: if error == u64::MAX {
            f64::INFINITY
        } else {
            error as f64 / k as f64
        },
        time,
        optimal,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setups;

    #[test]
    fn all_methods_run_on_small_nba() {
        let p = setups::nba_problem(120, 4, 3);
        let methods = [
            Method::RankHow {
                budget: Duration::from_secs(10),
            },
            Method::SymGd { cell: 0.2 },
            Method::OrdinalRegression,
            Method::LinearRegression,
            Method::AdaRank,
            Method::Sampling {
                budget: Duration::from_millis(100),
            },
        ];
        let mut rankhow_err = None;
        for m in &methods {
            let r = run_method(&p, m);
            assert!(r.error < u64::MAX, "{} failed", r.name);
            assert_eq!(p.evaluate(&r.weights), r.error, "{} eval", r.name);
            if matches!(m, Method::RankHow { .. }) {
                rankhow_err = Some(r.error);
            }
        }
        // RankHow must be at least as good as every heuristic.
        let best = rankhow_err.unwrap();
        for m in &methods[1..] {
            let r = run_method(&p, m);
            assert!(r.error >= best, "{} beat the exact solver", r.name);
        }
    }

    #[test]
    fn tree_respects_limits() {
        let p = setups::nba_problem(60, 4, 3);
        let r = run_method(
            &p,
            &Method::Tree {
                node_limit: 50,
                budget: Duration::from_secs(5),
                with_gap: false,
            },
        );
        // May or may not complete, but must return quickly and validly.
        assert!(r.time < Duration::from_secs(10));
    }
}
