//! Run the complete evaluation suite (all tables and figures) at the
//! selected scale, printing Table II first. Equivalent to invoking every
//! per-figure binary in order.

use rankhow_bench::report::{print_table, Table};
use rankhow_bench::Scale;
use std::process::Command;

fn main() {
    let scale = Scale::from_args();
    println!("# RankHow evaluation suite — scale: {}", scale.label());

    // Table II: the parameter grid.
    let mut t2 = Table::new(&["Parameter", "NBA", "CSRankings", "Synthetic"]);
    t2.row(vec![
        "k".into(),
        "2,3,4,5,[6]".into(),
        "5,[10],15,20,25".into(),
        "5,[10],15,20,25".into(),
    ]);
    t2.row(vec![
        "n".into(),
        format!("…,{} (full: 22840)", scale.nba_n()),
        "100..628".into(),
        format!("{} (full: 1000000)", scale.synthetic_n()),
    ]);
    t2.row(vec![
        "m".into(),
        "4,[5],6,7,8".into(),
        "5,[10],…,27".into(),
        "5".into(),
    ]);
    t2.row(vec![
        "distribution".into(),
        "generator (real-world-like)".into(),
        "generator (real-world-like)".into(),
        "uniform, correlated, anti-correlated".into(),
    ]);
    t2.row(vec![
        "given ranking".into(),
        "MP*PER / MVP votes".into(),
        "geometric mean".into(),
        "ΣA_i^p, p ∈ 2..5".into(),
    ]);
    print_table("Table II — parameter settings ([x] = default)", &t2);

    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let args: Vec<String> = if scale == Scale::Full {
        vec!["--full".to_string()]
    } else {
        vec![]
    };
    for bin in [
        "case_study_mvp",
        "fig3a_big_picture",
        "fig3_nba_sweeps",
        "fig3_csr_sweeps",
        "table3_numerical",
        "fig3h_approx_quality",
        "fig3i_cell_size",
        "fig3jkl_scalability",
        "fig3mno_generalizability",
    ] {
        println!("\n{}\n=== {bin} ===", "=".repeat(68));
        let status = Command::new(bin_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("warning: {bin} exited with {status}");
        }
    }
    println!("\nAll experiments complete.");
}
