//! Figure 3i: the cell-size tradeoff — error and execution time of
//! SYM-GD as the cell size grows from 0.001 to 0.010 (NBA, m = 8,
//! k = 10). Paper shape: error drops as cells grow, with little impact
//! on execution time until cell size reaches ~0.008.

use rankhow_bench::report::{fmt_secs, print_series};
use rankhow_bench::{setups, Scale};
use rankhow_core::{seeding, SymGd, SymGdConfig};

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Fig. 3i — SYM-GD cell-size tradeoff — scale: {}",
        scale.label()
    );
    let problem = setups::nba_problem(scale.nba_n(), 8, 10);
    let seed = seeding::ordinal_seed(&problem);
    println!(
        "instance: n={}, m=8, k=10; seed error {}",
        problem.n(),
        problem.evaluate(&seed)
    );

    let mut points = Vec::new();
    for unit in 1..=10usize {
        let cell = unit as f64 * 0.001;
        let start = std::time::Instant::now();
        let res = SymGd::with_config(SymGdConfig {
            cell_size: cell,
            adaptive: false,
            max_iterations: 15,
            cell_time_limit: Some(std::time::Duration::from_secs(5)),
            ..SymGdConfig::default()
        })
        .solve(&problem, &seed)
        .expect("symgd");
        let elapsed = start.elapsed();
        points.push((
            format!("{unit}"),
            vec![
                format!("{:.3}", res.error as f64 / 10.0),
                fmt_secs(elapsed.as_secs_f64()),
                res.iterations.to_string(),
            ],
        ));
        eprintln!("  cell {cell} done");
    }
    print_series(
        "error/tuple and time vs cell size (units of 0.001) — Fig. 3i",
        "cell (x0.001)",
        &["error/tuple", "time", "iterations"],
        &points,
    );
    println!("\npaper shape: error decreases with cell size at modest time cost.");
}
