//! Table III: numerical imprecision — RankHow± and Ordinal Regression±
//! on a 10-tuple, 8-attribute NBA subset, k = 1..10.
//!
//! The "+" configurations use the safe gap (`ε1 = 10⁻⁴`); the "−"
//! configurations use a naive `ε1 = 10⁻¹⁰`. The table reports the *true*
//! position error of each returned function as determined by exact
//! rational verification. Paper shape: the "+" rows are all zeros; the
//! "−" rows show nonzero errors — false positives where the solver
//! believed its solution was perfect.

use rankhow_baselines::ordinal_regression::{self, OrdinalConfig};
use rankhow_baselines::Instance;
use rankhow_bench::report::{print_table, Table};
use rankhow_bench::setups;
use rankhow_core::{verify, OptProblem, RankHow, SolverConfig, Tolerances};

fn main() {
    println!("# Table III — numerical imprecision (10 tuples, 8 attrs)");
    let (data, scores) = setups::table3_subset();

    let mut table = Table::new(&[
        "k",
        "RankHow+",
        "RankHow-",
        "OR+",
        "OR-",
        "claimed- (RankHow)",
    ]);
    let mut plus_all_verified = true;
    let mut minus_any_fp = false;

    for k in 1..=10usize {
        let given = setups::table3_ranking(&scores, k);
        let mut row = vec![k.to_string()];
        let mut claimed_minus = String::new();
        for (is_rankhow, tol) in [
            (true, Tolerances::explicit(5e-5, 1e-4, 0.0)),
            (true, Tolerances::explicit(5e-5, 1e-10, 0.0)),
            (false, Tolerances::explicit(5e-5, 1e-4, 0.0)),
            (false, Tolerances::explicit(5e-5, 1e-10, 0.0)),
        ] {
            let problem =
                OptProblem::with_tolerances(data.clone(), given.clone(), tol).expect("setup");
            let (weights, claimed) = if is_rankhow {
                let sol = RankHow::with_config(SolverConfig {
                    time_limit: Some(std::time::Duration::from_secs(30)),
                    // Table III is about numerics: keep runs reproducible.
                    threads: 1,
                    ..SolverConfig::default()
                })
                .solve(&problem)
                .expect("solve");
                (sol.weights, sol.error)
            } else {
                let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
                let cfg = OrdinalConfig {
                    gap: tol.eps1,
                    tie_band: tol.eps2,
                    ..OrdinalConfig::default()
                };
                let f = ordinal_regression::fit(&inst, &cfg);
                (f.weights, f.error)
            };
            // True error under exact arithmetic — what Table III reports.
            let rep = verify::verify(&problem, &weights).expect("verify");
            row.push(rep.exact_error.to_string());
            let naive = tol.eps1 < 1e-6;
            if is_rankhow && naive {
                claimed_minus = format!("{claimed}");
                if claimed < rep.exact_error {
                    minus_any_fp = true;
                }
            }
            if !naive && rep.exact_error != claimed {
                plus_all_verified = false;
            }
        }
        row.push(claimed_minus);
        table.row(row);
        eprintln!("  k={k} done");
    }
    print_table("true position error by configuration (Table III)", &table);
    println!("\n'+' rows use eps1 = 1e-4 (safe gap); '-' rows eps1 = 1e-10 (naive).");
    println!("all '+' solutions verified: {plus_all_verified}");
    println!("any '-' false positive (claimed < true): {minus_any_fp}");
    println!("paper shape: '+' rows all zeros; '-' rows intermittently nonzero.");
}
