//! Figures 3m/3n/3o: generalizability — SYM-GD error with and without
//! derived attributes (`A_i²`) as the hidden ranking function's exponent
//! grows from 2 to 5, on the three synthetic distributions.
//!
//! Paper shape: with only the original attributes, error stays ≤ ~1.1
//! per tuple; adding derived squares cuts it further at moderately
//! higher time — on correlated data all the way to perfect rankings.

use rankhow_bench::params::table2;
use rankhow_bench::report::{fmt_secs, print_series};
use rankhow_bench::{setups, Scale};
use rankhow_core::{seeding, SymGd, SymGdConfig};
use rankhow_data::synthetic::Distribution;

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Fig. 3m/3n/3o — generalizability — scale: {}",
        scale.label()
    );
    let n = scale.synthetic_n();
    let k = 10;
    let replicas: u64 = scale.replicas();

    for dist in Distribution::all() {
        let mut points = Vec::new();
        for &p in &table2::SYN_EXPONENTS {
            let mut cells = Vec::new();
            for derived in [false, true] {
                let mut err_sum = 0.0;
                let mut time_sum = 0.0;
                for replica in 0..replicas {
                    let problem =
                        setups::synthetic_problem(dist, replica, n, table2::SYN_M, k, p, derived);
                    let seed = seeding::ordinal_seed(&problem);
                    let start = std::time::Instant::now();
                    let res = SymGd::with_config(SymGdConfig {
                        cell_size: 0.01,
                        adaptive: false,
                        max_iterations: 12,
                        cell_time_limit: Some(std::time::Duration::from_secs(3)),
                        ..SymGdConfig::default()
                    })
                    .solve(&problem, &seed)
                    .expect("symgd");
                    err_sum += res.error as f64 / k as f64;
                    time_sum += start.elapsed().as_secs_f64();
                }
                cells.push(format!("{:.3}", err_sum / replicas as f64));
                cells.push(fmt_secs(time_sum / replicas as f64));
            }
            points.push((p.to_string(), cells));
            eprintln!("  {} p={p} done", dist.name());
        }
        print_series(
            &format!(
                "Fig. 3{} — {} data, ranking Σ A_i^p, n={}",
                match dist {
                    Distribution::Uniform => 'm',
                    Distribution::Correlated => 'n',
                    Distribution::AntiCorrelated => 'o',
                },
                dist.name(),
                n
            ),
            "exponent p",
            &[
                "E w/o derived",
                "T w/o derived",
                "E w/ derived",
                "T w/ derived",
            ],
            &points,
        );
    }
    println!(
        "\npaper shape: low error with original attributes; derived A_i² \
         squares reduce it further (perfect on correlated data) at \
         moderately higher time."
    );
}
