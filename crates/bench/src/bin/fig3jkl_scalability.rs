//! Figures 3j/3k/3l: SYM-GD scalability on large synthetic data — three
//! distributions (uniform / correlated / anti-correlated), ranked by
//! `Σ A_i³`, varying k, cell size 0.01, synthetic tolerances. Results
//! averaged over three replicas per distribution, as in the paper.
//!
//! Paper shape: error stays below ~1.5 positions per tuple and time
//! under an hour even at n = 10⁶, k = 25.

use rankhow_bench::params::table2;
use rankhow_bench::report::{fmt_secs, print_series};
use rankhow_bench::{setups, Scale};
use rankhow_core::{seeding, SymGd, SymGdConfig};
use rankhow_data::synthetic::Distribution;

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Fig. 3j/3k/3l — SYM-GD scalability — scale: {}",
        scale.label()
    );
    let n = scale.synthetic_n();
    let replicas: u64 = scale.replicas();

    for dist in Distribution::all() {
        let mut points = Vec::new();
        for &k in &table2::SYN_K {
            let mut err_sum = 0.0;
            let mut time_sum = 0.0;
            for replica in 0..replicas {
                let problem =
                    setups::synthetic_problem(dist, replica, n, table2::SYN_M, k, 3, false);
                let seed = seeding::ordinal_seed(&problem);
                let start = std::time::Instant::now();
                let res = SymGd::with_config(SymGdConfig {
                    cell_size: 0.01,
                    adaptive: false,
                    max_iterations: 12,
                    cell_time_limit: Some(std::time::Duration::from_secs(3)),
                    ..SymGdConfig::default()
                })
                .solve(&problem, &seed)
                .expect("symgd");
                err_sum += res.error as f64 / k as f64;
                time_sum += start.elapsed().as_secs_f64();
            }
            points.push((
                k.to_string(),
                vec![
                    format!("{:.3}", err_sum / replicas as f64),
                    fmt_secs(time_sum / replicas as f64),
                ],
            ));
            eprintln!("  {} k={k} done", dist.name());
        }
        print_series(
            &format!(
                "Fig. 3{} — {} data, n={}, ranking Σ A_i³",
                match dist {
                    Distribution::Uniform => 'j',
                    Distribution::Correlated => 'k',
                    Distribution::AntiCorrelated => 'l',
                },
                dist.name(),
                n
            ),
            "k",
            &["error/tuple", "time"],
            &points,
        );
    }
    println!("\npaper shape: error ≤ ~1.5/tuple; time grows with k but stays tractable.");
}
