//! Extensions report — the features beyond the paper's evaluation:
//!
//! 1. **Objectives**: position error vs Kendall tau vs top-weighted on
//!    the same NBA instance (Section II's "other error measures").
//! 2. **Optimization vs satisfiability**: branch-and-bound against the
//!    Section III-A binary-search-on-SAT alternative.
//! 3. **Gap-band incidence**: across random small instances, how often
//!    the sampling incumbent legitimately beats the certified optimum
//!    through the (ε2, ε1) band — quantifying "Known deviation 4" of
//!    EXPERIMENTS.md.

use rankhow_bench::report::{fmt_secs, Table};
use rankhow_bench::{report, setups, Scale};
use rankhow_core::formulation::{build_milp, reduce_global};
use rankhow_core::{verify, ErrorMeasure, OptProblem, RankHow, SatSearch, Tolerances};
use rankhow_data::Dataset;
use rankhow_milp::MilpStatus;
use rankhow_ranking::GivenRanking;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    println!("# Extensions report — scale: {}", scale.label());

    objectives(&scale);
    opt_vs_sat();
    gap_band_incidence();
}

fn objectives(scale: &Scale) {
    let base = setups::nba_problem(scale.nba_n().min(2000), 5, 6);
    let mut table = Table::new(&[
        "objective",
        "value",
        "position error of its weights",
        "optimal",
        "time",
    ]);
    for (name, measure) in [
        ("position", ErrorMeasure::Position),
        ("kendall_tau", ErrorMeasure::KendallTau),
        ("top_weighted", ErrorMeasure::TopWeighted),
    ] {
        let p = base.clone().with_objective(measure);
        let t = Instant::now();
        let sol = RankHow::with_config(rankhow_core::SolverConfig {
            time_limit: Some(std::time::Duration::from_secs(15)),
            // Reproducible report output: schedule-independent weights.
            threads: 1,
            ..Default::default()
        })
        .solve(&p)
        .expect("solve");
        table.row(vec![
            name.to_string(),
            sol.error.to_string(),
            p.evaluate(&sol.weights).to_string(),
            sol.optimal.to_string(),
            fmt_secs(t.elapsed().as_secs_f64()),
        ]);
    }
    report::print_table(
        "Objectives on one NBA instance (m=5, k=6) — each optimized directly",
        &table,
    );
}

fn opt_vs_sat() {
    // Both solvers prove the optimum here; the comparison is the *cost*
    // of getting there — one holistic B&B run vs generic-MILP probes
    // (~600 indicator binaries each at this size).
    let p = setups::nba_problem(150, 4, 4);
    let mut table = Table::new(&["solver", "error", "optimal", "time", "work"]);
    let t = Instant::now();
    let bnb = RankHow::new().solve(&p).expect("bnb");
    table.row(vec![
        "branch-and-bound".into(),
        bnb.error.to_string(),
        bnb.optimal.to_string(),
        fmt_secs(t.elapsed().as_secs_f64()),
        format!("{} nodes", bnb.stats.nodes),
    ]);
    let t = Instant::now();
    let sat = SatSearch::new().solve(&p).expect("sat");
    table.row(vec![
        "satisfiability search".into(),
        sat.error.to_string(),
        sat.optimal.to_string(),
        fmt_secs(t.elapsed().as_secs_f64()),
        format!("{} probes", sat.probes.len()),
    ]);
    report::print_table(
        "Holistic optimization vs satisfiability probes (Section III-A remark)",
        &table,
    );
}

/// Random small instances in the cross-validation regime: count how
/// often the B&B incumbent strictly beats the certified (MILP) optimum,
/// and confirm every such win carries a gap-band witness.
fn gap_band_incidence() {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let trials = 200;
    let mut ties = 0usize;
    let mut band_wins = 0usize;
    let mut unwitnessed = 0usize;
    for _ in 0..trials {
        let n = 4 + (next() * 3.0) as usize;
        let k = 1 + (next() * 3.0) as usize % 3.min(n - 1);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| next() * 10.0).collect())
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() * (i + 1) as f64) as usize;
            order.swap(i, j.min(i));
        }
        let mut positions = vec![None; n];
        for (pos, &idx) in order.iter().take(k).enumerate() {
            positions[idx] = Some(pos as u32 + 1);
        }
        let data =
            Dataset::from_rows((0..3).map(|j| format!("A{j}")).collect(), rows).expect("data");
        let given = GivenRanking::from_positions(positions).expect("ranking");
        let problem =
            OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0))
                .expect("problem");

        let bnb = RankHow::new().solve(&problem).expect("bnb");
        let sys = reduce_global(&problem);
        let (milp, layout) = build_milp(&problem, &sys);
        let generic = milp.solve().expect("milp");
        if generic.status != MilpStatus::Optimal {
            continue;
        }
        let w: Vec<f64> = layout.w.iter().map(|&v| generic.x[v]).collect();
        let certified = problem.evaluate(&w);
        if bnb.error == certified {
            ties += 1;
        } else if bnb.error < certified {
            band_wins += 1;
            if !verify::relies_on_gap_band(&problem, &bnb.weights) {
                unwitnessed += 1;
            }
        }
    }
    let mut table = Table::new(&["outcome", "count", "of"]);
    table.row(vec![
        "agree with certified optimum".into(),
        ties.to_string(),
        trials.to_string(),
    ]);
    table.row(vec![
        "beat it via the (ε2, ε1) band".into(),
        band_wins.to_string(),
        trials.to_string(),
    ]);
    table.row(vec![
        "beat it WITHOUT a witness (must be 0)".into(),
        unwitnessed.to_string(),
        trials.to_string(),
    ]);
    report::print_table(
        "Gap-band incidence over random small instances (EXPERIMENTS.md deviation 4)",
        &table,
    );
    assert_eq!(unwitnessed, 0, "an unwitnessed win would be a solver bug");
}
