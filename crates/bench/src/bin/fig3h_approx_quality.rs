//! Figure 3h: SYM-GD approximation quality — for every configuration of
//! the NBA sweeps, plot (time ratio local/global, extra error per tuple
//! local − global). Paper shape: most points hug the lower-left corner
//! (SYM-GD reaches near-optimal error in a fraction of the time).

use rankhow_bench::params::table2;
use rankhow_bench::report::{print_series, print_table, Table};
use rankhow_bench::{methods::run_method, setups, Method, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Fig. 3h — SYM-GD local vs global (NBA) — scale: {}",
        scale.label()
    );
    let n = scale.nba_n();

    // All configs from the 3b/3c/3d sweeps.
    let mut configs: Vec<(&str, usize, usize, usize)> = Vec::new();
    for &k in &table2::NBA_K {
        configs.push(("k", n, table2::NBA_M_DEFAULT, k));
    }
    let ns = match scale {
        Scale::Quick => table2::NBA_N_QUICK,
        Scale::Full => table2::NBA_N_FULL,
    };
    for &nn in &ns {
        configs.push(("n", nn, table2::NBA_M_DEFAULT, table2::NBA_K_DEFAULT));
    }
    for &m in &table2::NBA_M {
        configs.push(("m", n, m, table2::NBA_K_DEFAULT));
    }

    let mut table = Table::new(&[
        "varying",
        "n",
        "m",
        "k",
        "time ratio (local/global)",
        "extra error/tuple",
    ]);
    let mut corner = 0usize;
    for (vary, nn, m, k) in &configs {
        let problem = setups::nba_problem(*nn, *m, *k);
        let global = run_method(
            &problem,
            &Method::RankHow {
                budget: scale.solver_budget(),
            },
        );
        // Fixed large cell 0.1, Algorithm 1 (paper Fig. 3h setup).
        let local = run_method(&problem, &Method::SymGd { cell: 0.1 });
        let ratio = local.time.as_secs_f64() / global.time.as_secs_f64().max(1e-9);
        let extra = local.error_per_tuple - global.error_per_tuple;
        if ratio <= 0.5 && extra <= 0.5 {
            corner += 1;
        }
        table.row(vec![
            vary.to_string(),
            nn.to_string(),
            m.to_string(),
            k.to_string(),
            format!("{ratio:.3}"),
            format!("{extra:.3}"),
        ]);
        eprintln!("  {vary}: n={nn} m={m} k={k} done");
    }
    print_table("SYM-GD (cell 0.1) vs global RankHow (Fig. 3h)", &table);
    println!(
        "\n{} of {} points in the lower-left quadrant (ratio ≤ 0.5, extra ≤ 0.5/tuple)",
        corner,
        configs.len()
    );
    println!("paper shape: the majority of points sit in the lower-left corner.");

    // Also show it as a compact two-column scatter listing.
    let pts: Vec<(String, Vec<String>)> = Vec::new();
    drop(pts);
    let _ = print_series; // series form not needed; table above is the figure data
}
