//! Figures 3b/3c/3d: NBA parameter sweeps — error per tuple while
//! varying k, n, and m (Table II grids). AdaRank is omitted on NBA as in
//! the paper (its error is off the chart — see Section VI-C).
//!
//! Paper shapes:
//! - vs k (3b): error grows with k for everyone; RankHow lowest;
//! - vs n (3c): RankHow/OR/Sampling stay flat (extra ⊥ tuples barely
//!   matter); LinearRegression degrades fastest;
//! - vs m (3d): more attributes → error falls; RankHow monotonically
//!   non-increasing, reaching perfect rankings at large m.

use rankhow_bench::params::table2;
use rankhow_bench::report::{fmt_secs, print_series};
use rankhow_bench::{methods::run_method, setups, Method, Scale};
use std::time::Duration;

fn methods(scale: Scale, rankhow_time: Duration) -> Vec<Method> {
    vec![
        Method::RankHow {
            budget: scale.solver_budget(),
        },
        Method::OrdinalRegression,
        Method::LinearRegression,
        Method::Sampling {
            budget: rankhow_time
                .max(Duration::from_millis(50))
                .min(scale.sampling_cap()),
        },
    ]
}

fn sweep(scale: Scale, title: &str, configs: &[(usize, usize, usize)], x_label: &str) {
    let names = [
        "RankHow",
        "Ordinal Regression",
        "Linear Regression",
        "Sampling",
    ];
    let mut points = Vec::new();
    for &(n, m, k) in configs {
        let problem = setups::nba_problem(n, m, k);
        // RankHow first: its time budgets Sampling (Section VI-C).
        let rh = run_method(
            &problem,
            &Method::RankHow {
                budget: scale.solver_budget(),
            },
        );
        let mut row = vec![format!("{:.3}", rh.error_per_tuple)];
        for method in &methods(scale, rh.time)[1..] {
            let r = run_method(&problem, method);
            row.push(format!("{:.3}", r.error_per_tuple));
        }
        row.push(fmt_secs(rh.time.as_secs_f64()));
        let x = match x_label {
            "k" => k,
            "n" => n,
            _ => m,
        };
        points.push((x.to_string(), row));
        eprintln!("  {x_label}={x} done");
    }
    let mut headers: Vec<&str> = names.to_vec();
    headers.push("RankHow time");
    print_series(title, x_label, &headers, &points);
}

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 3b/3c/3d — NBA sweeps — scale: {}", scale.label());

    // 3b: vary k (n, m at defaults).
    let n = scale.nba_n();
    let configs_k: Vec<(usize, usize, usize)> = table2::NBA_K
        .iter()
        .map(|&k| (n, table2::NBA_M_DEFAULT, k))
        .collect();
    sweep(scale, "Fig. 3b — error/tuple vs k (NBA)", &configs_k, "k");

    // 3c: vary n.
    let ns = match scale {
        Scale::Quick => table2::NBA_N_QUICK,
        Scale::Full => table2::NBA_N_FULL,
    };
    let configs_n: Vec<(usize, usize, usize)> = ns
        .iter()
        .map(|&n| (n, table2::NBA_M_DEFAULT, table2::NBA_K_DEFAULT))
        .collect();
    sweep(scale, "Fig. 3c — error/tuple vs n (NBA)", &configs_n, "n");

    // 3d: vary m.
    let configs_m: Vec<(usize, usize, usize)> = table2::NBA_M
        .iter()
        .map(|&m| (n, m, table2::NBA_K_DEFAULT))
        .collect();
    sweep(scale, "Fig. 3d — error/tuple vs m (NBA)", &configs_m, "m");

    println!(
        "\npaper shapes: (3b) error grows with k, RankHow lowest; \
         (3c) flat in n except LinearRegression; (3d) error falls with m, \
         RankHow monotone."
    );
}
