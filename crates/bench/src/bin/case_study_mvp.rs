//! Section VI-B case study: the NBA MVP ranking.
//!
//! Paper: 13 players received votes (last two tied), 8 ranking
//! attributes. RankHow returns the optimal function (error 6) in 1.6 s;
//! the original TREE took > 16 h to return error 9 (35,000× slower), and
//! TREE + ε1 took 36 min for error 7 (1,000× slower).
//!
//! We reproduce the *shape*: RankHow solves the instance to proven
//! optimality in seconds; TREE exhausts its budget without matching it.

use rankhow_baselines::tree::{self, TreeConfig};
use rankhow_baselines::Instance;
use rankhow_bench::report::{fmt_secs, print_table, Table};
use rankhow_bench::{setups, Scale};
use rankhow_core::{
    extensions, seeding, verify, OptProblem, RankHow, SolverConfig, Tolerances, WeightConstraints,
};
use rankhow_data::nba;
use std::time::{Duration, Instant};

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Case study: NBA MVP (Section VI-B) — scale: {}",
        scale.label()
    );

    // Simulated MVP panel over a full league history.
    let gen = setups::nba_raw(scale.nba_n());
    let vote = nba::mvp_vote(&gen, 100, setups::NBA_SEED + 1);
    println!(
        "\n{} players received at least one vote; point totals: {:?}",
        vote.voted_players.len(),
        vote.points
    );

    // The OPT instance: the voted players' 8 attributes vs the panel
    // ranking (exactly the paper's setup).
    let data = gen
        .dataset
        .select_rows(&vote.voted_players)
        .min_max_normalized();
    let problem = OptProblem::with_tolerances(data, vote.ranking.clone(), Tolerances::paper_nba())
        .expect("valid case study instance");

    // --- RankHow ---
    let start = Instant::now();
    let seed = seeding::ordinal_seed(&problem);
    let sol = RankHow::with_config(SolverConfig {
        warm_start: Some(seed),
        time_limit: Some(scale.solver_budget()),
        // Reproducible case-study output: schedule-independent weights.
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&problem)
    .expect("rankhow solve");
    let rankhow_time = start.elapsed();
    let report = verify::verify(&problem, &sol.weights).expect("verification");
    println!(
        "\nRankHow: error {} ({}), {} — verified: {}",
        sol.error,
        if sol.optimal {
            "proved optimal"
        } else {
            "budget hit"
        },
        fmt_secs(rankhow_time.as_secs_f64()),
        report.consistent
    );
    println!("weights: {:?}", sol.weights);

    // Score-based ranking positions of the voted players (the paper
    // prints this vector, e.g. [1, 3, 4, 4, 2, 6, ...]).
    let scores = rankhow_ranking::scores_f64(problem.data.features(), &sol.weights);
    let ranks = rankhow_ranking::score_ranks(&scores, problem.tol.eps);
    println!("score-based ranking (by given position order): {ranks:?}");

    // --- TREE, both variants, on the same budget ---
    let tree_budget = Duration::from_secs(match scale {
        Scale::Quick => 15,
        Scale::Full => 120,
    });
    let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
    let mut table = Table::new(&[
        "method",
        "error",
        "time",
        "completed",
        "lp checks",
        "vs RankHow time",
    ]);
    table.row(vec![
        "RankHow".into(),
        sol.error.to_string(),
        fmt_secs(rankhow_time.as_secs_f64()),
        sol.optimal.to_string(),
        sol.stats.lp_solves.to_string(),
        "1x".into(),
    ]);
    for (label, cfg) in [
        (
            "Tree (original)",
            TreeConfig {
                node_limit: 0,
                time_limit: Some(tree_budget),
                ..TreeConfig::default()
            },
        ),
        (
            "Tree + eps1",
            TreeConfig {
                node_limit: 0,
                time_limit: Some(tree_budget),
                ..TreeConfig::with_gap(problem.tol)
            },
        ),
    ] {
        let res = tree::fit(&inst, &cfg);
        let err = res
            .fitted
            .as_ref()
            .map(|f| f.error.to_string())
            .unwrap_or_else(|| "-".into());
        let ratio = res.elapsed.as_secs_f64() / rankhow_time.as_secs_f64().max(1e-9);
        table.row(vec![
            label.into(),
            if res.completed {
                err
            } else {
                format!("≥? (best {err} at timeout)")
            },
            fmt_secs(res.elapsed.as_secs_f64()),
            res.completed.to_string(),
            res.lp_checks.to_string(),
            format!("{ratio:.0}x"),
        ]);
    }
    print_table("RankHow vs TREE on the MVP instance", &table);

    // --- Example 1: constraint exploration ---
    println!("\n## Example 1: constraint exploration");
    let pts = problem.data.attr_index("PTS").expect("PTS attribute");
    let constrained = problem
        .clone()
        .with_constraints(WeightConstraints::none().min_weight(pts, 0.1))
        .expect("valid constraint");
    let sol2 = RankHow::with_config(SolverConfig {
        time_limit: Some(scale.solver_budget()),
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&constrained)
    .expect("constrained solve");
    println!(
        "with w_PTS >= 0.1: error {} ({}), weights {:?}",
        sol2.error,
        if sol2.optimal { "optimal" } else { "budget" },
        sol2.weights
    );
    assert!(sol2.weights[pts] >= 0.1 - 1e-6);
    assert!(sol2.error >= sol.error, "constraints cannot reduce error");

    // Pin the winner to position 1 (Example 1's "Jokić must be #1").
    let winner = 0; // voted_players[0] re-indexed to 0 in the sub-dataset
    let pinned = problem
        .clone()
        .with_constraints(extensions::require_first(
            WeightConstraints::none(),
            &problem,
            winner,
        ))
        .expect("valid constraint");
    match RankHow::with_config(SolverConfig {
        time_limit: Some(scale.solver_budget()),
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&pinned)
    {
        Ok(sol3) => {
            let scores = rankhow_ranking::scores_f64(pinned.data.features(), &sol3.weights);
            let ranks = rankhow_ranking::score_ranks(&scores, pinned.tol.eps);
            println!(
                "with MVP pinned to #1: error {}, MVP rank {}",
                sol3.error, ranks[winner]
            );
        }
        Err(_) => println!("with MVP pinned to #1: infeasible under the attribute set"),
    }

    println!("\npaper reference: error 6 in 1.6s; TREE 16h/err 9; TREE+eps1 36min/err 7");
}
