//! Figure 3a: the big picture on NBA data — error-per-tuple vs execution
//! time for every method (m = 5, k = 6, full n, MP·PER given ranking).
//!
//! Paper shape: OR / LinReg / AdaRank are fast but far from the minimum;
//! SAMPLING improves with time but stays off; RankHow reaches the
//! minimum; SYM-GD reaches (near-)optimal error in a fraction of
//! RankHow's time.

use rankhow_bench::report::{fmt_secs, print_table, Table};
use rankhow_bench::{methods::run_method, setups, Method, Scale};
use std::time::Duration;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 3a — NBA big picture — scale: {}", scale.label());
    let problem = setups::nba_problem(scale.nba_n(), 5, 6);
    println!(
        "instance: n={}, m={}, k={}, live pairs after folding: {}",
        problem.n(),
        problem.m(),
        problem.given.k(),
        rankhow_core::formulation::reduce_global(&problem)
            .pairs
            .len()
    );

    let mut table = Table::new(&["method", "error", "error/tuple", "time", "optimal"]);

    // Exact RankHow first — its runtime sets SAMPLING's budget, exactly
    // as Section VI-C prescribes.
    let rankhow = run_method(
        &problem,
        &Method::RankHow {
            budget: scale.solver_budget(),
        },
    );
    let sampling_budget = rankhow.time.max(Duration::from_millis(50));

    let runs = vec![
        rankhow.clone(),
        run_method(&problem, &Method::OrdinalRegression),
        run_method(&problem, &Method::LinearRegression),
        run_method(&problem, &Method::AdaRank),
        run_method(
            &problem,
            &Method::Sampling {
                budget: sampling_budget,
            },
        ),
        run_method(&problem, &Method::SymGd { cell: 0.02 }),
        run_method(&problem, &Method::SymGd { cell: 0.1 }),
        run_method(
            &problem,
            &Method::SymGdAdaptive {
                budget: Duration::from_secs(match scale {
                    Scale::Quick => 5,
                    Scale::Full => 15,
                }),
            },
        ),
    ];
    for r in &runs {
        table.row(vec![
            r.name.to_string(),
            r.error.to_string(),
            format!("{:.3}", r.error_per_tuple),
            fmt_secs(r.time.as_secs_f64()),
            r.optimal.to_string(),
        ]);
    }
    print_table("error vs time, all methods (Fig. 3a)", &table);
    println!(
        "\npaper shape: RankHow minimal; heuristics fast-but-off; \
         Sym-GD near-minimal much faster; Sampling between."
    );
}
