//! Figures 3e/3f/3g: CSRankings parameter sweeps (k, n, m) — the
//! many-attributes regime. AdaRank is included here (the paper keeps it
//! on CSRankings plots).

use rankhow_bench::params::table2;
use rankhow_bench::report::{fmt_secs, print_series};
use rankhow_bench::{methods::run_method, setups, Method, Scale};
use std::time::Duration;

fn sweep(scale: Scale, title: &str, configs: &[(usize, usize, usize)], x_label: &str) {
    let mut points = Vec::new();
    for &(n, m, k) in configs {
        let problem = setups::csrankings_problem(n, m, k);
        let rh = run_method(
            &problem,
            &Method::RankHow {
                budget: scale.solver_budget(),
            },
        );
        let sampling_budget = rh
            .time
            .max(Duration::from_millis(50))
            .min(scale.sampling_cap());
        let rest = [
            Method::OrdinalRegression,
            Method::LinearRegression,
            Method::AdaRank,
            Method::Sampling {
                budget: sampling_budget,
            },
        ];
        let mut row = vec![format!("{:.3}", rh.error_per_tuple)];
        for method in &rest {
            let r = run_method(&problem, method);
            row.push(format!("{:.3}", r.error_per_tuple));
        }
        row.push(fmt_secs(rh.time.as_secs_f64()));
        let x = match x_label {
            "k" => k,
            "n" => n,
            _ => m,
        };
        points.push((x.to_string(), row));
        eprintln!("  {x_label}={x} done");
    }
    print_series(
        title,
        x_label,
        &[
            "RankHow",
            "Ordinal Regression",
            "Linear Regression",
            "AdaRank",
            "Sampling",
            "RankHow time",
        ],
        &points,
    );
}

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Fig. 3e/3f/3g — CSRankings sweeps — scale: {}",
        scale.label()
    );
    let n = scale.csrankings_n();

    let configs_k: Vec<(usize, usize, usize)> = table2::CSR_K
        .iter()
        .map(|&k| (n, table2::CSR_M_DEFAULT, k))
        .collect();
    sweep(
        scale,
        "Fig. 3e — error/tuple vs k (CSRankings)",
        &configs_k,
        "k",
    );

    let configs_n: Vec<(usize, usize, usize)> = table2::CSR_N
        .iter()
        .map(|&n| (n, table2::CSR_M_DEFAULT, table2::CSR_K_DEFAULT))
        .collect();
    sweep(
        scale,
        "Fig. 3f — error/tuple vs n (CSRankings)",
        &configs_n,
        "n",
    );

    let configs_m: Vec<(usize, usize, usize)> = table2::CSR_M
        .iter()
        .map(|&m| (n, m, table2::CSR_K_DEFAULT))
        .collect();
    sweep(
        scale,
        "Fig. 3g — error/tuple vs m (CSRankings)",
        &configs_m,
        "m",
    );

    println!(
        "\npaper shapes: same as NBA, with AdaRank trailing everywhere \
         and RankHow reaching perfect rankings once m is large."
    );
}
