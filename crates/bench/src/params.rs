//! Experiment parameters (paper Table II) and run-scale selection.

/// Run scale: the default keeps every binary laptop-fast; `--full`
/// reproduces the paper's sizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Reduced sizes (minutes for the whole suite).
    Quick,
    /// Paper sizes (NBA 22840 tuples, synthetic 10⁶, CSRankings 628).
    Full,
}

impl Scale {
    /// Parse from CLI args: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// NBA dataset size.
    pub fn nba_n(&self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 22_840,
        }
    }

    /// CSRankings dataset size.
    pub fn csrankings_n(&self) -> usize {
        628
    }

    /// Synthetic dataset size (Fig. 3j–o).
    pub fn synthetic_n(&self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 1_000_000,
        }
    }

    /// Replicas per synthetic distribution (the paper averages three).
    pub fn replicas(&self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Full => 3,
        }
    }

    /// Per-solve wall-clock cap.
    pub fn solver_budget(&self) -> std::time::Duration {
        match self {
            Scale::Quick => std::time::Duration::from_secs(15),
            Scale::Full => std::time::Duration::from_secs(600),
        }
    }

    /// Cap on the SAMPLING baseline's budget (the paper sets it equal to
    /// RankHow's runtime; quick runs cap it to keep sweeps fast).
    pub fn sampling_cap(&self) -> std::time::Duration {
        match self {
            Scale::Quick => std::time::Duration::from_secs(3),
            Scale::Full => std::time::Duration::from_secs(600),
        }
    }

    /// Human-readable label for report headers.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick (reduced sizes; pass --full for paper scale)",
            Scale::Full => "full (paper scale)",
        }
    }
}

/// Table II parameter grids (defaults in the paper are bold; we mark
/// them with the middle-ish entries used by each sweep binary).
pub mod table2 {
    /// NBA k sweep (Fig. 3b).
    pub const NBA_K: [usize; 5] = [2, 3, 4, 5, 6];
    /// NBA default k.
    pub const NBA_K_DEFAULT: usize = 6;
    /// NBA n sweep (Fig. 3c) at full scale.
    pub const NBA_N_FULL: [usize; 5] = [5_000, 10_000, 15_000, 20_000, 22_840];
    /// NBA n sweep at quick scale.
    pub const NBA_N_QUICK: [usize; 5] = [400, 800, 1_200, 1_600, 2_000];
    /// NBA m sweep (Fig. 3d).
    pub const NBA_M: [usize; 5] = [4, 5, 6, 7, 8];
    /// NBA default m.
    pub const NBA_M_DEFAULT: usize = 5;

    /// CSRankings k sweep (Fig. 3e).
    pub const CSR_K: [usize; 5] = [5, 10, 15, 20, 25];
    /// CSRankings default k.
    pub const CSR_K_DEFAULT: usize = 10;
    /// CSRankings n sweep (Fig. 3f).
    pub const CSR_N: [usize; 7] = [100, 200, 300, 400, 500, 600, 628];
    /// CSRankings m sweep (Fig. 3g).
    pub const CSR_M: [usize; 6] = [5, 10, 15, 20, 25, 27];
    /// CSRankings default m.
    pub const CSR_M_DEFAULT: usize = 10;

    /// Synthetic k sweep (Fig. 3j–l).
    pub const SYN_K: [usize; 5] = [5, 10, 15, 20, 25];
    /// Synthetic m.
    pub const SYN_M: usize = 5;
    /// Exponents for the generalizability sweep (Fig. 3m–o).
    pub const SYN_EXPONENTS: [u32; 4] = [2, 3, 4, 5];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sizes_are_smaller() {
        assert!(Scale::Quick.nba_n() < Scale::Full.nba_n());
        assert!(Scale::Quick.synthetic_n() < Scale::Full.synthetic_n());
        assert_eq!(Scale::Quick.csrankings_n(), 628);
    }

    #[test]
    fn table2_matches_paper() {
        assert_eq!(table2::NBA_K, [2, 3, 4, 5, 6]);
        assert_eq!(table2::CSR_M.last(), Some(&27));
        assert_eq!(table2::SYN_EXPONENTS, [2, 3, 4, 5]);
        assert_eq!(table2::NBA_N_FULL.last(), Some(&22_840));
    }
}
