//! Experiment harness reproducing every table and figure of the RankHow
//! paper (Section VI). Each `src/bin/*` binary regenerates one
//! table/figure; `run_all` drives the whole evaluation at a chosen scale.
//!
//! Scale policy (DESIGN.md): binaries default to laptop-scale parameters
//! and accept `--full` for paper-scale runs. Every binary prints the
//! scale it used so EXPERIMENTS.md can record it.

#![warn(missing_docs)]

pub mod methods;
pub mod params;
pub mod report;
pub mod setups;

pub use methods::{run_method, Method, MethodResult};
pub use params::Scale;
pub use report::{print_series, print_table, Table};
