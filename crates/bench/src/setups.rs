//! Canonical experiment setups: dataset + given ranking + tolerances per
//! Section VI-A, built deterministically from fixed seeds.

use rankhow_core::{OptProblem, Tolerances};
use rankhow_data::{csrankings, nba, rankfns, synthetic, Dataset};
use rankhow_ranking::GivenRanking;

/// Master seeds so every binary regenerates identical data.
pub const NBA_SEED: u64 = 20222023;
/// Seed for the CSRankings-like generator.
pub const CSR_SEED: u64 = 628;
/// Base seed for the synthetic datasets (three per distribution).
pub const SYN_SEED: u64 = 51;

/// The NBA setup: dataset restricted to the first `m` ranking attributes
/// and first `n` tuples, ranked by the hidden MP·PER score (Section
/// VI-C), with the paper's NBA tolerances.
pub fn nba_problem(n: usize, m: usize, k: usize) -> OptProblem {
    let gen = nba::generate(n, NBA_SEED);
    let attrs: Vec<usize> = (0..m).collect();
    let data = gen.dataset.select_attrs(&attrs).min_max_normalized();
    let given = gen.mp_per_ranking(k);
    OptProblem::with_tolerances(data, given, Tolerances::paper_nba()).expect("valid setup")
}

/// The full NBA generation (for the MVP case study, which needs votes
/// and all 8 attributes).
pub fn nba_raw(n: usize) -> nba::NbaData {
    nba::generate(n, NBA_SEED)
}

/// The CSRankings setup: first `n` institutions, first `m` areas, ranked
/// by the geometric-mean default ranking.
pub fn csrankings_problem(n: usize, m: usize, k: usize) -> OptProblem {
    let gen = csrankings::generate(n, CSR_SEED);
    let attrs: Vec<usize> = (0..m).collect();
    let data = gen.dataset.select_attrs(&attrs).min_max_normalized();
    let given = gen.default_ranking(k);
    OptProblem::with_tolerances(data, given, Tolerances::paper_csrankings()).expect("valid setup")
}

/// One synthetic setup: distribution × replica (the paper averages over
/// three replicas per distribution), ranked by `Σ A_i^p`.
pub fn synthetic_problem(
    dist: synthetic::Distribution,
    replica: u64,
    n: usize,
    m: usize,
    k: usize,
    exponent: u32,
    derived_squares: bool,
) -> OptProblem {
    let seed = SYN_SEED + replica * 1000 + dist as u64;
    let base = synthetic::generate(dist, n, m, seed);
    let given = rankfns::sum_pow_ranking(&base, exponent, k);
    let data = if derived_squares {
        base.with_squared_attrs()
    } else {
        base
    };
    OptProblem::with_tolerances(data, given, Tolerances::paper_synthetic()).expect("valid setup")
}

/// The Table III setup: a 10-tuple, 8-attribute NBA subset around the
/// top of the MP·PER ranking (numerical-imprecision stress test).
pub fn table3_subset() -> (Dataset, Vec<f64>) {
    let gen = nba::generate(2_000, NBA_SEED);
    let mut idx: Vec<usize> = (0..gen.mp_per.len()).collect();
    idx.sort_by(|&a, &b| gen.mp_per[b].total_cmp(&gen.mp_per[a]));
    idx.truncate(10);
    idx.sort_unstable();
    let data = gen.dataset.select_rows(&idx).min_max_normalized();
    let scores: Vec<f64> = idx.iter().map(|&i| gen.mp_per[i]).collect();
    (data, scores)
}

/// Given ranking over a Table III subset for a given `k`.
pub fn table3_ranking(scores: &[f64], k: usize) -> GivenRanking {
    GivenRanking::from_scores(scores, k, 0.0).expect("valid scores")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nba_setup_shapes() {
        let p = nba_problem(300, 5, 6);
        assert_eq!(p.n(), 300);
        assert_eq!(p.m(), 5);
        assert_eq!(p.given.k(), 6);
        assert_eq!(p.tol, Tolerances::paper_nba());
    }

    #[test]
    fn csr_setup_shapes() {
        let p = csrankings_problem(100, 27, 10);
        assert_eq!(p.n(), 100);
        assert_eq!(p.m(), 27);
        assert_eq!(p.given.k(), 10);
    }

    #[test]
    fn synthetic_replicas_differ_but_are_deterministic() {
        let a = synthetic_problem(synthetic::Distribution::Uniform, 0, 100, 5, 5, 3, false);
        let b = synthetic_problem(synthetic::Distribution::Uniform, 0, 100, 5, 5, 3, false);
        let c = synthetic_problem(synthetic::Distribution::Uniform, 1, 100, 5, 5, 3, false);
        assert_eq!(a.data.features(), b.data.features());
        assert_ne!(a.data.features(), c.data.features());
    }

    #[test]
    fn derived_squares_double_m() {
        let p = synthetic_problem(synthetic::Distribution::Correlated, 0, 50, 5, 5, 2, true);
        assert_eq!(p.m(), 10);
    }

    #[test]
    fn table3_subset_is_ten_by_eight() {
        let (data, scores) = table3_subset();
        assert_eq!(data.n(), 10);
        assert_eq!(data.m(), 8);
        assert_eq!(scores.len(), 10);
        let r = table3_ranking(&scores, 10);
        assert_eq!(r.k(), 10);
    }
}
