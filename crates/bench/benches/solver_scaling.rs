//! Scaling benchmarks for the parallel branch-and-bound engine (thread
//! sweep 1/2/4/8 over the synthetic workloads) and for the reusable
//! [`SimplexWorkspace`] that backs its per-worker LP solves.
//!
//! Kept compiling by the CI `cargo bench --no-run` step; run with
//! `cargo bench --bench solver_scaling`.
//!
//! `cargo bench --bench solver_scaling -- --json BENCH_PR9.json`
//! skips the criterion loop and instead emits a machine-readable
//! perf-trajectory report — nodes/sec, LPs/sec, pivots, probe-skip and
//! probe-batch counters, and the LP warm-hit rate per workload, in four
//! modes (`kern` = warm + propagation + batched probe re-pricing,
//! `prop` = warm + decided-pair bound propagation, `warm` = warm only,
//! `cold` = escape hatch) — so successive PRs can diff solver
//! throughput without parsing bench prose. The report also carries
//! repeated-query *serving* rows: duplicate-heavy and
//! constraint-variant streams submitted sequentially through a router,
//! comparing the cross-query solution cache (`cache` mode, hit/miss/
//! eviction counters included) against cold per-query serving (`kern`
//! mode); every serving query carries a telemetry handle, so these
//! rows also report the per-query admission→completion latency
//! distribution (`latency_p50_ns` / `latency_p99_ns`).
//!
//! Interpretation note: on a single-core container
//! (`std::thread::available_parallelism() == 1`) the >1-thread rows
//! measure pure coordination overhead — workers time-slice one CPU and
//! speculatively expand nodes the sequential engine would have pruned
//! after an earlier incumbent update. The sweep is meaningful on
//! multi-core hardware, where per-worker LP workspaces and the
//! work-stealing frontier let node expansions proceed concurrently.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rankhow_bench::setups;
use rankhow_core::{OptProblem, RankHow, SolverConfig, WeightConstraints};
use rankhow_data::synthetic::Distribution;
use rankhow_lp::{chebyshev_center, chebyshev_center_with, Op, Problem, Sense, SimplexWorkspace};
use rankhow_router::{Router, RouterConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// Thread sweep over the paper's synthetic distributions. The instances
/// are sized so a single-thread solve takes long enough to measure but
/// the whole sweep stays bench-friendly.
fn thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);
    let workloads = [
        ("uniform_n300_k5", Distribution::Uniform, 300usize, 5usize),
        ("anticorr_n120_k4", Distribution::AntiCorrelated, 120, 4),
    ];
    for (name, dist, n, k) in workloads {
        let problem = setups::synthetic_problem(dist, 0, n, 4, k, 3, false);
        for &threads in &[1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let sol = RankHow::with_config(SolverConfig {
                        threads,
                        // Anti-correlated trees are deep; cap each
                        // solve so a full sweep stays bench-sized
                        // (progress-at-timeout is the measurement).
                        time_limit: Some(Duration::from_secs(5)),
                        ..SolverConfig::default()
                    })
                    .solve(&problem)
                    .unwrap();
                    black_box((sol.error, sol.stats.nodes))
                });
            });
        }
    }
    group.finish();
}

/// The canonical node-LP shape (simplex weights + decision half-spaces),
/// as built thousands of times per solve.
fn node_region(m: usize, cuts: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let w: Vec<_> = (0..m)
        .map(|j| p.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
        .collect();
    let simplex: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&simplex, Op::Eq, 1.0);
    for r in 0..cuts {
        let terms: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((j + r) % 5) as f64 - 2.0))
            .collect();
        p.add_constraint(&terms, Op::Ge, 1e-4);
    }
    p
}

/// Standalone workspace benchmark: repeated Chebyshev-center solves with
/// a reused tableau vs. a fresh allocation per call.
fn simplex_workspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_workspace");
    for &(m, cuts) in &[(5usize, 8usize), (8, 16)] {
        let region = node_region(m, cuts);
        group.bench_with_input(
            BenchmarkId::new("chebyshev_fresh", format!("m{m}_c{cuts}")),
            &region,
            |b, region| {
                b.iter(|| black_box(chebyshev_center(region).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("chebyshev_reused", format!("m{m}_c{cuts}")),
            &region,
            |b, region| {
                let mut ws = SimplexWorkspace::new();
                b.iter(|| black_box(chebyshev_center_with(region, &mut ws).unwrap()));
            },
        );
    }
    group.finish();
}

/// One timed solve of a workload in one of four modes — `kern` (warm
/// LPs + propagation + batched probe re-pricing, the default engine),
/// `prop` (warm LPs + decided-pair bound propagation, per-probe
/// objective swaps — the PR-6 configuration), `warm` (warm LPs only —
/// the PR-5 configuration), or `cold` (the everything-off escape
/// hatch).
fn timed_solve(problem: &rankhow_core::OptProblem, mode: &str) -> (f64, rankhow_core::Solution) {
    let (warm_lp, propagate, batched_kernels) = match mode {
        "kern" => (true, true, true),
        "prop" => (true, true, false),
        "warm" => (true, false, false),
        "cold" => (false, false, false),
        other => panic!("unknown bench mode {other}"),
    };
    let start = std::time::Instant::now();
    let sol = RankHow::with_config(SolverConfig {
        threads: 1,
        warm_lp,
        propagate,
        batched_kernels,
        node_limit: 3_000,
        time_limit: Some(Duration::from_secs(10)),
        ..SolverConfig::default()
    })
    .solve(problem)
    .unwrap();
    (start.elapsed().as_secs_f64().max(1e-9), sol)
}

/// Format one report row from a mode's fastest observed solve.
fn json_row(name: &str, mode: &str, secs: f64, sol: &rankhow_core::Solution) -> String {
    let s = &sol.stats;
    let starts = (s.lp_warm_starts + s.lp_cold_starts).max(1);
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"error\":{},\"optimal\":{},",
            "\"nodes\":{},\"lp_solves\":{},\"lp_pivots\":{},",
            "\"probes_skipped\":{},\"coords_skipped\":{},",
            "\"probes_batched\":{},\"batched_sweeps\":{},\"lps_per_node\":{:.2},",
            "\"nodes_per_sec\":{:.1},\"lps_per_sec\":{:.1},",
            "\"warm_hit_rate\":{:.4},\"elapsed_sec\":{:.6}}}"
        ),
        name,
        mode,
        sol.error,
        sol.optimal,
        s.nodes,
        s.lp_solves,
        s.lp_pivots,
        s.probes_skipped,
        s.coords_skipped,
        s.probe_objectives_batched,
        s.batched_sweeps,
        s.lp_solves as f64 / s.nodes.max(1) as f64,
        s.nodes as f64 / secs,
        s.lp_solves as f64 / secs,
        s.lp_warm_starts as f64 / starts as f64,
        secs,
    )
}

/// One serving pass: a query stream submitted sequentially (submit,
/// join, next — the realistic order for repeated traffic: a duplicate
/// arrives after its first solve completed) through a 1-pool × 1-worker
/// router, with the cross-query cache on (`cache` mode) or off (`kern`
/// mode — the PR-7 serving configuration). Every query carries a
/// telemetry handle into one shared metrics registry, so the row can
/// report the per-query admission→completion latency distribution
/// alongside the aggregate counters.
fn timed_serve(
    queries: &[Arc<OptProblem>],
    mode: &str,
) -> (
    f64,
    rankhow_router::RouterStats,
    rankhow_obs::HistogramSnapshot,
) {
    let cache = match mode {
        "cache" => true,
        "kern" => false,
        other => panic!("unknown serving mode {other}"),
    };
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        cache,
        ..RouterConfig::default()
    });
    let metrics = Arc::new(rankhow_obs::MetricsRegistry::new());
    let start = std::time::Instant::now();
    for query in queries {
        let telemetry = Arc::new(rankhow_obs::SolveTelemetry::new(Arc::clone(&metrics)));
        let sol = router
            .spawn_shared(
                Arc::clone(query),
                SolverConfig {
                    time_limit: Some(Duration::from_secs(10)),
                    telemetry: Some(telemetry),
                    ..SolverConfig::default()
                },
            )
            .join()
            .expect("feasible workload");
        black_box(sol.error);
    }
    (
        start.elapsed().as_secs_f64().max(1e-9),
        router.stats(),
        metrics.latency.snapshot(),
    )
}

/// Format one serving-report row.
fn serve_row(
    name: &str,
    mode: &str,
    repeat_p: f64,
    queries: usize,
    secs: f64,
    stats: &rankhow_router::RouterStats,
    latency: &rankhow_obs::HistogramSnapshot,
) -> String {
    let s = &stats.solver;
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"repeat_p\":{:.2},",
            "\"queries\":{},\"queries_per_sec\":{:.1},",
            "\"latency_p50_ns\":{},\"latency_p99_ns\":{},",
            "\"cache_exact_hits\":{},\"cache_near_hits\":{},",
            "\"cache_misses\":{},\"cache_evictions\":{},",
            "\"nodes\":{},\"lp_solves\":{},\"lp_pivots\":{},\"elapsed_sec\":{:.6}}}"
        ),
        name,
        mode,
        repeat_p,
        queries,
        queries as f64 / secs,
        latency.p50(),
        latency.p99(),
        stats.cache.exact_hits,
        stats.cache.near_hits,
        stats.cache.misses,
        stats.cache.evictions,
        s.nodes,
        s.lp_solves,
        s.lp_pivots,
        secs,
    )
}

/// Repeated-query serving rows: an exact-duplicate stream (half the
/// queries repeat an earlier one) and a near-variant stream (same
/// instance under a sweep of weight-constraint bounds), each served in
/// `cache` and `kern` mode. Best-of-3, modes interleaved, mirroring the
/// engine rows.
fn serving_rows() -> Vec<String> {
    let distinct: Vec<Arc<OptProblem>> = (0..4)
        .map(|seed| {
            Arc::new(setups::synthetic_problem(
                Distribution::Uniform,
                seed,
                300,
                4,
                5,
                3,
                false,
            ))
        })
        .collect();
    // Half the stream repeats an already-seen query (repeat_p = 0.5).
    let repeated: Vec<Arc<OptProblem>> = [0usize, 1, 0, 2, 1, 3, 2, 0]
        .iter()
        .map(|&i| Arc::clone(&distinct[i]))
        .collect();
    // Same instance, five progressively tighter constraint regions:
    // every query after the first is a near hit for the cache.
    let base = &distinct[0];
    let variants: Vec<Arc<OptProblem>> = std::iter::once(Arc::clone(base))
        .chain([0.9f64, 0.8, 0.7, 0.6].iter().map(|&bound| {
            Arc::new(
                (**base)
                    .clone()
                    .with_constraints(WeightConstraints::none().max_weight(0, bound))
                    .expect("nonempty constrained region"),
            )
        }))
        .collect();
    let streams: [(&str, f64, &[Arc<OptProblem>]); 2] = [
        ("repeat_uniform_n300_k5", 0.5, &repeated),
        ("nearvar_uniform_n300_k5", 0.8, &variants),
    ];
    let modes = ["cache", "kern"];
    let mut rows = Vec::new();
    for (name, repeat_p, queries) in streams {
        type ServeBest = (
            f64,
            rankhow_router::RouterStats,
            rankhow_obs::HistogramSnapshot,
        );
        let mut best: Vec<Option<ServeBest>> = vec![None; modes.len()];
        for _round in 0..3 {
            for (i, mode) in modes.iter().enumerate() {
                let (secs, stats, latency) = timed_serve(queries, mode);
                if best[i].as_ref().map_or(true, |(b, _, _)| secs < *b) {
                    best[i] = Some((secs, stats, latency));
                }
            }
        }
        for (i, mode) in modes.iter().enumerate() {
            let (secs, stats, latency) = best[i].take().expect("measured above");
            rows.push(serve_row(
                name,
                mode,
                repeat_p,
                queries.len(),
                secs,
                &stats,
                &latency,
            ));
        }
    }
    rows
}

/// Emit the machine-readable perf report (see the module docs).
fn json_report(path: &std::path::Path) {
    let workloads = [
        ("uniform_n300_k5", Distribution::Uniform, 300usize, 5usize),
        ("anticorr_n120_k4", Distribution::AntiCorrelated, 120, 4),
        ("uniform_n600_k8", Distribution::Uniform, 600, 8),
    ];
    let modes = ["kern", "prop", "warm", "cold"];
    let mut rows = Vec::new();
    for (name, dist, n, k) in workloads {
        let problem = setups::synthetic_problem(dist, 0, n, 4, k, 3, false);
        // The solves are deterministic at threads=1, so the stats
        // columns are fixed per mode and only the wall-clock varies.
        // Interleave the modes round-robin and keep each mode's fastest
        // observed solve: CPU-frequency and scheduler drift then hits
        // every mode equally instead of biasing whichever row ran in a
        // slow stretch (the smallest workload finishes in < 100 ms,
        // where a single measurement would drown mode differences).
        let mut best: Vec<Option<(f64, rankhow_core::Solution)>> = vec![None; modes.len()];
        for _round in 0..5 {
            for (i, mode) in modes.iter().enumerate() {
                let (secs, sol) = timed_solve(&problem, mode);
                if best[i].as_ref().map_or(true, |(b, _)| secs < *b) {
                    best[i] = Some((secs, sol));
                }
            }
        }
        for (i, mode) in modes.iter().enumerate() {
            let (secs, sol) = best[i].take().expect("measured above");
            rows.push(json_row(name, mode, secs, &sol));
        }
    }
    rows.extend(serving_rows());
    let total = rows.len();
    let body = format!(
        "{{\"bench\":\"solver_scaling\",\"pr\":9,\"threads\":1,\"rows\":[\n  {}\n]}}\n",
        rows.join(",\n  ")
    );
    std::fs::write(path, &body).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("wrote {} ({} rows)", path.display(), total);
}

criterion_group!(benches, thread_sweep, simplex_workspace);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--json needs a path (e.g. --json BENCH_PR6.json)"));
        // Cargo runs bench binaries with crates/bench as CWD; anchor
        // relative paths at the workspace root so the documented
        // command refreshes the committed repo-root BENCH_PR6.json.
        let path = std::path::Path::new(path);
        let anchored;
        let path = if path.is_absolute() {
            path
        } else {
            anchored = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(path);
            anchored.as_path()
        };
        json_report(path);
        return;
    }
    benches();
}
