//! Microbenchmarks for the PR-7 batched arithmetic floor: the chunked
//! pivot-row sweep at the bottom of every simplex iteration, and the
//! batched multi-objective probe re-pricing against per-probe objective
//! swaps on the canonical node-LP shape.
//!
//! Kept compiling by the CI `cargo bench --no-run` step; run with
//! `cargo bench --bench lp_kernels`. Build with
//! `--features scalar-kernels` to measure the scalar reference loops
//! the chunked kernels replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rankhow_lp::{IncrementalLp, Op, ProbeOutcome, Problem, Sense};
use std::hint::black_box;

/// The row lengths a solver tableau actually has: small node LPs up to
/// the widest regions the scaling workloads build.
const ROW_LENS: [usize; 3] = [24, 96, 384];

/// Pivot-row sweep: `y += a·x` over one tableau row, the single hottest
/// loop in the solver (every Gauss-Jordan pivot runs it once per row).
/// Benchmarked through the public kernel entry so the `scalar-kernels`
/// feature swaps the implementation underneath.
fn pivot_row_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_kernels/axpy_row");
    for &len in &ROW_LENS {
        let x: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &x, |b, x| {
            let mut y: Vec<f64> = (0..len).map(|i| (i as f64).cos()).collect();
            b.iter(|| {
                rankhow_linalg::kernels::axpy(&mut y, -1.25, x);
                black_box(y[len / 2])
            });
        });
    }
    group.finish();
}

/// The node-LP shape: weights on the simplex plus decision half-spaces.
fn node_region(m: usize, cuts: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let w: Vec<_> = (0..m)
        .map(|j| p.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
        .collect();
    let simplex: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&simplex, Op::Eq, 1.0);
    for r in 0..cuts {
        let terms: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((j + r) % 5) as f64 - 2.0))
            .collect();
        p.add_constraint(&terms, Op::Ge, 1e-4);
    }
    p
}

/// The `2m` box-tightening probes of one node, solved two ways:
/// `per_probe` runs one objective swap (full reduced-cost rebuild +
/// phase 2 + its own extraction) per probe; `batched` runs all of them
/// in one `solve_objectives` sweep (support-row pricing, in-place
/// phase 2, shared extractions).
fn probe_repricing(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_kernels/probe_repricing");
    for &(m, cuts) in &[(5usize, 8usize), (8, 16)] {
        let region = node_region(m, cuts);
        let probes: Vec<(usize, Sense)> = (0..m)
            .flat_map(|j| [(j, Sense::Minimize), (j, Sense::Maximize)])
            .collect();
        group.bench_with_input(
            BenchmarkId::new("per_probe", format!("m{m}_c{cuts}")),
            &region,
            |b, region| {
                let mut inc = IncrementalLp::new();
                b.iter(|| {
                    inc.load(region, None).unwrap();
                    let mut acc = 0.0;
                    for &(j, sense) in &probes {
                        acc += inc.solve_objective(&[(j, 1.0)], sense).unwrap().objective;
                    }
                    black_box(acc)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", format!("m{m}_c{cuts}")),
            &region,
            |b, region| {
                let mut inc = IncrementalLp::new();
                let mut out = Vec::new();
                let mut wits = Vec::new();
                b.iter(|| {
                    inc.load(region, None).unwrap();
                    inc.solve_objectives(&probes, &mut out, &mut wits);
                    let mut acc = 0.0;
                    for outcome in &out {
                        acc += match *outcome {
                            ProbeOutcome::Solved { value, .. } => value,
                            ProbeOutcome::Failed => 0.0,
                        };
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, pivot_row_sweep, probe_repricing);
criterion_main!(benches);
