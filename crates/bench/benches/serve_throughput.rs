//! Throughput of the job-based scheduler: a jobs × threads sweep over
//! synthetic workloads, measuring how one shared worker pool multiplexes
//! concurrent solve jobs (per-job frontiers, node-budget time slicing,
//! per-worker LP workspace reuse across jobs).
//!
//! Kept compiling by the CI `cargo bench --no-run` step; run with
//! `cargo bench --bench serve_throughput`.
//!
//! Interpretation note: on a single-core container the >1-thread rows
//! measure pure coordination overhead (see `solver_scaling`); the sweep
//! is meaningful on multi-core hardware, where the jobs-per-second rows
//! show the amortization win of one long-lived pool over per-query
//! pools.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rankhow_bench::setups;
use rankhow_core::{OptProblem, SolverConfig};
use rankhow_data::synthetic::Distribution;
use rankhow_serve::Scheduler;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// The batch of concurrent jobs: replicas of the uniform synthetic
/// workload (distinct seeds so the searches differ).
fn job_batch(jobs: usize) -> Vec<Arc<OptProblem>> {
    (0..jobs)
        .map(|replica| {
            Arc::new(setups::synthetic_problem(
                Distribution::Uniform,
                replica as u64,
                150,
                4,
                4,
                3,
                false,
            ))
        })
        .collect()
}

/// Jobs × threads sweep: spawn all jobs on one scheduler, join all.
fn scheduler_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for &jobs in &[1usize, 4, 8] {
        let problems = job_batch(jobs);
        for &threads in &[1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("jobs{jobs}"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let scheduler = Scheduler::new(threads);
                        let handles: Vec<_> = problems
                            .iter()
                            .map(|p| {
                                scheduler.spawn_shared(
                                    Arc::clone(p),
                                    SolverConfig {
                                        // Cap each job so the whole
                                        // sweep stays bench-sized.
                                        time_limit: Some(Duration::from_secs(5)),
                                        ..SolverConfig::default()
                                    },
                                )
                            })
                            .collect();
                        let errors: Vec<u64> = handles
                            .into_iter()
                            .map(|h| h.join().expect("feasible workload").error)
                            .collect();
                        black_box(errors)
                    });
                },
            );
        }
    }
    group.finish();
}

/// The pool-reuse comparison the scheduler exists for: N sequential
/// blocking solves (a fresh thread pool + LP workspaces per query)
/// versus the same N queries multiplexed on one warm scheduler.
fn pool_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_amortization");
    group.sample_size(10);
    let problems = job_batch(4);
    group.bench_function("sequential_blocking", |b| {
        b.iter(|| {
            let errors: Vec<u64> = problems
                .iter()
                .map(|p| {
                    rankhow_core::RankHow::with_config(SolverConfig {
                        threads: 2,
                        time_limit: Some(Duration::from_secs(5)),
                        ..SolverConfig::default()
                    })
                    .solve(p)
                    .expect("feasible workload")
                    .error
                })
                .collect();
            black_box(errors)
        });
    });
    group.bench_function("one_scheduler", |b| {
        b.iter(|| {
            let scheduler = Scheduler::new(2);
            let handles: Vec<_> = problems
                .iter()
                .map(|p| {
                    scheduler.spawn_shared(
                        Arc::clone(p),
                        SolverConfig {
                            time_limit: Some(Duration::from_secs(5)),
                            ..SolverConfig::default()
                        },
                    )
                })
                .collect();
            let errors: Vec<u64> = handles
                .into_iter()
                .map(|h| h.join().expect("feasible workload").error)
                .collect();
            black_box(errors)
        });
    });
    group.finish();
}

criterion_group!(benches, scheduler_sweep, pool_amortization);
criterion_main!(benches);
