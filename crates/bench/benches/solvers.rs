//! Criterion microbenchmarks for the solver stack: LP simplex, generic
//! MILP, the specialized exact solver, SYM-GD cell solves, pair
//! reduction/constant folding, and exact verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rankhow_bench::setups;
use rankhow_core::formulation;
use rankhow_core::{seeding, RankHow, SolverConfig, SymGd, SymGdConfig};
use rankhow_lp::{Op, Problem, Sense};
use rankhow_milp::MilpProblem;
use std::hint::black_box;
use std::time::Duration;

fn lp_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    for &size in &[5usize, 20, 50] {
        group.bench_with_input(BenchmarkId::new("dense_lp", size), &size, |b, &size| {
            b.iter(|| {
                let mut p = Problem::new(Sense::Maximize);
                let vars: Vec<_> = (0..size)
                    .map(|i| p.add_var(&format!("x{i}"), 0.0, 10.0, 1.0 + (i % 3) as f64))
                    .collect();
                for r in 0..size {
                    let terms: Vec<(usize, f64)> = vars
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, 1.0 + ((i + r) % 5) as f64))
                        .collect();
                    p.add_constraint(&terms, Op::Le, 50.0 + r as f64);
                }
                black_box(p.solve().unwrap())
            });
        });
    }
    group.finish();
}

fn milp_small(c: &mut Criterion) {
    c.bench_function("milp_knapsack_14", |b| {
        b.iter(|| {
            let mut m = MilpProblem::new(Sense::Maximize);
            let vars: Vec<_> = (0..14)
                .map(|i| m.add_binary(&format!("b{i}"), ((i * 7) % 5) as f64 + 1.0))
                .collect();
            let terms: Vec<(usize, f64)> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i * 3) % 4) as f64))
                .collect();
            m.add_constraint(&terms, Op::Le, 15.0);
            black_box(m.solve().unwrap())
        });
    });
}

fn rankhow_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("rankhow_exact");
    group.sample_size(10);
    for &(n, k) in &[(200usize, 3usize), (500, 4)] {
        let problem = setups::nba_problem(n, 5, k);
        group.bench_with_input(
            BenchmarkId::new("nba", format!("n{n}_k{k}")),
            &problem,
            |b, p| {
                b.iter(|| {
                    let sol = RankHow::with_config(SolverConfig {
                        time_limit: Some(Duration::from_secs(30)),
                        ..SolverConfig::default()
                    })
                    .solve(p)
                    .unwrap();
                    black_box(sol.error)
                });
            },
        );
    }
    group.finish();
}

fn symgd_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("symgd");
    group.sample_size(10);
    let problem = setups::nba_problem(1_000, 5, 6);
    let seed = seeding::ordinal_seed(&problem);
    for &cell in &[0.01f64, 0.05, 0.2] {
        group.bench_with_input(BenchmarkId::new("cell", cell), &cell, |b, &cell| {
            b.iter(|| {
                let res = SymGd::with_config(SymGdConfig {
                    cell_size: cell,
                    adaptive: false,
                    max_iterations: 5,
                    ..SymGdConfig::default()
                })
                .solve(&problem, &seed)
                .unwrap();
                black_box(res.error)
            });
        });
    }
    group.finish();
}

fn reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("constant_folding");
    for &n in &[1_000usize, 10_000] {
        let problem = setups::nba_problem(n, 5, 6);
        group.bench_with_input(BenchmarkId::new("global", n), &problem, |b, p| {
            b.iter(|| black_box(formulation::reduce_global(p).pairs.len()));
        });
        // Tiny cell: nearly everything folds.
        let lo = vec![0.19; 5];
        let hi = vec![0.21; 5];
        group.bench_with_input(BenchmarkId::new("cell_0.02", n), &problem, |b, p| {
            b.iter(|| black_box(formulation::reduce_against_box(p, &lo, &hi).pairs.len()));
        });
    }
    group.finish();
}

fn verification(c: &mut Criterion) {
    let problem = setups::nba_problem(2_000, 5, 6);
    let w = vec![0.2; 5];
    c.bench_function("verify_exact_n2000", |b| {
        b.iter(|| black_box(rankhow_core::verify::verify(&problem, &w).unwrap()));
    });
    c.bench_function("evaluate_f64_n2000", |b| {
        b.iter(|| black_box(problem.evaluate(&w)));
    });
}

criterion_group!(
    benches,
    lp_simplex,
    milp_small,
    rankhow_exact,
    symgd_cell,
    reduction,
    verification
);
criterion_main!(benches);
