//! Warm-started vs cold LP benchmarks for the incremental layer behind
//! PR 5: the full node loop with `SolverConfig::warm_lp` on/off, and the
//! isolated `2m`-probe objective-swap sweep against fresh two-phase
//! solves of the same region.
//!
//! Kept compiling by the CI `cargo bench --no-run` step; run with
//! `cargo bench --bench lp_warmstart`.
//!
//! Wall-clock on the single-core dev container is noisy; the *assertive*
//! comparison (warm performs strictly fewer simplex pivots than cold)
//! lives in `crates/core/tests/warm_lp_parity.rs`, which CI runs in
//! release mode. These benches track the corresponding time numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rankhow_bench::setups;
use rankhow_core::{RankHow, SolverConfig};
use rankhow_data::synthetic::Distribution;
use rankhow_lp::{IncrementalLp, Op, Problem, Sense};
use std::hint::black_box;
use std::time::Duration;

/// Cold vs warm node loop over the paper's synthetic workloads. Node
/// limits keep each solve bench-sized; the measurement is the time to
/// burn the same node budget with and without LP warm starts.
fn node_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_warmstart/node_loop");
    group.sample_size(10);
    let workloads = [
        ("uniform_n200_k5", Distribution::Uniform, 200usize, 5usize),
        ("anticorr_n100_k4", Distribution::AntiCorrelated, 100, 4),
    ];
    for (name, dist, n, k) in workloads {
        let problem = setups::synthetic_problem(dist, 0, n, 4, k, 3, false);
        for (label, warm) in [("cold", false), ("warm", true)] {
            group.bench_with_input(BenchmarkId::new(name, label), &warm, |b, &warm| {
                b.iter(|| {
                    let sol = RankHow::with_config(SolverConfig {
                        threads: 1,
                        warm_lp: warm,
                        node_limit: 2_000,
                        time_limit: Some(Duration::from_secs(5)),
                        ..SolverConfig::default()
                    })
                    .solve(&problem)
                    .unwrap();
                    black_box((sol.error, sol.stats.lp_pivots))
                });
            });
        }
    }
    group.finish();
}

/// The canonical node-region shape (simplex weights + decision
/// half-spaces), as loaded once per node.
fn node_region(m: usize, cuts: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let w: Vec<usize> = (0..m)
        .map(|j| p.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
        .collect();
    let simplex: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&simplex, Op::Eq, 1.0);
    for r in 0..cuts {
        let terms: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((j + r) % 5) as f64 - 2.0))
            .collect();
        p.add_constraint(&terms, Op::Ge, 1e-4);
    }
    p
}

/// The `2m` box-tightening probes of one region: cold re-solves the
/// region from an empty basis per probe; warm loads the tableau once
/// and objective-swaps through the sweep.
fn probe_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_warmstart/probe_sweep");
    for &(m, cuts) in &[(5usize, 8usize), (8, 16)] {
        let region = node_region(m, cuts);
        group.bench_with_input(
            BenchmarkId::new("cold", format!("m{m}_c{cuts}")),
            &region,
            |b, region| {
                let mut ws = rankhow_lp::SimplexWorkspace::new();
                b.iter(|| {
                    let mut probe = region.clone();
                    for j in 0..m {
                        probe.set_objective(j, 1.0);
                        probe.set_sense(Sense::Minimize);
                        black_box(probe.solve_with(&mut ws).unwrap());
                        probe.set_sense(Sense::Maximize);
                        black_box(probe.solve_with(&mut ws).unwrap());
                        probe.set_objective(j, 0.0);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("warm", format!("m{m}_c{cuts}")),
            &region,
            |b, region| {
                let mut inc = IncrementalLp::new();
                b.iter(|| {
                    inc.load(region, None).unwrap();
                    for j in 0..m {
                        black_box(inc.solve_objective(&[(j, 1.0)], Sense::Minimize).unwrap());
                        black_box(inc.solve_objective(&[(j, 1.0)], Sense::Maximize).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, node_loop, probe_sweep);
criterion_main!(benches);
