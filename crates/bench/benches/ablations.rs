//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - best-first vs depth-first node order (the "holistic solver"
//!   ingredient the paper credits for beating TREE),
//! - incumbent sampling on/off,
//! - dominance/constant-folding contribution (live pairs with and
//!   without the ε-margin),
//! - TREE vs RankHow head-to-head on a completable instance,
//! - holistic optimization vs a series of satisfiability probes
//!   (Section III-A's Z3 remark),
//! - the alternative objectives (Kendall tau, top-weighted) vs
//!   Definition 3 on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use rankhow_baselines::tree::{self, TreeConfig};
use rankhow_baselines::Instance;
use rankhow_bench::setups;
use rankhow_core::{ErrorMeasure, RankHow, SatSearch, SearchOrder, SolverConfig};
use rankhow_ranking::dominance_pairs;
use std::hint::black_box;
use std::time::Duration;

fn search_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_search_order");
    group.sample_size(10);
    let problem = setups::nba_problem(300, 4, 4);
    for (name, order) in [
        ("best_first", SearchOrder::BestFirst),
        ("depth_first", SearchOrder::DepthFirst),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sol = RankHow::with_config(SolverConfig {
                    order,
                    time_limit: Some(Duration::from_secs(30)),
                    ..SolverConfig::default()
                })
                .solve(&problem)
                .unwrap();
                black_box((sol.error, sol.stats.nodes))
            });
        });
    }
    group.finish();
}

fn incumbent_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incumbents");
    group.sample_size(10);
    let problem = setups::nba_problem(300, 4, 4);
    for (name, sampling) in [("with_incumbents", true), ("without", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sol = RankHow::with_config(SolverConfig {
                    incumbent_sampling: sampling,
                    time_limit: Some(Duration::from_secs(30)),
                    ..SolverConfig::default()
                })
                .solve(&problem)
                .unwrap();
                black_box((sol.error, sol.stats.nodes))
            });
        });
    }
    group.finish();
}

fn dominance_prefilter(c: &mut Criterion) {
    let problem = setups::nba_problem(5_000, 5, 6);
    c.bench_function("dominance_pairs_n5000", |b| {
        b.iter(|| {
            black_box(
                dominance_pairs(
                    problem.data.features(),
                    problem.given.top_k(),
                    problem.tol.eps,
                )
                .len(),
            )
        });
    });
}

fn tree_vs_rankhow(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_vs_rankhow");
    group.sample_size(10);
    // Small enough for TREE to complete (2 attributes keeps the
    // arrangement linear in the pair count).
    let problem = setups::nba_problem(25, 2, 2);
    let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
    group.bench_function("rankhow", |b| {
        b.iter(|| black_box(RankHow::new().solve(&problem).unwrap().error));
    });
    group.bench_function("tree", |b| {
        b.iter(|| {
            let res = tree::fit(
                &inst,
                &TreeConfig {
                    node_limit: 0,
                    ..TreeConfig::default()
                },
            );
            black_box(res.fitted.map(|f| f.error))
        });
    });
    group.bench_function("tree_with_eps1_gap", |b| {
        b.iter(|| {
            let res = tree::fit(
                &inst,
                &TreeConfig {
                    node_limit: 0,
                    ..TreeConfig::with_gap(problem.tol)
                },
            );
            black_box(res.fitted.map(|f| f.error))
        });
    });
    group.finish();
}

fn optimization_vs_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_opt_vs_sat");
    group.sample_size(10);
    // Small enough for the generic-MILP probes to finish quickly.
    let problem = setups::nba_problem(60, 4, 3);
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| black_box(RankHow::new().solve(&problem).unwrap().error));
    });
    group.bench_function("satisfiability_search", |b| {
        b.iter(|| black_box(SatSearch::new().solve(&problem).unwrap().error));
    });
    group.finish();
}

fn objective_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_objectives");
    group.sample_size(10);
    let base = setups::nba_problem(300, 4, 4);
    for (name, measure) in [
        ("position", ErrorMeasure::Position),
        ("kendall_tau", ErrorMeasure::KendallTau),
        ("top_weighted", ErrorMeasure::TopWeighted),
    ] {
        let problem = base.clone().with_objective(measure);
        group.bench_function(name, |b| {
            b.iter(|| {
                let sol = RankHow::with_config(SolverConfig {
                    time_limit: Some(Duration::from_secs(30)),
                    ..SolverConfig::default()
                })
                .solve(&problem)
                .unwrap();
                black_box((sol.error, sol.stats.nodes))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    search_order,
    incumbent_sampling,
    dominance_prefilter,
    tree_vs_rankhow,
    optimization_vs_satisfiability,
    objective_cost
);
criterion_main!(benches);
