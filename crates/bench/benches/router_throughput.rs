//! Throughput of the sharded router: a pools × queue-cap sweep over
//! synthetic workloads, measuring how placement, admission control, and
//! multi-pool fan-out affect batch completion time relative to a single
//! scheduler pool.
//!
//! Kept compiling by the CI `cargo bench --no-run` step; run with
//! `cargo bench --bench router_throughput`.
//!
//! Interpretation note: on a single-core container every pool shares
//! the one core, so multi-pool rows measure routing/coordination
//! overhead only (see `solver_scaling`); the sweep is meaningful on
//! multi-core hardware, where pools map onto disjoint core sets and
//! the rows show the sharding win. The queue-cap rows use blocking
//! backpressure so every configuration completes the same work — a
//! shedding run would do less work at smaller caps and the times would
//! not be comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rankhow_bench::setups;
use rankhow_core::{OptProblem, SolverConfig};
use rankhow_data::synthetic::Distribution;
use rankhow_router::{Placement, Router, RouterConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// The batch of concurrent jobs: replicas of the uniform synthetic
/// workload (distinct seeds so the searches — and their query-hash
/// fingerprints — differ).
fn job_batch(jobs: usize) -> Vec<Arc<OptProblem>> {
    (0..jobs)
        .map(|replica| {
            Arc::new(setups::synthetic_problem(
                Distribution::Uniform,
                replica as u64,
                150,
                4,
                4,
                3,
                false,
            ))
        })
        .collect()
}

fn job_config() -> SolverConfig {
    SolverConfig {
        // Cap each job so the whole sweep stays bench-sized.
        time_limit: Some(Duration::from_secs(5)),
        ..SolverConfig::default()
    }
}

/// Route a batch through a router and join everything.
fn run_batch(router: &Router, problems: &[Arc<OptProblem>]) -> Vec<u64> {
    let handles: Vec<_> = problems
        .iter()
        .map(|p| router.spawn_shared(Arc::clone(p), job_config()))
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("feasible workload").error)
        .collect()
}

/// Pools sweep under both placement policies: 8 jobs over 1 / 2 / 4
/// pools (2 workers each), unbounded queues.
fn pools_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_throughput");
    group.sample_size(10);
    let problems = job_batch(8);
    for placement in [Placement::QueryHash, Placement::LeastLoaded] {
        for &pools in &[1usize, 2, 4] {
            let label = match placement {
                Placement::QueryHash => "hash",
                Placement::LeastLoaded => "least_loaded",
            };
            group.bench_with_input(BenchmarkId::new(label, pools), &pools, |b, &pools| {
                b.iter(|| {
                    let router = Router::new(RouterConfig {
                        pools,
                        threads_per_pool: 2,
                        placement,
                        ..RouterConfig::default()
                    });
                    black_box(run_batch(&router, &problems))
                });
            });
        }
    }
    group.finish();
}

/// Queue-cap sweep with blocking backpressure: same 8 jobs, same 2×2
/// pool shape, progressively tighter admission — measures what bounding
/// the run queue costs when nothing is shed.
fn queue_cap_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_admission");
    group.sample_size(10);
    let problems = job_batch(8);
    for &cap in &[0usize, 8, 4, 1] {
        group.bench_with_input(BenchmarkId::new("queue_cap", cap), &cap, |b, &cap| {
            b.iter(|| {
                let router = Router::new(RouterConfig {
                    pools: 2,
                    threads_per_pool: 2,
                    queue_cap: cap,
                    backpressure: true,
                    placement: Placement::LeastLoaded,
                    ..RouterConfig::default()
                });
                black_box(run_batch(&router, &problems))
            });
        });
    }
    group.finish();
}

/// Repeated-query serving: a duplicate-heavy stream (half the queries
/// repeat an earlier one) joined sequentially — the order real repeat
/// traffic arrives in — with the cross-query solution cache on vs off.
/// The cached rows answer every repeat with a stored solution (zero
/// nodes, zero LPs); the uncached rows re-solve each one.
fn repeated_query_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_cache");
    group.sample_size(10);
    let distinct = job_batch(4);
    let stream: Vec<Arc<OptProblem>> = [0usize, 1, 0, 2, 1, 3, 2, 0]
        .iter()
        .map(|&i| Arc::clone(&distinct[i]))
        .collect();
    for cache in [true, false] {
        let label = if cache { "cache_on" } else { "cache_off" };
        group.bench_function(format!("repeat_p50_{label}"), |b| {
            b.iter(|| {
                let router = Router::new(RouterConfig {
                    pools: 1,
                    threads_per_pool: 1,
                    cache,
                    ..RouterConfig::default()
                });
                let errors: Vec<u64> = stream
                    .iter()
                    .map(|p| {
                        router
                            .spawn_shared(Arc::clone(p), job_config())
                            .join()
                            .expect("feasible workload")
                            .error
                    })
                    .collect();
                black_box(errors)
            });
        });
    }
    group.finish();
}

/// The layering comparison: one scheduler pool of 4 workers versus a
/// router of 2×2 — the direct cost of the extra routing layer on a
/// fixed worker budget.
fn router_vs_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_layering");
    group.sample_size(10);
    let problems = job_batch(4);
    group.bench_function("one_scheduler_4w", |b| {
        b.iter(|| {
            let scheduler = rankhow_serve::Scheduler::new(4);
            let handles: Vec<_> = problems
                .iter()
                .map(|p| scheduler.spawn_shared(Arc::clone(p), job_config()))
                .collect();
            let errors: Vec<u64> = handles
                .into_iter()
                .map(|h| h.join().expect("feasible workload").error)
                .collect();
            black_box(errors)
        });
    });
    group.bench_function("router_2x2", |b| {
        b.iter(|| {
            let router = Router::new(RouterConfig {
                pools: 2,
                threads_per_pool: 2,
                ..RouterConfig::default()
            });
            black_box(run_batch(&router, &problems))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    pools_sweep,
    queue_cap_sweep,
    repeated_query_sweep,
    router_vs_scheduler
);
criterion_main!(benches);
