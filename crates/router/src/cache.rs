//! The cross-query solution cache: exact-hit returns and near-hit root
//! warm starts in front of the router's pools.
//!
//! Ranking traffic is heavily repetitive — the same "why is X ranked
//! above Y" query recurs with identical or near-identical instances —
//! so the router consults this cache on every eligible spawn:
//!
//! - an **exact hit** (equal [`QueryKey::full`], verified structurally)
//!   returns the stored [`Solution`] without touching a pool — zero
//!   nodes, zero LPs, the handle completes immediately;
//! - a **near hit** (equal [`QueryKey::shape`], different constraints)
//!   seeds the new job's root with the cached incumbents and, when the
//!   engine can prove the cached region contains the new one, the
//!   cached basis snapshot and propagated root facts
//!   ([`rankhow_core::RootSeed`]);
//! - a **miss** runs cold and, if it completes [`SolveStatus::Optimal`],
//!   is inserted for the next query.
//!
//! Policy: bounded capacity, sharded LRU — entries shard by
//! `shape % shards` (one shard per pool by default), so exact and near
//! candidates co-locate and concurrent lookups on different shards never
//! serialize. Entries are only ever inserted from `Optimal` completions
//! and invalidated when a re-solve of the same query ends non-`Optimal`.

use crate::key::{same_constraints, same_shape, QueryKey};
use rankhow_core::{OptProblem, RootArtifacts, Solution, SolveStatus, SolverStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A point-in-time snapshot of the cache counters (part of
/// [`RouterStats`](crate::RouterStats)).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered with a stored solution (no pool touched).
    pub exact_hits: u64,
    /// Lookups answered with a root warm-start seed.
    pub near_hits: u64,
    /// Lookups that found neither.
    pub misses: u64,
    /// Entries evicted by the LRU capacity policy.
    pub evictions: u64,
    /// Entries ever inserted (replacements of an existing key do not
    /// count).
    pub insertions: u64,
    /// Entries resident at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// Serialize as a JSON object (the `cache` section of
    /// `--stats-json`; schema documented in README § Observability).
    pub fn to_json(&self) -> String {
        let mut obj = rankhow_obs::json::Obj::new();
        obj.field_u64("exact_hits", self.exact_hits);
        obj.field_u64("near_hits", self.near_hits);
        obj.field_u64("misses", self.misses);
        obj.field_u64("evictions", self.evictions);
        obj.field_u64("insertions", self.insertions);
        obj.field_u64("entries", self.entries as u64);
        obj.finish()
    }
}

/// What one lookup produced.
pub(crate) enum Lookup {
    /// Verified exact hit: the stored solution, re-stamped with
    /// exact-hit stats (zero nodes/LPs, `cache_exact_hits == 1`).
    /// Boxed: the hit arm is cold next to `Miss`, and `Solution` is the
    /// enum's whole footprint.
    Exact(Box<Solution>),
    /// Verified shape match with different constraints: seed material
    /// for the new job's root.
    Near {
        /// Cached solution weights (plus certified weights when they
        /// differ) to offer as root incumbents.
        incumbents: Vec<Vec<f64>>,
        /// The cached solve's root artifacts, if captured.
        artifacts: Option<Arc<RootArtifacts>>,
    },
    /// Nothing usable cached.
    Miss,
}

struct Entry {
    full: u64,
    shape: u64,
    problem: Arc<OptProblem>,
    solution: Solution,
    artifacts: Option<Arc<RootArtifacts>>,
    /// Recency stamp from the cache clock (higher = more recent).
    last_used: u64,
}

/// The sharded LRU solution cache (see the module docs). Shared between
/// the router's spawn path and the per-job completion hooks via `Arc`.
pub(crate) struct SolutionCache {
    shards: Vec<Mutex<Vec<Entry>>>,
    /// Per-shard capacity: `cache_cap` split evenly (rounded up).
    shard_cap: usize,
    /// Monotone recency clock; one tick per lookup or insert.
    clock: AtomicU64,
    exact_hits: AtomicU64,
    near_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl SolutionCache {
    /// A cache of at most `cap` entries over `shards` shards (both
    /// clamped to ≥ 1).
    pub fn new(cap: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        SolutionCache {
            shard_cap: cap.max(1).div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            clock: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            near_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, shape: u64) -> usize {
        (shape % self.shards.len() as u64) as usize
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Consult the cache for one admitted query. Exact hits verify full
    /// structural equality behind the hash; near hits verify shape
    /// equality and pick the most recently used same-shape entry.
    pub fn lookup(&self, key: &QueryKey, problem: &OptProblem) -> Lookup {
        let stamp = self.tick();
        let mut shard = rankhow_sync::lock(&self.shards[self.shard_of(key.shape)]);
        if let Some(entry) = shard.iter_mut().find(|e| {
            e.full == key.full
                && same_shape(&e.problem, problem)
                && same_constraints(&e.problem, problem)
        }) {
            entry.last_used = stamp;
            self.exact_hits.fetch_add(1, Ordering::Relaxed);
            let mut solution = entry.solution.clone();
            // The returned stats describe *this* serving decision, not
            // the original search: one job, answered from cache, zero
            // nodes and LPs.
            solution.stats = SolverStats {
                jobs: 1,
                cache_exact_hits: 1,
                ..SolverStats::default()
            };
            return Lookup::Exact(Box::new(solution));
        }
        if let Some(entry) = shard
            .iter_mut()
            .filter(|e| e.shape == key.shape && same_shape(&e.problem, problem))
            .max_by_key(|e| e.last_used)
        {
            entry.last_used = stamp;
            self.near_hits.fetch_add(1, Ordering::Relaxed);
            let mut incumbents = vec![entry.solution.weights.clone()];
            let certified = &entry.solution.certified_weights;
            if !certified.is_empty() && certified != &entry.solution.weights {
                incumbents.push(certified.clone());
            }
            return Lookup::Near {
                incumbents,
                artifacts: entry.artifacts.clone(),
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Lookup::Miss
    }

    /// Record one completed solve. Only proved-optimal solutions enter
    /// the cache; any other status *invalidates* a stale entry under the
    /// same key (the cached claim "this is the optimum" no longer has a
    /// witness — e.g. the entry was adopted from a run that has since
    /// been contradicted by a cancelled re-solve is impossible, but a
    /// bounded re-solve must not leave the old entry pinned as LRU-hot).
    pub fn record(
        &self,
        key: &QueryKey,
        problem: &Arc<OptProblem>,
        solution: &Solution,
        artifacts: Option<Arc<RootArtifacts>>,
    ) {
        if solution.status != SolveStatus::Optimal {
            self.invalidate(key);
            return;
        }
        let stamp = self.tick();
        let mut shard = rankhow_sync::lock(&self.shards[self.shard_of(key.shape)]);
        if let Some(entry) = shard.iter_mut().find(|e| e.full == key.full) {
            entry.problem = Arc::clone(problem);
            entry.solution = solution.clone();
            entry.artifacts = artifacts;
            entry.last_used = stamp;
            return;
        }
        shard.push(Entry {
            full: key.full,
            shape: key.shape,
            problem: Arc::clone(problem),
            solution: solution.clone(),
            artifacts,
            last_used: stamp,
        });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.len() > self.shard_cap {
            let victim = shard
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("shard over capacity is non-empty");
            shard.swap_remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop the entry under `key`, if any (non-`Optimal` completion).
    pub fn invalidate(&self, key: &QueryKey) {
        let mut shard = rankhow_sync::lock(&self.shards[self.shard_of(key.shape)]);
        if let Some(idx) = shard.iter().position(|e| e.full == key.full) {
            shard.swap_remove(idx);
        }
    }

    /// Resident entry count across shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| rankhow_sync::lock(s).len())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            near_hits: self.near_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::query_key;
    use rankhow_core::{RankHow, SolverConfig, WeightConstraints};
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn problem(variant: f64) -> Arc<OptProblem> {
        let data = Dataset::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
                vec![2.0, variant, 9.0],
            ],
        )
        .unwrap();
        let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None, None]).unwrap();
        Arc::new(OptProblem::new(data, pi).unwrap())
    }

    fn solved(problem: &OptProblem) -> Solution {
        RankHow::with_config(SolverConfig {
            threads: 1,
            ..SolverConfig::default()
        })
        .solve(problem)
        .unwrap()
    }

    #[test]
    fn exact_hit_round_trips_the_solution_with_fresh_stats() {
        let cache = SolutionCache::new(8, 2);
        let p = problem(5.0);
        let key = query_key(&p);
        let sol = solved(&p);
        assert!(matches!(cache.lookup(&key, &p), Lookup::Miss));
        cache.record(&key, &p, &sol, None);
        match cache.lookup(&key, &p) {
            Lookup::Exact(hit) => {
                assert_eq!(hit.weights, sol.weights);
                assert_eq!(hit.error, sol.error);
                assert_eq!(hit.certified_error, sol.certified_error);
                assert_eq!(hit.status, sol.status);
                assert_eq!(hit.stats.nodes, 0);
                assert_eq!(hit.stats.lp_solves, 0);
                assert_eq!(hit.stats.cache_exact_hits, 1);
            }
            _ => panic!("expected an exact hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.exact_hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn near_hit_requires_equal_shape() {
        let cache = SolutionCache::new(8, 1);
        let base = problem(5.0);
        let sol = solved(&base);
        cache.record(&query_key(&base), &base, &sol, None);
        // Same data, different constraints: near hit.
        let constrained = Arc::new(
            (*base.clone())
                .clone()
                .with_constraints(WeightConstraints::none().max_weight(0, 0.6))
                .unwrap(),
        );
        match cache.lookup(&query_key(&constrained), &constrained) {
            Lookup::Near { incumbents, .. } => assert!(!incumbents.is_empty()),
            _ => panic!("expected a near hit"),
        }
        // Different data: miss (even if a shape-hash collision occurred,
        // the structural check rules it out).
        let other = problem(7.0);
        assert!(matches!(
            cache.lookup(&query_key(&other), &other),
            Lookup::Miss
        ));
    }

    #[test]
    fn non_optimal_completion_invalidates() {
        let cache = SolutionCache::new(8, 1);
        let p = problem(5.0);
        let key = query_key(&p);
        let sol = solved(&p);
        cache.record(&key, &p, &sol, None);
        assert_eq!(cache.entries(), 1);
        let mut bounded = sol.clone();
        bounded.status = SolveStatus::Cancelled;
        bounded.optimal = false;
        cache.record(&key, &p, &bounded, None);
        assert_eq!(cache.entries(), 0, "non-Optimal completions invalidate");
        assert!(matches!(cache.lookup(&key, &p), Lookup::Miss));
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        // One shard, capacity 2: the least recently used entry goes.
        let cache = SolutionCache::new(2, 1);
        let (a, b, c) = (problem(5.0), problem(6.0), problem(7.0));
        let (ka, kb, kc) = (query_key(&a), query_key(&b), query_key(&c));
        let sol = solved(&a);
        cache.record(&ka, &a, &sol, None);
        cache.record(&kb, &b, &solved(&b), None);
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert!(matches!(cache.lookup(&ka, &a), Lookup::Exact(_)));
        cache.record(&kc, &c, &solved(&c), None);
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.lookup(&ka, &a), Lookup::Exact(_)));
        assert!(matches!(cache.lookup(&kc, &c), Lookup::Exact(_)));
        assert!(
            matches!(cache.lookup(&kb, &b), Lookup::Miss),
            "b was evicted as least recently used"
        );
    }
}
