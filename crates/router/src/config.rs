//! Router configuration: pool shape, placement policy, admission caps.

use rankhow_serve::DEFAULT_SLICE_NODES;

/// How the router picks a pool for a new query.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Placement {
    /// Deterministic hash of the query (dataset feature bits + given
    /// ranking) modulo the pool count. The same query always lands on
    /// the same pool — cache/workspace affinity, and the whole routing
    /// decision is reproducible run-to-run. A SYM-GD chain's cells all
    /// share one fingerprint, so a chain stays on one pool.
    #[default]
    QueryHash,
    /// The pool with the lowest load score (run-queue depth plus
    /// in-flight jobs, see
    /// [`PoolLoad::score`](rankhow_serve::PoolLoad::score)) at spawn
    /// time; ties break to the lowest pool index.
    LeastLoaded,
}

/// Configuration of a [`Router`](crate::Router).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Number of independent scheduler pools (≥ 1). One pool makes the
    /// router a thin wrapper over a single
    /// [`Scheduler`](rankhow_serve::Scheduler).
    pub pools: usize,
    /// Worker threads per pool (≥ 1).
    pub threads_per_pool: usize,
    /// Fairness slice (nodes per job turn) for every pool.
    pub slice_nodes: usize,
    /// Per-pool admission cap: a pool refusing to own more than this
    /// many live jobs sheds (or delays, under
    /// [`RouterConfig::backpressure`]) further spawns placed on it.
    /// `0` = unbounded.
    pub queue_cap: usize,
    /// Global high-water mark across all pools: once the router-wide
    /// live-job count reaches it, every new spawn is shed (or delayed)
    /// regardless of per-pool headroom. `0` = no global mark.
    pub global_cap: usize,
    /// Placement policy for new queries.
    pub placement: Placement,
    /// What happens to an over-capacity spawn: `false` (default) sheds
    /// it — the returned handle completes immediately with
    /// [`SolveStatus::Rejected`](rankhow_core::SolveStatus) and no
    /// incumbent; `true` blocks the spawning thread until the placed
    /// pool has capacity again.
    pub backpressure: bool,
    /// Run an automatic rebalancing load tick every this many
    /// admissions (see [`Router::rebalance`](crate::Router::rebalance)).
    /// `0` disables automatic ticks — rebalancing is then explicit.
    pub rebalance_every: u64,
    /// Whether the cross-query solution cache sits in front of
    /// placement (default `true`): exact fingerprint matches return the
    /// stored solution without touching a pool, and same-shape queries
    /// with different weight constraints warm-start from the cached
    /// root. Disable for strictly independent re-solves (e.g. when
    /// measuring cold-solve throughput, or when admission counters must
    /// see every duplicate).
    pub cache: bool,
    /// Capacity of the solution cache in entries, LRU-evicted and
    /// sharded across pools. `0` disables the cache just like
    /// [`RouterConfig::cache`]` = false`.
    pub cache_cap: usize,
    /// Whether the router records its layer of solve-path telemetry —
    /// admission/placement/rejection flight-recorder events, cache
    /// lookup timing, and per-pool queue-depth gauges — for queries
    /// that carry a telemetry handle
    /// (`SolverConfig::telemetry`). Default `true`; queries without a
    /// handle record nothing either way, and the `obs-off` cargo
    /// feature removes the recording at compile time.
    pub telemetry: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            pools: 1,
            threads_per_pool: rankhow_core::default_threads(),
            slice_nodes: DEFAULT_SLICE_NODES,
            queue_cap: 0,
            global_cap: 0,
            placement: Placement::QueryHash,
            backpressure: false,
            rebalance_every: 64,
            cache: true,
            cache_cap: 512,
            telemetry: true,
        }
    }
}
