//! Router configuration: pool shape, placement policy, admission caps,
//! retry/quarantine policy.

use rankhow_serve::{DEFAULT_RESPAWN_CAP, DEFAULT_SLICE_NODES};
use std::time::Duration;

/// Retry policy for refused and failed spawns
/// ([`RouterConfig::retry`]).
///
/// Two failure classes are re-admitted, both transparently behind the
/// returned [`SolveHandle`](rankhow_serve::SolveHandle):
///
/// - a spawn *shed by admission control* (pool or global cap, without
///   backpressure) is retried from the submitting thread after an
///   exponential backoff (`backoff`, `2 * backoff`, `4 * backoff`, …);
/// - a job that completed
///   [`SolveStatus::Failed`](rankhow_core::SolveStatus) (its step
///   panicked) is respawned by the router's delivery hook — without
///   sleeping on the pool worker — warm-started from the failed
///   attempt's best-so-far incumbent, and preferring non-quarantined
///   pools.
///
/// `budget` bounds the *total* time spent on re-admissions, measured
/// from the original admission; retries stop when it runs out even if
/// `max_retries` remain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-admissions allowed per query (0 = retries disabled; refused
    /// spawns shed immediately and `Failed` results are delivered
    /// as-is).
    pub max_retries: u32,
    /// Base backoff between admission-shed retries; doubles per
    /// attempt. Failure respawns never sleep — backoff applies to the
    /// submitting thread only.
    pub backoff: Duration,
    /// Optional cap on total retry time per query, from original
    /// admission. `None` = bounded only by `max_retries`.
    pub budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::from_millis(10),
            budget: None,
        }
    }
}

/// How the router picks a pool for a new query.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Placement {
    /// Deterministic hash of the query (dataset feature bits + given
    /// ranking) modulo the pool count. The same query always lands on
    /// the same pool — cache/workspace affinity, and the whole routing
    /// decision is reproducible run-to-run. A SYM-GD chain's cells all
    /// share one fingerprint, so a chain stays on one pool.
    #[default]
    QueryHash,
    /// The pool with the lowest load score (run-queue depth plus
    /// in-flight jobs, see
    /// [`PoolLoad::score`](rankhow_serve::PoolLoad::score)) at spawn
    /// time; ties break to the lowest pool index.
    LeastLoaded,
}

/// Configuration of a [`Router`](crate::Router).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Number of independent scheduler pools (≥ 1). One pool makes the
    /// router a thin wrapper over a single
    /// [`Scheduler`](rankhow_serve::Scheduler).
    pub pools: usize,
    /// Worker threads per pool (≥ 1).
    pub threads_per_pool: usize,
    /// Fairness slice (nodes per job turn) for every pool.
    pub slice_nodes: usize,
    /// Per-pool admission cap: a pool refusing to own more than this
    /// many live jobs sheds (or delays, under
    /// [`RouterConfig::backpressure`]) further spawns placed on it.
    /// `0` = unbounded.
    pub queue_cap: usize,
    /// Global high-water mark across all pools: once the router-wide
    /// live-job count reaches it, every new spawn is shed (or delayed)
    /// regardless of per-pool headroom. `0` = no global mark.
    pub global_cap: usize,
    /// Placement policy for new queries.
    pub placement: Placement,
    /// What happens to an over-capacity spawn: `false` (default) sheds
    /// it — the returned handle completes immediately with
    /// [`SolveStatus::Rejected`](rankhow_core::SolveStatus) and no
    /// incumbent; `true` blocks the spawning thread until the placed
    /// pool has capacity again.
    pub backpressure: bool,
    /// Run an automatic rebalancing load tick every this many
    /// admissions (see [`Router::rebalance`](crate::Router::rebalance)).
    /// `0` disables automatic ticks — rebalancing is then explicit.
    pub rebalance_every: u64,
    /// Whether the cross-query solution cache sits in front of
    /// placement (default `true`): exact fingerprint matches return the
    /// stored solution without touching a pool, and same-shape queries
    /// with different weight constraints warm-start from the cached
    /// root. Disable for strictly independent re-solves (e.g. when
    /// measuring cold-solve throughput, or when admission counters must
    /// see every duplicate).
    pub cache: bool,
    /// Capacity of the solution cache in entries, LRU-evicted and
    /// sharded across pools. `0` disables the cache just like
    /// [`RouterConfig::cache`]` = false`.
    pub cache_cap: usize,
    /// Whether the router records its layer of solve-path telemetry —
    /// admission/placement/rejection flight-recorder events, cache
    /// lookup timing, and per-pool queue-depth gauges — for queries
    /// that carry a telemetry handle
    /// (`SolverConfig::telemetry`). Default `true`; queries without a
    /// handle record nothing either way, and the `obs-off` cargo
    /// feature removes the recording at compile time.
    pub telemetry: bool,
    /// Retry policy for refused and failed spawns (see [`RetryPolicy`];
    /// retries are off by default).
    pub retry: RetryPolicy,
    /// Quarantine threshold: a pool whose sliding window of recent
    /// completions (last 16) accumulates this many `Failed` results is
    /// excluded from placement for [`RouterConfig::quarantine_cooldown`]
    /// — failure respawns and new queries prefer healthy pools, and a
    /// query-hash-pinned query remaps to the next healthy pool. `0`
    /// (default) disables quarantining. When *every* pool is
    /// quarantined, placement ignores quarantine rather than refusing
    /// service.
    pub quarantine_after: u32,
    /// How long a tripped pool stays out of placement before being
    /// re-admitted with a clean window.
    pub quarantine_cooldown: Duration,
    /// Supervisor respawn cap per pool (see
    /// [`Scheduler::with_options`](rankhow_serve::Scheduler::with_options)):
    /// worker threads that die are replaced up to this many times per
    /// pool before the pool is allowed to go dead.
    pub worker_respawn_cap: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            pools: 1,
            threads_per_pool: rankhow_core::default_threads(),
            slice_nodes: DEFAULT_SLICE_NODES,
            queue_cap: 0,
            global_cap: 0,
            placement: Placement::QueryHash,
            backpressure: false,
            rebalance_every: 64,
            cache: true,
            cache_cap: 512,
            telemetry: true,
            retry: RetryPolicy::default(),
            quarantine_after: 0,
            quarantine_cooldown: Duration::from_millis(250),
            worker_respawn_cap: DEFAULT_RESPAWN_CAP,
        }
    }
}
