//! The router: P scheduler pools behind one `spawn` surface.

use crate::cache::{Lookup, SolutionCache};
use crate::config::{Placement, RouterConfig};
use crate::key::{self, query_key, QueryKey};
use crate::stats::{PoolSnapshot, RouterStats};
use rankhow_core::{
    CellScheduler, OptProblem, RootSeed, Solution, SolveStatus, SolverConfig, SolverError,
    SolverStats,
};
use rankhow_serve::{CompletionHook, RetryRelay, Scheduler, SolveHandle, SpawnOptions};
use rankhow_sync as sync;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// How long a backpressured spawner parks on a pool's capacity condvar
/// before rechecking admission (a completion on *another* pool does not
/// wake it, so the wait must time out and re-poll).
const BACKPRESSURE_POLL: Duration = Duration::from_millis(2);

/// Sliding window of recent per-pool completions the quarantine
/// threshold ([`RouterConfig::quarantine_after`]) counts failures over.
const HEALTH_WINDOW: usize = 16;

/// A load-aware router over `P` independent [`Scheduler`] pools.
///
/// The router keeps the scheduler's serving surface —
/// `spawn -> SolveHandle` — and adds the missing multi-pool layer:
///
/// - **placement** ([`Placement`]): deterministic query-hash or
///   least-loaded pool selection;
/// - **admission control**: a per-pool run-queue cap and a global
///   high-water mark. Over-capacity spawns *complete* immediately with
///   [`SolveStatus::Rejected`](rankhow_core::SolveStatus) (no panic, no
///   error, no incumbent) — or block until capacity when
///   [`RouterConfig::backpressure`] is set;
/// - **retry** ([`RetryPolicy`](crate::RetryPolicy)): admission-shed
///   spawns re-place after an exponential backoff, and jobs that
///   complete [`SolveStatus::Failed`](rankhow_core::SolveStatus) (a
///   worker caught their panic) are respawned — warm-started from the
///   failed attempt's incumbent — transparently behind the same
///   [`SolveHandle`];
/// - **quarantine** ([`RouterConfig::quarantine_after`]): a pool whose
///   recent completions keep failing is taken out of placement for a
///   cooldown, and a pool whose workers all died (supervision respawn
///   cap exhausted, see
///   [`Scheduler::is_dead`](rankhow_serve::Scheduler::is_dead)) is
///   skipped permanently;
/// - **rebalancing** ([`Router::rebalance`]): on a load tick,
///   not-yet-started jobs migrate from the deepest run queue to the
///   shallowest. Un-started jobs have no root state, so a migration
///   moves nothing but the queue entry;
/// - **observability** ([`Router::stats`]): per-pool and aggregate
///   engine statistics plus admission/rejection/retry/migration
///   counters;
/// - a **cross-query solution cache** ([`RouterConfig::cache`],
///   counters in [`CacheStats`](crate::CacheStats)): exact repeats of a
///   proved-optimal query complete from the cache without ever
///   reaching a pool, and same-shape queries with different weight
///   constraints warm-start from the cached root.
///
/// Dropping the router drops every pool: outstanding jobs are cancelled
/// cooperatively and their joiners unblock with best-so-far results.
/// Completion hooks hold only a [`Weak`] reference back to the router,
/// so a query delivered during (or after) teardown resolves its handle
/// without retrying.
pub struct Router {
    inner: Arc<RouterInner>,
}

/// The router's shared state. `Router` is a thin `Arc` wrapper so the
/// delivery hooks of in-flight jobs can reach the retry/quarantine
/// bookkeeping through a [`Weak`] edge without keeping the pools alive.
struct RouterInner {
    pools: Vec<Scheduler>,
    config: RouterConfig,
    /// The cross-query solution cache, `None` when disabled. Shared
    /// with the completion hooks of every admitted cache-eligible job.
    cache: Option<Arc<SolutionCache>>,
    /// Per-pool failure windows driving quarantine (same indexing as
    /// `pools`; unused when quarantining is disabled).
    health: Vec<Mutex<PoolHealth>>,
    admissions: AtomicU64,
    rejections: AtomicU64,
    migrations: AtomicU64,
    retries: AtomicU64,
    retries_exhausted: AtomicU64,
    completions: AtomicU64,
    quarantines: AtomicU64,
    /// Admissions since the last automatic rebalancing tick.
    tick: AtomicU64,
}

/// Recent completion outcomes of one pool, and whether the pool is
/// currently benched.
struct PoolHealth {
    /// Last [`HEALTH_WINDOW`] deliveries, `true` = `Failed`.
    window: VecDeque<bool>,
    /// Failures currently in `window`.
    fails: u32,
    /// Quarantined until this instant (`None` = serving). Cleared
    /// lazily by the next placement that observes the cooldown expired.
    until: Option<Instant>,
}

impl PoolHealth {
    fn new() -> Self {
        PoolHealth {
            window: VecDeque::with_capacity(HEALTH_WINDOW),
            fails: 0,
            until: None,
        }
    }
}

/// Everything one admitted query's delivery hook needs to settle it:
/// the ledger counters (through `router`), the retry policy inputs, and
/// the relay the caller's handle parks on. One `RetryState` spans all
/// attempts of a query; each attempt's `SpawnOptions` carries a fresh
/// closure over the same state.
struct RetryState {
    /// Weak so in-flight hooks never keep the pools alive; a hook that
    /// fires during router teardown skips retrying and just resolves.
    router: Weak<RouterInner>,
    /// `None` when retries are disabled — the caller then holds the
    /// attempt's own handle and the hook only keeps the ledger/cache.
    relay: Option<Arc<RetryRelay>>,
    problem: Arc<OptProblem>,
    fingerprint: Option<u64>,
    /// Cache to record the final result into (cache-eligible queries
    /// only). Failed finals invalidate rather than populate.
    cache: Option<(Arc<SolutionCache>, QueryKey)>,
    /// The admitted solver config, kept for respawns (`None` when
    /// retries are disabled). Respawn attempts clone it and graft the
    /// failed attempt's incumbent as a warm start.
    retry_config: Option<SolverConfig>,
    tel: Option<Arc<rankhow_obs::SolveTelemetry>>,
    /// Retry slots consumed (shed retries and failure respawns share
    /// the one `max_retries` budget).
    attempt: AtomicU32,
    /// Pool of the current attempt — the quarantine window the next
    /// delivery debits.
    pool: AtomicUsize,
    /// Original admission instant: latency baseline and retry-budget
    /// anchor across all attempts.
    admitted: Instant,
}

/// Build the completion hook for one attempt of `state`'s query. Runs
/// on the finalizing worker with no scheduler locks held (the scheduler
/// guarantees hook-before-wakeup), so it may spawn the next attempt —
/// even onto the same pool — without deadlocking.
fn delivery_hook(state: Arc<RetryState>) -> CompletionHook {
    Arc::new(move |result, artifacts| state.deliver(result, artifacts))
}

impl RetryState {
    /// Settle one attempt's result: debit the pool's health window,
    /// respawn if this was a retryable failure, otherwise count the
    /// final delivery, record it into the cache, and resolve the relay.
    fn deliver(
        self: &Arc<Self>,
        result: &Result<Solution, SolverError>,
        artifacts: Option<rankhow_core::RootArtifacts>,
    ) {
        let failed = matches!(result, Ok(sol) if sol.status == SolveStatus::Failed);
        let router = self.router.upgrade();
        if let Some(inner) = &router {
            inner.note_outcome(self.pool.load(Ordering::Acquire), failed);
            if failed && inner.try_respawn(self, result) {
                // Re-admitted: a later attempt's delivery settles the
                // query. Nothing is counted yet — retries was bumped by
                // the respawn itself.
                return;
            }
            let ledger = if failed {
                &inner.retries_exhausted
            } else {
                &inner.completions
            };
            ledger.fetch_add(1, Ordering::AcqRel);
        }
        if let (Some((cache, query)), Ok(solution)) = (&self.cache, result) {
            cache.record(query, &self.problem, solution, artifacts.map(Arc::new));
        }
        if let Some(relay) = &self.relay {
            relay.resolve(result.clone());
        }
    }
}

impl Router {
    /// A router over `config.pools` fresh scheduler pools.
    pub fn new(config: RouterConfig) -> Self {
        let pools = config.pools.max(1);
        let threads = config.threads_per_pool.max(1);
        let slice = config.slice_nodes.max(1);
        let cache = (config.cache && config.cache_cap > 0)
            .then(|| Arc::new(SolutionCache::new(config.cache_cap, pools)));
        Router {
            inner: Arc::new(RouterInner {
                pools: (0..pools)
                    .map(|_| Scheduler::with_options(threads, slice, config.worker_respawn_cap))
                    .collect(),
                config: RouterConfig {
                    pools,
                    threads_per_pool: threads,
                    slice_nodes: slice,
                    ..config
                },
                cache,
                health: (0..pools).map(|_| Mutex::new(PoolHealth::new())).collect(),
                admissions: AtomicU64::new(0),
                rejections: AtomicU64::new(0),
                migrations: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                retries_exhausted: AtomicU64::new(0),
                completions: AtomicU64::new(0),
                quarantines: AtomicU64::new(0),
                tick: AtomicU64::new(0),
            }),
        }
    }

    /// Number of pools.
    pub fn pools(&self) -> usize {
        self.inner.pools.len()
    }

    /// The (normalized) configuration the router runs with.
    pub fn config(&self) -> &RouterConfig {
        &self.inner.config
    }

    /// Route one query. Same contract as
    /// [`Scheduler::spawn`](rankhow_serve::Scheduler::spawn): returns
    /// immediately with a handle; root setup happens on a pool worker.
    /// Over-capacity spawns resolve through the handle with
    /// [`SolveStatus::Rejected`](rankhow_core::SolveStatus) (or are
    /// delayed under [`RouterConfig::backpressure`], or retried under
    /// [`RouterConfig::retry`]) — the surface never panics or errors on
    /// load, and even a router whose every pool died completes the
    /// handle ([`SolveStatus::Failed`](rankhow_core::SolveStatus))
    /// rather than hanging it.
    pub fn spawn(&self, problem: OptProblem, config: SolverConfig) -> SolveHandle {
        self.spawn_shared(Arc::new(problem), config)
    }

    /// [`Router::spawn`] without copying the problem.
    pub fn spawn_shared(&self, problem: Arc<OptProblem>, config: SolverConfig) -> SolveHandle {
        self.inner
            .submit(problem, config, self.inner.config.backpressure)
    }

    /// Which pool a query lands on under the configured placement,
    /// including the health remap: a quarantined or dead pool forwards
    /// to the next healthy one (scan order from the pinned index), so
    /// with all pools healthy this is the plain query-hash /
    /// least-loaded answer. Exposed so callers (and tests) can predict
    /// routing.
    pub fn place(&self, problem: &OptProblem) -> usize {
        let pinned = match self.inner.config.placement {
            Placement::QueryHash => {
                Some((key::fingerprint(problem) % self.inner.pools.len() as u64) as usize)
            }
            Placement::LeastLoaded => None,
        };
        self.inner.route(pinned).unwrap_or(0)
    }

    /// Pools currently benched by the failure-window quarantine, in
    /// index order (never includes dead pools — those are skipped by
    /// placement unconditionally, see
    /// [`Scheduler::is_dead`](rankhow_serve::Scheduler::is_dead)).
    pub fn quarantined_pools(&self) -> Vec<usize> {
        (0..self.inner.pools.len())
            .filter(|&p| self.inner.is_quarantined(p))
            .collect()
    }

    /// One rebalancing load tick: repeatedly migrate the youngest
    /// not-yet-started job from the deepest run queue to the shallowest
    /// until the depths differ by at most one (or nothing migratable
    /// remains). Returns the number of jobs moved. Safe to call
    /// concurrently with spawns and with itself; migration never
    /// changes a job's result — an un-started job has no root state,
    /// and lane ids map onto any pool size.
    pub fn rebalance(&self) -> usize {
        self.inner.rebalance()
    }

    /// A point-in-time observability snapshot: per-pool engine stats
    /// and loads, the merged aggregate, the admission and retry
    /// counters, and the solution-cache counters.
    pub fn stats(&self) -> RouterStats {
        self.inner.stats()
    }
}

impl RouterInner {
    fn submit(
        self: &Arc<Self>,
        mut problem: Arc<OptProblem>,
        mut config: SolverConfig,
        backpressure: bool,
    ) -> SolveHandle {
        // Router-layer telemetry: only for queries that carry a handle,
        // and only when the router's own gate is open. The admission
        // stamp always rides the spawn options — queue-wait must
        // survive placement retries and rebalance migrations, so it is
        // taken once, here.
        let admitted_at = Instant::now();
        let tel = if rankhow_obs::ENABLED && self.config.telemetry {
            config.telemetry.clone()
        } else {
            None
        };
        if let Some(tel) = &tel {
            tel.event(rankhow_obs::Event::Admitted);
        }
        // One canonical-key pass per admission: placement, the cache
        // lookup, and the queued-job fingerprint all reuse it —
        // placement retries and rebalancing never re-walk the feature
        // matrix.
        let keyed = (self.cache.is_some() || self.config.placement == Placement::QueryHash)
            .then(|| query_key(&problem));
        let mut opts = SpawnOptions {
            fingerprint: keyed.map(|k| k.full),
            admitted: Some(admitted_at),
            ..SpawnOptions::default()
        };
        let mut cache_entry: Option<(Arc<SolutionCache>, QueryKey)> = None;
        if let (Some(cache), Some(query)) = (&self.cache, keyed) {
            // Only plain spawns go through the cache. A query that
            // arrives with its own region or seed (a SYM-GD cell mid
            // chain, a caller-narrowed re-solve) is not the whole-simplex
            // instance the key describes — serving it a cached answer
            // would answer a different question.
            if config.initial_box.is_none() && config.root_seed.is_none() {
                let lookup_t0 = tel.as_ref().map(|_| Instant::now());
                let looked_up = cache.lookup(&query, &problem);
                if let (Some(tel), Some(t0)) = (&tel, lookup_t0) {
                    tel.metrics.cache_lookup.record(t0.elapsed());
                }
                match looked_up {
                    Lookup::Exact(solution) => {
                        // An exact hit still completes the query: keep
                        // the latency histogram's "one entry per
                        // completed query" invariant. Exact hits never
                        // reach a pool, so they sit outside the
                        // admissions == completions + retries_exhausted
                        // ledger entirely.
                        if let Some(tel) = &tel {
                            tel.event(rankhow_obs::Event::CacheExactHit);
                            tel.event(rankhow_obs::Event::Completed { status: "optimal" });
                            tel.metrics.latency.record(admitted_at.elapsed());
                        }
                        return SolveHandle::completed(*solution);
                    }
                    Lookup::Near {
                        incumbents,
                        artifacts,
                    } => {
                        config.root_seed = Some(Arc::new(RootSeed {
                            incumbents,
                            artifacts,
                        }));
                    }
                    Lookup::Miss => {}
                }
                cache_entry = Some((Arc::clone(cache), query));
            }
        }
        // Every admitted job carries a delivery hook: it keeps the
        // completion ledger, debits the pool's quarantine window, and —
        // when a relay exists — orchestrates failure respawns. With
        // retries on, the caller's handle observes the relay, not any
        // one attempt.
        let retrying = self.config.retry.max_retries > 0;
        let (mut shell, relay) = if retrying {
            let (handle, relay) = SolveHandle::relayed();
            (Some(handle), Some(relay))
        } else {
            (None, None)
        };
        let state = Arc::new(RetryState {
            router: Arc::downgrade(self),
            relay,
            problem: Arc::clone(&problem),
            fingerprint: keyed.map(|k| k.full),
            cache: cache_entry,
            retry_config: retrying.then(|| config.clone()),
            tel: tel.clone(),
            attempt: AtomicU32::new(0),
            pool: AtomicUsize::new(0),
            admitted: admitted_at,
        });
        opts.on_complete = Some(delivery_hook(Arc::clone(&state)));
        // Query-hash placement is a function of the problem alone —
        // pinned once from the precomputed key (the health remap in
        // `route` may still forward it off a quarantined/dead pool).
        // Least-loaded placement is recomputed on every retry instead:
        // a blocked spawner re-routes to whichever pool drained first
        // rather than camping on its original choice.
        let pinned = match self.config.placement {
            Placement::QueryHash => {
                let full = keyed
                    .expect("QueryHash placement always computes the key")
                    .full;
                Some((full % self.pools.len() as u64) as usize)
            }
            Placement::LeastLoaded => None,
        };
        loop {
            let Some(pool) = self.route(pinned) else {
                // Every pool is dead (supervision respawn caps
                // exhausted). Complete the handle — never hang it.
                self.rejections.fetch_add(1, Ordering::AcqRel);
                if let Some(tel) = &tel {
                    tel.event(rankhow_obs::Event::Failed);
                }
                return SolveHandle::completed(Solution::failed());
            };
            if self.over_high_water() {
                if !backpressure {
                    if let Some((attempt, delay)) = self.shed_retry(&state) {
                        if let Some(tel) = &tel {
                            tel.event(rankhow_obs::Event::Retried { attempt });
                        }
                        std::thread::sleep(delay);
                        continue;
                    }
                    self.rejections.fetch_add(1, Ordering::AcqRel);
                    if let Some(tel) = &tel {
                        tel.event(rankhow_obs::Event::Rejected);
                    }
                    return SolveHandle::rejected();
                }
                self.park(pool);
                continue;
            }
            // Stamp the attempt's pool before the entry can finalize —
            // the delivery hook reads it for the quarantine debit.
            state.pool.store(pool, Ordering::Release);
            // The scheduler stamps the `placed` event itself, before the
            // entry is worker-visible — recording it here after the Ok
            // would race the worker's `dequeued` into the trace.
            opts.placed_pool = tel.as_ref().map(|_| pool);
            match self.pools[pool].try_spawn_with(problem, config, self.config.queue_cap, opts) {
                Ok(handle) => {
                    self.admissions.fetch_add(1, Ordering::AcqRel);
                    if let Some(tel) = &tel {
                        tel.metrics
                            .set_pool_depth(pool, self.pools[pool].load().queued as u64);
                    }
                    self.auto_tick();
                    return match (shell.take(), &state.relay) {
                        (Some(shell), Some(relay)) => {
                            relay.bind(&handle);
                            shell
                        }
                        _ => handle,
                    };
                }
                Err(refused) => {
                    problem = refused.problem;
                    config = refused.config;
                    opts = refused.opts;
                    if !backpressure {
                        if let Some((attempt, delay)) = self.shed_retry(&state) {
                            if let Some(tel) = &tel {
                                tel.event(rankhow_obs::Event::Retried { attempt });
                            }
                            std::thread::sleep(delay);
                            continue;
                        }
                        self.rejections.fetch_add(1, Ordering::AcqRel);
                        if let Some(tel) = &tel {
                            tel.event(rankhow_obs::Event::Rejected);
                        }
                        return SolveHandle::rejected();
                    }
                    self.park(pool);
                }
            }
        }
    }

    /// Claim one retry slot for an admission-shed spawn. Returns the
    /// attempt number and the backoff to sleep before re-placing, or
    /// `None` when the policy (count or time budget) is exhausted. Shed
    /// retries and failure respawns draw from the same `max_retries`
    /// budget — `state.attempt` is the single meter.
    fn shed_retry(&self, state: &RetryState) -> Option<(u32, Duration)> {
        let policy = &self.config.retry;
        if policy.max_retries == 0 {
            return None;
        }
        let attempt = state.attempt.fetch_add(1, Ordering::AcqRel) + 1;
        if attempt > policy.max_retries {
            return None;
        }
        // Exponential backoff, clamped to the remaining time budget (a
        // spent budget kills the retry outright).
        let exp = attempt.saturating_sub(1).min(16);
        let mut delay = policy.backoff.saturating_mul(1u32 << exp);
        if let Some(budget) = policy.budget {
            let left = budget.checked_sub(state.admitted.elapsed())?;
            if left.is_zero() {
                return None;
            }
            delay = delay.min(left);
        }
        self.retries.fetch_add(1, Ordering::AcqRel);
        Some((attempt, delay))
    }

    /// Respawn a query whose attempt completed `Failed`, warm-started
    /// from that attempt's incumbent. Runs on the finalizing worker
    /// inside the delivery hook, so it never sleeps — one placement
    /// pass over healthy pools (then quarantined-but-alive ones), first
    /// admission wins. Returns whether a new attempt now owns the
    /// query; `false` sends the caller down the exhausted path.
    fn try_respawn(
        self: &Arc<Self>,
        state: &Arc<RetryState>,
        prior: &Result<Solution, SolverError>,
    ) -> bool {
        let Some(relay) = &state.relay else {
            return false;
        };
        if relay.is_cancelled() {
            return false;
        }
        let Some(retry_config) = &state.retry_config else {
            return false;
        };
        let policy = &self.config.retry;
        let attempt = state.attempt.fetch_add(1, Ordering::AcqRel) + 1;
        if attempt > policy.max_retries {
            return false;
        }
        if let Some(budget) = policy.budget {
            if state.admitted.elapsed() >= budget {
                return false;
            }
        }
        let mut config = retry_config.clone();
        if let Ok(sol) = prior {
            // Don't re-prove what the failed attempt already found: its
            // best incumbent seeds the retry.
            if sol.error != u64::MAX && !sol.weights.is_empty() {
                config.warm_start = Some(sol.weights.clone());
            }
        }
        let n = self.pools.len();
        let start = match (self.config.placement, state.fingerprint) {
            (Placement::QueryHash, Some(full)) => (full % n as u64) as usize,
            _ => self.least_loaded(),
        };
        let scan = |quarantined: bool| {
            (0..n)
                .map(move |off| (start + off) % n)
                .filter(move |&p| !self.pools[p].is_dead() && self.is_quarantined(p) == quarantined)
        };
        let mut problem = Arc::clone(&state.problem);
        let mut opts = SpawnOptions {
            fingerprint: state.fingerprint,
            admitted: Some(state.admitted),
            on_complete: Some(delivery_hook(Arc::clone(state))),
            ..SpawnOptions::default()
        };
        for pool in scan(false).chain(scan(true)).collect::<Vec<_>>() {
            state.pool.store(pool, Ordering::Release);
            opts.placed_pool = state.tel.as_ref().map(|_| pool);
            match self.pools[pool].try_spawn_with(problem, config, self.config.queue_cap, opts) {
                Ok(handle) => {
                    self.retries.fetch_add(1, Ordering::AcqRel);
                    if let Some(tel) = &state.tel {
                        tel.event(rankhow_obs::Event::Retried { attempt });
                    }
                    relay.bind(&handle);
                    return true;
                }
                Err(refused) => {
                    problem = refused.problem;
                    config = refused.config;
                    opts = refused.opts;
                }
            }
        }
        false
    }

    /// Debit one delivery against `pool`'s failure window, tripping the
    /// quarantine when [`RouterConfig::quarantine_after`] failures
    /// accumulate within the last [`HEALTH_WINDOW`] deliveries.
    /// Deliveries that land while the pool is already benched are
    /// ignored — in-flight jobs draining out of a quarantined pool must
    /// not extend its sentence.
    fn note_outcome(&self, pool: usize, failed: bool) {
        if self.config.quarantine_after == 0 || pool >= self.health.len() {
            return;
        }
        let mut health = sync::lock(&self.health[pool]);
        if health.until.is_some() {
            return;
        }
        health.window.push_back(failed);
        if failed {
            health.fails += 1;
        }
        if health.window.len() > HEALTH_WINDOW && health.window.pop_front() == Some(true) {
            health.fails -= 1;
        }
        if health.fails >= self.config.quarantine_after {
            health.until = Some(Instant::now() + self.config.quarantine_cooldown);
            // Recovery starts from a clean slate: pre-quarantine
            // failures don't instantly re-trip the pool.
            health.window.clear();
            health.fails = 0;
            self.quarantines.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Whether `pool` is currently benched. Lazily lifts an expired
    /// cooldown.
    fn is_quarantined(&self, pool: usize) -> bool {
        if self.config.quarantine_after == 0 {
            return false;
        }
        let mut health = sync::lock(&self.health[pool]);
        match health.until {
            Some(until) if Instant::now() >= until => {
                health.until = None;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    /// Resolve a placement to a servable pool: scan from the preferred
    /// index (the pinned hash slot, or the least-loaded pool), first
    /// for a healthy pool, then settling for a quarantined-but-alive
    /// one (quarantine degrades placement, never availability). `None`
    /// only when every pool is dead.
    fn route(&self, pinned: Option<usize>) -> Option<usize> {
        let n = self.pools.len();
        let start = pinned.unwrap_or_else(|| self.least_loaded());
        (0..n)
            .map(|off| (start + off) % n)
            .find(|&p| !self.pools[p].is_dead() && !self.is_quarantined(p))
            .or_else(|| {
                (0..n)
                    .map(|off| (start + off) % n)
                    .find(|&p| !self.pools[p].is_dead())
            })
    }

    /// The lowest-score pool among healthy ones (ties to the lowest
    /// index), falling back to any live pool, then to 0.
    fn least_loaded(&self) -> usize {
        let score = |i: usize| (self.pools[i].load().score(), i);
        (0..self.pools.len())
            .filter(|&i| !self.pools[i].is_dead() && !self.is_quarantined(i))
            .min_by_key(|&i| score(i))
            .or_else(|| {
                (0..self.pools.len())
                    .filter(|&i| !self.pools[i].is_dead())
                    .min_by_key(|&i| score(i))
            })
            .unwrap_or(0)
    }

    /// Bounded wait for a backpressured spawner: park on the placed
    /// pool's capacity condvar until one of *its* jobs completes (any
    /// completion lowers both the pool count and the global count), or
    /// plain-sleep one poll interval when the placed pool is idle and
    /// only the global mark binds — a completion on another pool cannot
    /// wake the condvar, and without the sleep the retry loop would
    /// busy-spin.
    fn park(&self, pool: usize) {
        let live = self.pools[pool].live_jobs();
        if live > 0 {
            self.pools[pool].wait_capacity(live, BACKPRESSURE_POLL);
        } else {
            std::thread::sleep(BACKPRESSURE_POLL);
        }
    }

    /// Whether the router-wide live-job count has reached the global
    /// high-water mark. Approximate under concurrent spawners — the
    /// mark is a shedding threshold, not an exact semaphore.
    fn over_high_water(&self) -> bool {
        let mark = self.config.global_cap;
        mark > 0 && self.pools.iter().map(Scheduler::live_jobs).sum::<usize>() >= mark
    }

    fn rebalance(&self) -> usize {
        if self.pools.len() < 2 {
            return 0;
        }
        let mut moved = 0usize;
        loop {
            let depths: Vec<usize> = self
                .pools
                .iter()
                .map(|p| if p.is_dead() { 0 } else { p.load().queued })
                .collect();
            let (deepest, &max_depth) = depths
                .iter()
                .enumerate()
                .max_by_key(|(i, &d)| (d, usize::MAX - i))
                .expect("at least two pools");
            let (shallowest, &min_depth) = depths
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.pools[*i].is_dead())
                .min_by_key(|(i, &d)| (d, *i))
                .unwrap_or((deepest, &max_depth));
            if max_depth <= min_depth + 1 || shallowest == deepest {
                break;
            }
            // The snapshot can go stale between load() and take; a miss
            // just ends the tick.
            let Some(job) = self.pools[deepest].take_unstarted() else {
                break;
            };
            self.pools[shallowest].adopt(job);
            moved += 1;
        }
        if moved > 0 {
            self.migrations.fetch_add(moved as u64, Ordering::AcqRel);
        }
        moved
    }

    fn auto_tick(&self) {
        let every = self.config.rebalance_every;
        if every > 0 && (self.tick.fetch_add(1, Ordering::AcqRel) + 1).is_multiple_of(every) {
            self.rebalance();
        }
    }

    fn stats(&self) -> RouterStats {
        let pools: Vec<PoolSnapshot> = self
            .pools
            .iter()
            .map(|p| PoolSnapshot {
                solver: p.stats(),
                load: p.load(),
                spawned: p.jobs_spawned(),
            })
            .collect();
        let mut solver = SolverStats::default();
        for pool in &pools {
            solver.merge(&pool.solver);
        }
        let cache = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        // Exact hits never reach a pool, so no per-pool row carries
        // them — fold the router-side counters into the aggregate here.
        // Near hits already arrive through the merged per-job stats of
        // the warm-seeded solves (`cache_near_hits`), so only the
        // router-side view is added for misses/evictions.
        solver.cache_exact_hits += cache.exact_hits as usize;
        solver.cache_misses += cache.misses as usize;
        solver.cache_evictions += cache.evictions as usize;
        RouterStats {
            pools,
            solver,
            admissions: self.admissions.load(Ordering::Acquire),
            rejections: self.rejections.load(Ordering::Acquire),
            migrations: self.migrations.load(Ordering::Acquire),
            retries: self.retries.load(Ordering::Acquire),
            retries_exhausted: self.retries_exhausted.load(Ordering::Acquire),
            completions: self.completions.load(Ordering::Acquire),
            quarantines: self.quarantines.load(Ordering::Acquire),
            cache,
        }
    }
}

/// SYM-GD chains route through the same pools. Cell solves are
/// *continuations* of an already-admitted query, not new external
/// traffic, so they always use backpressure: a full queue delays the
/// chain instead of shedding it mid-flight (a rejected cell would
/// corrupt the chain's warm-start sequence). Query-hash placement keeps
/// every cell of one chain on one pool — the chain's warm LP
/// workspaces stay hot.
impl CellScheduler for Router {
    fn solve_cell(
        &self,
        problem: &Arc<OptProblem>,
        config: SolverConfig,
    ) -> Result<Solution, SolverError> {
        self.inner.submit(Arc::clone(problem), config, true).join()
    }
}
