//! The router: P scheduler pools behind one `spawn` surface.

use crate::cache::{Lookup, SolutionCache};
use crate::config::{Placement, RouterConfig};
use crate::key::{self, query_key, QueryKey};
use crate::stats::{PoolSnapshot, RouterStats};
use rankhow_core::{
    CellScheduler, OptProblem, RootSeed, Solution, SolverConfig, SolverError, SolverStats,
};
use rankhow_serve::{Scheduler, SolveHandle, SpawnOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a backpressured spawner parks on a pool's capacity condvar
/// before rechecking admission (a completion on *another* pool does not
/// wake it, so the wait must time out and re-poll).
const BACKPRESSURE_POLL: Duration = Duration::from_millis(2);

/// A load-aware router over `P` independent [`Scheduler`] pools.
///
/// The router keeps the scheduler's serving surface —
/// `spawn -> SolveHandle` — and adds the missing multi-pool layer:
///
/// - **placement** ([`Placement`]): deterministic query-hash or
///   least-loaded pool selection;
/// - **admission control**: a per-pool run-queue cap and a global
///   high-water mark. Over-capacity spawns *complete* immediately with
///   [`SolveStatus::Rejected`](rankhow_core::SolveStatus) (no panic, no
///   error, no incumbent) — or block until capacity when
///   [`RouterConfig::backpressure`] is set;
/// - **rebalancing** ([`Router::rebalance`]): on a load tick,
///   not-yet-started jobs migrate from the deepest run queue to the
///   shallowest. Un-started jobs have no root state, so a migration
///   moves nothing but the queue entry;
/// - **observability** ([`Router::stats`]): per-pool and aggregate
///   engine statistics plus admission/rejection/migration counters;
/// - a **cross-query solution cache** ([`RouterConfig::cache`],
///   counters in [`CacheStats`](crate::CacheStats)): exact repeats of a
///   proved-optimal query complete from the cache without ever
///   reaching a pool, and same-shape queries with different weight
///   constraints warm-start from the cached root.
///
/// Dropping the router drops every pool: outstanding jobs are cancelled
/// cooperatively and their joiners unblock with best-so-far results.
pub struct Router {
    pools: Vec<Scheduler>,
    config: RouterConfig,
    /// The cross-query solution cache, `None` when disabled. Shared
    /// with the completion hooks of every admitted cache-eligible job.
    cache: Option<Arc<SolutionCache>>,
    admissions: AtomicU64,
    rejections: AtomicU64,
    migrations: AtomicU64,
    /// Admissions since the last automatic rebalancing tick.
    tick: AtomicU64,
}

impl Router {
    /// A router over `config.pools` fresh scheduler pools.
    pub fn new(config: RouterConfig) -> Self {
        let pools = config.pools.max(1);
        let threads = config.threads_per_pool.max(1);
        let slice = config.slice_nodes.max(1);
        let cache = (config.cache && config.cache_cap > 0)
            .then(|| Arc::new(SolutionCache::new(config.cache_cap, pools)));
        Router {
            pools: (0..pools)
                .map(|_| Scheduler::with_slice(threads, slice))
                .collect(),
            config: RouterConfig {
                pools,
                threads_per_pool: threads,
                slice_nodes: slice,
                ..config
            },
            cache,
            admissions: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }

    /// Number of pools.
    pub fn pools(&self) -> usize {
        self.pools.len()
    }

    /// The (normalized) configuration the router runs with.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Route one query. Same contract as
    /// [`Scheduler::spawn`](rankhow_serve::Scheduler::spawn): returns
    /// immediately with a handle; root setup happens on a pool worker.
    /// Over-capacity spawns resolve through the handle with
    /// [`SolveStatus::Rejected`](rankhow_core::SolveStatus) (or are
    /// delayed under [`RouterConfig::backpressure`]) — the surface
    /// never panics or errors on load.
    pub fn spawn(&self, problem: OptProblem, config: SolverConfig) -> SolveHandle {
        self.spawn_shared(Arc::new(problem), config)
    }

    /// [`Router::spawn`] without copying the problem.
    pub fn spawn_shared(&self, problem: Arc<OptProblem>, config: SolverConfig) -> SolveHandle {
        self.submit(problem, config, self.config.backpressure)
    }

    fn submit(
        &self,
        mut problem: Arc<OptProblem>,
        mut config: SolverConfig,
        backpressure: bool,
    ) -> SolveHandle {
        // Router-layer telemetry: only for queries that carry a handle,
        // and only when the router's own gate is open. The admission
        // stamp always rides the spawn options — queue-wait must
        // survive placement retries and rebalance migrations, so it is
        // taken once, here.
        let admitted_at = Instant::now();
        let tel = if rankhow_obs::ENABLED && self.config.telemetry {
            config.telemetry.clone()
        } else {
            None
        };
        if let Some(tel) = &tel {
            tel.event(rankhow_obs::Event::Admitted);
        }
        // One canonical-key pass per admission: placement, the cache
        // lookup, and the queued-job fingerprint all reuse it —
        // placement retries and rebalancing never re-walk the feature
        // matrix.
        let keyed = (self.cache.is_some() || self.config.placement == Placement::QueryHash)
            .then(|| query_key(&problem));
        let mut opts = SpawnOptions {
            fingerprint: keyed.map(|k| k.full),
            admitted: Some(admitted_at),
            ..SpawnOptions::default()
        };
        if let (Some(cache), Some(query)) = (&self.cache, keyed) {
            // Only plain spawns go through the cache. A query that
            // arrives with its own region or seed (a SYM-GD cell mid
            // chain, a caller-narrowed re-solve) is not the whole-simplex
            // instance the key describes — serving it a cached answer
            // would answer a different question.
            if config.initial_box.is_none() && config.root_seed.is_none() {
                let lookup_t0 = tel.as_ref().map(|_| Instant::now());
                let looked_up = cache.lookup(&query, &problem);
                if let (Some(tel), Some(t0)) = (&tel, lookup_t0) {
                    tel.metrics.cache_lookup.record(t0.elapsed());
                }
                match looked_up {
                    Lookup::Exact(solution) => {
                        // An exact hit still completes the query: keep
                        // the latency histogram's "one entry per
                        // completed query" invariant.
                        if let Some(tel) = &tel {
                            tel.event(rankhow_obs::Event::CacheExactHit);
                            tel.event(rankhow_obs::Event::Completed { status: "optimal" });
                            tel.metrics.latency.record(admitted_at.elapsed());
                        }
                        return SolveHandle::completed(solution);
                    }
                    Lookup::Near {
                        incumbents,
                        artifacts,
                    } => {
                        config.root_seed = Some(Arc::new(RootSeed {
                            incumbents,
                            artifacts,
                        }));
                    }
                    Lookup::Miss => {}
                }
                opts.on_complete = Some(Self::record_hook(
                    Arc::clone(cache),
                    Arc::clone(&problem),
                    query,
                ));
            }
        }
        // Query-hash placement is a function of the problem alone —
        // pinned once from the precomputed key. Least-loaded placement
        // is recomputed on every retry instead: a blocked spawner
        // re-routes to whichever pool drained first rather than camping
        // on its original choice.
        let pinned = match self.config.placement {
            Placement::QueryHash => {
                let full = keyed
                    .expect("QueryHash placement always computes the key")
                    .full;
                Some((full % self.pools.len() as u64) as usize)
            }
            Placement::LeastLoaded => None,
        };
        loop {
            let pool = pinned.unwrap_or_else(|| self.place(&problem));
            if self.over_high_water() {
                if !backpressure {
                    self.rejections.fetch_add(1, Ordering::AcqRel);
                    if let Some(tel) = &tel {
                        tel.event(rankhow_obs::Event::Rejected);
                    }
                    return SolveHandle::rejected();
                }
                self.park(pool);
                continue;
            }
            // The scheduler stamps the `placed` event itself, before the
            // entry is worker-visible — recording it here after the Ok
            // would race the worker's `dequeued` into the trace.
            opts.placed_pool = tel.as_ref().map(|_| pool);
            match self.pools[pool].try_spawn_with(problem, config, self.config.queue_cap, opts) {
                Ok(handle) => {
                    self.admissions.fetch_add(1, Ordering::AcqRel);
                    if let Some(tel) = &tel {
                        tel.metrics
                            .set_pool_depth(pool, self.pools[pool].load().queued as u64);
                    }
                    self.auto_tick();
                    return handle;
                }
                Err(refused) => {
                    problem = refused.problem;
                    config = refused.config;
                    opts = refused.opts;
                    if !backpressure {
                        self.rejections.fetch_add(1, Ordering::AcqRel);
                        if let Some(tel) = &tel {
                            tel.event(rankhow_obs::Event::Rejected);
                        }
                        return SolveHandle::rejected();
                    }
                    self.park(pool);
                }
            }
        }
    }

    /// The completion hook an admitted cache-eligible job carries: runs
    /// on the finalizing worker (before joiners wake) and records the
    /// result, so a sequential re-submit of the same query after `join`
    /// is guaranteed to hit.
    fn record_hook(
        cache: Arc<SolutionCache>,
        problem: Arc<OptProblem>,
        query: QueryKey,
    ) -> rankhow_serve::CompletionHook {
        Arc::new(move |solution, artifacts| {
            cache.record(&query, &problem, solution, artifacts.map(Arc::new));
        })
    }

    /// Bounded wait for a backpressured spawner: park on the placed
    /// pool's capacity condvar until one of *its* jobs completes (any
    /// completion lowers both the pool count and the global count), or
    /// plain-sleep one poll interval when the placed pool is idle and
    /// only the global mark binds — a completion on another pool cannot
    /// wake the condvar, and without the sleep the retry loop would
    /// busy-spin.
    fn park(&self, pool: usize) {
        let live = self.pools[pool].live_jobs();
        if live > 0 {
            self.pools[pool].wait_capacity(live, BACKPRESSURE_POLL);
        } else {
            std::thread::sleep(BACKPRESSURE_POLL);
        }
    }

    /// Which pool a query lands on under the configured placement.
    /// Exposed so callers (and tests) can predict routing.
    pub fn place(&self, problem: &OptProblem) -> usize {
        match self.config.placement {
            Placement::QueryHash => (key::fingerprint(problem) % self.pools.len() as u64) as usize,
            Placement::LeastLoaded => self
                .pools
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.load().score(), *i))
                .map(|(i, _)| i)
                .unwrap_or(0),
        }
    }

    /// Whether the router-wide live-job count has reached the global
    /// high-water mark. Approximate under concurrent spawners — the
    /// mark is a shedding threshold, not an exact semaphore.
    fn over_high_water(&self) -> bool {
        let mark = self.config.global_cap;
        mark > 0 && self.pools.iter().map(Scheduler::live_jobs).sum::<usize>() >= mark
    }

    /// One rebalancing load tick: repeatedly migrate the youngest
    /// not-yet-started job from the deepest run queue to the shallowest
    /// until the depths differ by at most one (or nothing migratable
    /// remains). Returns the number of jobs moved. Safe to call
    /// concurrently with spawns and with itself; migration never
    /// changes a job's result — an un-started job has no root state,
    /// and lane ids map onto any pool size.
    pub fn rebalance(&self) -> usize {
        if self.pools.len() < 2 {
            return 0;
        }
        let mut moved = 0usize;
        loop {
            let depths: Vec<usize> = self.pools.iter().map(|p| p.load().queued).collect();
            let (deepest, &max_depth) = depths
                .iter()
                .enumerate()
                .max_by_key(|(i, &d)| (d, usize::MAX - i))
                .expect("at least two pools");
            let (shallowest, &min_depth) = depths
                .iter()
                .enumerate()
                .min_by_key(|(i, &d)| (d, *i))
                .expect("at least two pools");
            if max_depth <= min_depth + 1 {
                break;
            }
            // The snapshot can go stale between load() and take; a miss
            // just ends the tick.
            let Some(job) = self.pools[deepest].take_unstarted() else {
                break;
            };
            self.pools[shallowest].adopt(job);
            moved += 1;
        }
        if moved > 0 {
            self.migrations.fetch_add(moved as u64, Ordering::AcqRel);
        }
        moved
    }

    fn auto_tick(&self) {
        let every = self.config.rebalance_every;
        if every > 0 && (self.tick.fetch_add(1, Ordering::AcqRel) + 1).is_multiple_of(every) {
            self.rebalance();
        }
    }

    /// A point-in-time observability snapshot: per-pool engine stats
    /// and loads, the merged aggregate, the admission counters, and the
    /// solution-cache counters.
    pub fn stats(&self) -> RouterStats {
        let pools: Vec<PoolSnapshot> = self
            .pools
            .iter()
            .map(|p| PoolSnapshot {
                solver: p.stats(),
                load: p.load(),
                spawned: p.jobs_spawned(),
            })
            .collect();
        let mut solver = SolverStats::default();
        for pool in &pools {
            solver.merge(&pool.solver);
        }
        let cache = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        // Exact hits never reach a pool, so no per-pool row carries
        // them — fold the router-side counters into the aggregate here.
        // Near hits already arrive through the merged per-job stats of
        // the warm-seeded solves (`cache_near_hits`), so only the
        // router-side view is added for misses/evictions.
        solver.cache_exact_hits += cache.exact_hits as usize;
        solver.cache_misses += cache.misses as usize;
        solver.cache_evictions += cache.evictions as usize;
        RouterStats {
            pools,
            solver,
            admissions: self.admissions.load(Ordering::Acquire),
            rejections: self.rejections.load(Ordering::Acquire),
            migrations: self.migrations.load(Ordering::Acquire),
            cache,
        }
    }
}

/// SYM-GD chains route through the same pools. Cell solves are
/// *continuations* of an already-admitted query, not new external
/// traffic, so they always use backpressure: a full queue delays the
/// chain instead of shedding it mid-flight (a rejected cell would
/// corrupt the chain's warm-start sequence). Query-hash placement keeps
/// every cell of one chain on one pool — the chain's warm LP
/// workspaces stay hot.
impl CellScheduler for Router {
    fn solve_cell(
        &self,
        problem: &Arc<OptProblem>,
        config: SolverConfig,
    ) -> Result<Solution, SolverError> {
        self.submit(Arc::clone(problem), config, true).join()
    }
}
