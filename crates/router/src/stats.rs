//! Router observability: per-pool and aggregate serving statistics.

use crate::cache::CacheStats;
use rankhow_core::SolverStats;
use rankhow_serve::PoolLoad;

/// One pool's slice of a [`RouterStats`] snapshot.
#[derive(Clone, Debug)]
pub struct PoolSnapshot {
    /// Aggregate engine statistics over the pool's *completed* jobs
    /// (`solver.jobs` counts them).
    pub solver: SolverStats,
    /// The pool's load at snapshot time: run-queue depth, in-flight
    /// jobs, worker count.
    pub load: PoolLoad,
    /// Jobs ever spawned directly on this pool (adopted migrants count
    /// on their origin pool).
    pub spawned: u64,
}

/// A point-in-time snapshot of the whole router (see
/// [`Router::stats`](crate::Router::stats)). Pools run concurrently, so
/// the per-pool rows are each internally consistent but the snapshot as
/// a whole is advisory — the numbers feed dashboards and placement
/// debugging, not control flow.
#[derive(Clone, Debug)]
pub struct RouterStats {
    /// One row per pool, in pool-index order.
    pub pools: Vec<PoolSnapshot>,
    /// Engine statistics merged across every pool's completed jobs.
    pub solver: SolverStats,
    /// Spawns admitted to some pool (including delayed-then-admitted
    /// backpressure spawns and internal cell-chain jobs).
    pub admissions: u64,
    /// Spawns shed by admission control
    /// ([`SolveStatus::Rejected`](rankhow_core::SolveStatus)).
    pub rejections: u64,
    /// Queued jobs migrated between pools by rebalancing load ticks.
    pub migrations: u64,
    /// Re-admissions under the router's
    /// [`RetryPolicy`](crate::RetryPolicy): admission-shed spawns
    /// retried after backoff plus `Failed` jobs respawned by the
    /// delivery hook. Not admissions — a query admitted once and
    /// retried twice counts one admission and two retries.
    pub retries: u64,
    /// Queries whose *final* delivery was
    /// [`SolveStatus::Failed`](rankhow_core::SolveStatus) — the retry
    /// policy (possibly `max_retries == 0`) ran out without a
    /// non-failed result.
    pub retries_exhausted: u64,
    /// Queries delivered with a non-`Failed` result (`Err` deliveries —
    /// proved infeasibility — count too; cache exact hits never reach a
    /// pool and count in neither). The admission ledger reconciles as
    /// `admissions == completions + retries_exhausted` once all handles
    /// join, the one caveat being a queued job dropped mid-migration
    /// during shutdown.
    pub completions: u64,
    /// Pools tripped into quarantine by the sliding failure window
    /// ([`RouterConfig::quarantine_after`](crate::RouterConfig)); each
    /// trip counts once, re-trips after cooldown recovery count again.
    pub quarantines: u64,
    /// Cross-query solution cache counters (all zero when the cache is
    /// disabled). Exact hits also appear in `solver.cache_exact_hits`,
    /// and near hits in `solver.cache_near_hits` via the per-job stats
    /// of completed warm-seeded solves.
    pub cache: CacheStats,
}

impl RouterStats {
    /// Total live jobs across all pools at snapshot time (the quantity
    /// the global high-water mark bounds).
    pub fn live_jobs(&self) -> usize {
        self.pools
            .iter()
            .map(|p| p.load.queued + p.load.in_flight)
            .sum()
    }

    /// Total run-queue depth (not-yet-started jobs) across pools.
    pub fn queued_jobs(&self) -> usize {
        self.pools.iter().map(|p| p.load.queued).sum()
    }

    /// Serialize the whole snapshot as a JSON object — the `router`
    /// section of `--stats-json` (schema documented in README
    /// § Observability). Shares the serializers of the parts:
    /// [`SolverStats::to_json`] and [`CacheStats::to_json`].
    pub fn to_json(&self) -> String {
        let mut pools = rankhow_obs::json::Arr::new();
        for (i, p) in self.pools.iter().enumerate() {
            let mut row = rankhow_obs::json::Obj::new();
            row.field_u64("pool", i as u64);
            row.field_u64("spawned", p.spawned);
            row.field_u64("queued", p.load.queued as u64);
            row.field_u64("in_flight", p.load.in_flight as u64);
            row.field_u64("workers", p.load.workers as u64);
            row.field_raw("solver", &p.solver.to_json());
            pools.push_raw(&row.finish());
        }
        let mut obj = rankhow_obs::json::Obj::new();
        obj.field_u64("admissions", self.admissions);
        obj.field_u64("rejections", self.rejections);
        obj.field_u64("migrations", self.migrations);
        obj.field_u64("retries", self.retries);
        obj.field_u64("retries_exhausted", self.retries_exhausted);
        obj.field_u64("completions", self.completions);
        obj.field_u64("quarantines", self.quarantines);
        obj.field_raw("solver", &self.solver.to_json());
        obj.field_raw("cache", &self.cache.to_json());
        obj.field_raw("pools", &pools.finish());
        obj.finish()
    }
}
