//! # RankHow sharded serving: scheduler pools behind a load-aware router
//!
//! One [`Scheduler`](rankhow_serve::Scheduler) multiplexes many queries
//! over one worker pool — the right shape for one NUMA node or one
//! machine. Serving heavy multi-user traffic needs the next layer up:
//! several independent pools, a placement decision per query, shedding
//! when the run queues saturate, and rebalancing when load skews. That
//! layer is this crate:
//!
//! ```text
//!                          Router
//!         placement ─ admission ─ rebalancing ─ stats
//!        ┌──────────────┬──────────────┬──────────────┐
//!    Scheduler      Scheduler      Scheduler        … P pools
//!    (workers)      (workers)      (workers)
//!        │              │              │
//!     SolveJob       SolveJob       SolveJob         … reentrant jobs
//! ```
//!
//! - [`Router::spawn`] keeps the scheduler's `spawn -> SolveHandle`
//!   surface; [`RouterConfig`] picks the shape (pool count, workers per
//!   pool, caps, policy).
//! - [`Placement::QueryHash`] pins a query (and every cell of its
//!   SYM-GD chain) to a deterministic pool;
//!   [`Placement::LeastLoaded`] routes to the pool with the smallest
//!   run-queue-plus-in-flight score.
//! - Admission control bounds each pool's outstanding jobs — queued
//!   plus in-flight ([`RouterConfig::queue_cap`]) — under a global
//!   high-water mark on the same quantity
//!   ([`RouterConfig::global_cap`]). Over-capacity spawns *complete* —
//!   immediately, with
//!   [`SolveStatus::Rejected`](rankhow_core::SolveStatus) and no
//!   incumbent — or block when [`RouterConfig::backpressure`] is set.
//!   The serving surface never panics or errors on load.
//! - [`Router::rebalance`] migrates not-yet-started jobs from the
//!   deepest run queue to the shallowest. The engine invariant that
//!   makes this free: an un-stepped
//!   [`SolveJob`](rankhow_core::SolveJob) has no root state, so only
//!   the queue entry moves.
//! - [`Router::stats`] aggregates per-pool
//!   [`SolverStats`](rankhow_core::SolverStats), queue depths, and the
//!   admission/rejection/migration counters into a [`RouterStats`]
//!   snapshot.
//! - A **cross-query solution cache** sits in front of placement
//!   ([`RouterConfig::cache`], on by default): a query whose canonical
//!   fingerprint ([`query_key`]) matches a cached proved-optimal solve
//!   completes immediately without touching a pool, and a query that
//!   differs only in its weight constraints warm-starts from the cached
//!   incumbent, LP basis, and (containment-proved) root facts. Hit,
//!   miss, and eviction counters land in [`RouterStats::cache`].
//!
//! # Fault tolerance
//!
//! The router assumes pools can *fail* — a job's step panics, a worker
//! thread dies, a whole pool exhausts its supervision respawn cap —
//! and keeps the `spawn -> SolveHandle -> join` contract anyway:
//!
//! - A [`RetryPolicy`] ([`RouterConfig::retry`], off by default)
//!   re-admits both failure classes behind the caller's handle:
//!   admission-shed spawns re-place after an exponential backoff on the
//!   submitting thread, and jobs that complete
//!   [`SolveStatus::Failed`](rankhow_core::SolveStatus) respawn onto a
//!   healthy pool, warm-started from the failed attempt's incumbent.
//!   Retries exhausted, the handle completes with the `Failed` (or
//!   `Rejected`) result — it never hangs.
//! - Quarantine ([`RouterConfig::quarantine_after`]): a pool whose
//!   recent deliveries keep failing is benched for a cooldown — new
//!   queries and respawns route around it, then it re-enters placement
//!   with a clean window. Dead pools (every worker gone, respawn cap
//!   spent) are skipped unconditionally; if *all* pools die, spawns
//!   complete immediately with `Failed`.
//! - The admission ledger in [`RouterStats`] reconciles:
//!   `admissions == completions + retries_exhausted` once all handles
//!   join, with `retries` and `quarantines` counting the recovery work
//!   on top.
//!
//! Routed solves are bit-identical to single-scheduler solves: the
//! router decides *where* a job runs, never *how* — with one worker per
//! pool, every placement policy returns exactly the errors one
//! scheduler would. The cache keeps that bar: an exact hit returns the
//! stored solution bit for bit, and a near hit only ever *adds* root
//! information the engine re-validates, so the certified bracket
//! (`error ≤ C* ≤ certified_error`) of a cached or warm-seeded solve
//! always overlaps the cold solve's bracket.
//!
//! ```
//! use rankhow_core::{OptProblem, SolverConfig};
//! use rankhow_router::{Router, RouterConfig};
//! use rankhow_data::Dataset;
//! use rankhow_ranking::GivenRanking;
//!
//! let data = Dataset::from_rows(
//!     vec!["A1".into(), "A2".into(), "A3".into()],
//!     vec![vec![3.0, 2.0, 8.0], vec![4.0, 1.0, 15.0], vec![1.0, 1.0, 14.0]],
//! )
//! .unwrap();
//! let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
//! let problem = OptProblem::new(data, pi).unwrap();
//!
//! let router = Router::new(RouterConfig {
//!     pools: 2,
//!     threads_per_pool: 1,
//!     ..RouterConfig::default()
//! });
//! let handle = router.spawn(problem, SolverConfig::default());
//! let solution = handle.join().unwrap();
//! assert_eq!(solution.error, 0);
//! assert!(solution.optimal);
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
mod key;
mod router;
mod stats;

pub use cache::CacheStats;
pub use config::{Placement, RetryPolicy, RouterConfig};
pub use key::{fingerprint, query_key, QueryKey};
pub use router::Router;
pub use stats::{PoolSnapshot, RouterStats};
