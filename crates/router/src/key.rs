//! Canonical query fingerprinting: the cache key and placement hash.
//!
//! One FNV-1a pass over the instance yields two keys
//! ([`QueryKey`]): `shape` covers everything *except* the weight
//! constraints (dimensions, given ranking, feature bits, tolerances,
//! objective, position windows) and `full` extends it over the
//! constraint rows. Two queries with equal `full` keys are candidates
//! for an exact cache hit; equal `shape` but different `full` marks a
//! *near* hit — same instance, different weight-constraint region —
//! the case the cache answers with a root warm start instead of a
//! stored solution. Hashes are advisory: the cache re-verifies every
//! hit by structural comparison before using it, so a 64-bit collision
//! costs a missed hit, never a wrong answer.

use rankhow_core::{ErrorMeasure, OptProblem};

/// The two-level canonical key of one query (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryKey {
    /// Hash of the instance shape: n, m, given ranking, feature bits,
    /// tolerances, objective, position windows — everything but the
    /// weight constraints.
    pub shape: u64,
    /// `shape` extended over the weight-constraint rows: the exact-hit
    /// identity of the query.
    pub full: u64,
}

const PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(hash: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *hash = (*hash ^ u64::from(byte)).wrapping_mul(PRIME);
    }
}

/// Compute both key levels in one pass over the instance. Stable across
/// runs and processes (no pointer or `RandomState` input), so both
/// query-hash placement and cache keys are reproducible. Cost is one
/// walk over the feature matrix — noise next to the thousands of LP
/// solves a query triggers, and paid **once** per admission: the router
/// reuses the key for placement, the cache lookup, and the queued-job
/// fingerprint.
pub fn query_key(problem: &OptProblem) -> QueryKey {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    mix(&mut hash, problem.n() as u64);
    mix(&mut hash, problem.m() as u64);
    for position in problem.given.positions() {
        mix(&mut hash, position.map_or(u64::MAX, u64::from));
    }
    for j in 0..problem.m() {
        for &value in problem.data.col(j) {
            mix(&mut hash, value.to_bits());
        }
    }
    mix(&mut hash, problem.tol.eps.to_bits());
    mix(&mut hash, problem.tol.eps1.to_bits());
    mix(&mut hash, problem.tol.eps2.to_bits());
    mix(&mut hash, problem.tol.tau.to_bits());
    mix(
        &mut hash,
        match problem.objective {
            ErrorMeasure::Position => 0,
            ErrorMeasure::KendallTau => 1,
            ErrorMeasure::TopWeighted => 2,
        },
    );
    for (tuple, (lo, hi)) in problem.positions.iter() {
        mix(&mut hash, tuple as u64);
        mix(&mut hash, u64::from(lo));
        mix(&mut hash, u64::from(hi));
    }
    let shape = hash;
    mix(&mut hash, problem.constraints.len() as u64);
    for (coefs, rhs) in problem.constraints.rows() {
        mix(&mut hash, coefs.len() as u64);
        for &(j, c) in coefs {
            mix(&mut hash, j as u64);
            mix(&mut hash, c.to_bits());
        }
        mix(&mut hash, rhs.to_bits());
    }
    QueryKey { shape, full: hash }
}

/// The full canonical fingerprint of one query — what query-hash
/// placement and the cross-query cache key on. Equivalent to
/// [`query_key`]`(problem).full`.
pub fn fingerprint(problem: &OptProblem) -> u64 {
    query_key(problem).full
}

/// Structural shape equality: every [`QueryKey::shape`] component
/// compared bit for bit. The cache runs this behind a shape-hash match
/// to rule out 64-bit collisions before trusting a near hit.
pub(crate) fn same_shape(a: &OptProblem, b: &OptProblem) -> bool {
    a.n() == b.n()
        && a.m() == b.m()
        && a.given.positions() == b.given.positions()
        && a.tol.eps.to_bits() == b.tol.eps.to_bits()
        && a.tol.eps1.to_bits() == b.tol.eps1.to_bits()
        && a.tol.eps2.to_bits() == b.tol.eps2.to_bits()
        && a.tol.tau.to_bits() == b.tol.tau.to_bits()
        && a.objective == b.objective
        && a.positions == b.positions
        && (0..a.m()).all(|j| {
            let (ca, cb) = (a.data.col(j), b.data.col(j));
            ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

/// Structural constraint equality, bit for bit — [`same_shape`] plus
/// this is full query identity (the exact-hit verification).
pub(crate) fn same_constraints(a: &OptProblem, b: &OptProblem) -> bool {
    a.constraints.len() == b.constraints.len()
        && a.constraints.rows().zip(b.constraints.rows()).all(
            |((coefs_a, rhs_a), (coefs_b, rhs_b))| {
                rhs_a.to_bits() == rhs_b.to_bits()
                    && coefs_a.len() == coefs_b.len()
                    && coefs_a
                        .iter()
                        .zip(coefs_b)
                        .all(|((ja, ca), (jb, cb))| ja == jb && ca.to_bits() == cb.to_bits())
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_core::WeightConstraints;
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn base_problem() -> OptProblem {
        let data = Dataset::from_rows(
            vec!["A1".into(), "A2".into(), "A3".into()],
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
        )
        .unwrap();
        let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
        OptProblem::new(data, pi).unwrap()
    }

    #[test]
    fn identical_problems_share_both_keys() {
        let (a, b) = (base_problem(), base_problem());
        assert_eq!(query_key(&a), query_key(&b));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(same_shape(&a, &b));
        assert!(same_constraints(&a, &b));
    }

    #[test]
    fn constraints_change_full_but_not_shape() {
        let a = base_problem();
        let b = base_problem()
            .with_constraints(WeightConstraints::none().max_weight(0, 0.5))
            .unwrap();
        let (ka, kb) = (query_key(&a), query_key(&b));
        assert_eq!(ka.shape, kb.shape, "constraints are outside the shape");
        assert_ne!(ka.full, kb.full, "constraints are inside the full key");
        assert!(same_shape(&a, &b));
        assert!(!same_constraints(&a, &b));
    }

    #[test]
    fn data_change_shifts_the_shape() {
        let a = base_problem();
        let data = Dataset::from_rows(
            vec!["A1".into(), "A2".into(), "A3".into()],
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 2.0, 14.0],
            ],
        )
        .unwrap();
        let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
        let b = OptProblem::new(data, pi).unwrap();
        assert_ne!(query_key(&a).shape, query_key(&b).shape);
        assert!(!same_shape(&a, &b));
    }
}
