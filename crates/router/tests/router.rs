//! Cross-validation of the sharded router against a single scheduler,
//! plus the serving semantics the router promises: placement-invariant
//! results, prompt load shedding with `SolveStatus::Rejected`,
//! rebalancing migration, blocking backpressure, and SYM-GD chain
//! routing.

// One copy of the instance-construction techniques, shared with the
// serve suite (the blocker/parity semantics must not silently diverge
// between the two layers).
#[path = "../../serve/tests/support/mod.rs"]
mod support;

use proptest::prelude::*;
use rankhow_core::{OptProblem, SolveStatus, SolverConfig, SymGd, SymGdConfig};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;
use rankhow_router::{Placement, Router, RouterConfig};
use rankhow_serve::Scheduler;
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{blocker_config, blocker_problem, build, light_problem, small_instance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N queries routed over P ∈ {1, 2, 4} pools — under *both*
    /// placement policies — return bit-identical optimal errors to the
    /// same queries on a single scheduler, and every returned weight
    /// vector realizes its claimed error.
    #[test]
    fn routed_queries_match_single_scheduler(insts in prop::collection::vec(small_instance(), 4..6)) {
        let problems: Vec<Arc<OptProblem>> =
            insts.iter().filter_map(build).map(Arc::new).collect();
        if problems.len() < 4 {
            return Err(TestCaseError::reject("invalid ranking"));
        }
        let single = Scheduler::new(1);
        let baseline: Vec<u64> = problems
            .iter()
            .map(|p| {
                let sol = single
                    .spawn_shared(Arc::clone(p), SolverConfig::default())
                    .join()
                    .expect("feasible unconstrained instance");
                assert!(sol.optimal);
                sol.error
            })
            .collect();
        for &pools in &[1usize, 2, 4] {
            for placement in [Placement::QueryHash, Placement::LeastLoaded] {
                let router = Router::new(RouterConfig {
                    pools,
                    threads_per_pool: 1,
                    placement,
                    // Integer-grid instances can repeat across the
                    // generated batch; this test pins per-query
                    // admission and job counts, so every duplicate must
                    // actually run (cache parity has its own suite).
                    cache: false,
                    ..RouterConfig::default()
                });
                let handles: Vec<_> = problems
                    .iter()
                    .map(|p| router.spawn_shared(Arc::clone(p), SolverConfig::default()))
                    .collect();
                for ((handle, problem), &expected) in
                    handles.into_iter().zip(&problems).zip(&baseline)
                {
                    let sol = handle.join().expect("feasible unconstrained instance");
                    prop_assert!(sol.optimal, "routed job must close the tree");
                    prop_assert_eq!(
                        sol.error, expected,
                        "{:?} over {} pools diverged from the single scheduler",
                        placement, pools
                    );
                    prop_assert_eq!(
                        problem.evaluate(&sol.weights), sol.error,
                        "weights do not realize the error"
                    );
                }
                let stats = router.stats();
                prop_assert_eq!(stats.admissions as usize, problems.len());
                prop_assert_eq!(stats.rejections, 0);
                prop_assert_eq!(
                    stats.solver.jobs, problems.len(),
                    "aggregate stats count completed jobs across pools"
                );
            }
        }
    }
}

#[test]
fn full_queue_sheds_promptly_with_rejected_and_no_incumbent() {
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        queue_cap: 2,
        ..RouterConfig::default()
    });
    // Two long-running jobs fill the pool's run queue to the cap…
    let occupants: Vec<_> = (0..2)
        .map(|twist| router.spawn(blocker_problem(12, 6, twist), blocker_config()))
        .collect();
    // …so the third spawn must be shed: it completes immediately with
    // a bounded Rejected status, never a panic or an error.
    let t0 = Instant::now();
    let shed = router.spawn(blocker_problem(12, 6, 9), SolverConfig::default());
    assert!(shed.is_finished(), "a shed spawn is complete on arrival");
    assert!(
        shed.best_so_far().is_none(),
        "a shed query has no incumbent"
    );
    shed.cancel(); // no-ops on a rejected handle
    shed.deadline(Duration::from_millis(1));
    let sol = shed.join().expect("rejection is a status, not an error");
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "shedding must be prompt, took {:?}",
        t0.elapsed()
    );
    assert_eq!(sol.status, SolveStatus::Rejected);
    assert!(sol.status.is_bounded());
    assert!(!sol.optimal);
    assert!(sol.weights.is_empty(), "no incumbent to report");
    assert_eq!(sol.error, u64::MAX, "the no-incumbent sentinel");
    let stats = router.stats();
    assert_eq!(stats.admissions, 2);
    assert_eq!(stats.rejections, 1);
    // Cancel the occupants so the drop path stays fast.
    for handle in &occupants {
        handle.cancel();
    }
}

#[test]
fn global_high_water_mark_sheds_across_pools() {
    let router = Router::new(RouterConfig {
        pools: 2,
        threads_per_pool: 1,
        queue_cap: 0,  // per-pool unbounded:
        global_cap: 1, // the *global* mark does the shedding
        placement: Placement::LeastLoaded,
        ..RouterConfig::default()
    });
    let first = router.spawn(blocker_problem(12, 6, 1), blocker_config());
    // The other pool is empty, but the router-wide live count is at the
    // high-water mark: shed regardless of per-pool headroom.
    let shed = router.spawn(blocker_problem(12, 6, 2), SolverConfig::default());
    let sol = shed.join().expect("rejection is a status, not an error");
    assert_eq!(sol.status, SolveStatus::Rejected);
    assert_eq!(router.stats().rejections, 1);
    first.cancel();
}

#[test]
fn rebalance_migrates_queued_jobs_to_the_shallow_pool() {
    let router = Router::new(RouterConfig {
        pools: 2,
        threads_per_pool: 1,
        placement: Placement::QueryHash,
        rebalance_every: 0, // explicit ticks only
        ..RouterConfig::default()
    });
    // Six copies of one query: query-hash placement pins them all to
    // the same pool, whose lone worker is parked in the first job's
    // root setup — the other five sit unstarted in its run queue.
    let problem = Arc::new(blocker_problem(12, 6, 3));
    let pinned = router.place(&problem);
    let handles: Vec<_> = (0..6)
        .map(|_| router.spawn_shared(Arc::clone(&problem), blocker_config()))
        .collect();
    let before = router.stats();
    assert_eq!(
        before.pools[pinned].load.queued + before.pools[pinned].load.in_flight,
        6,
        "query-hash placement pins every copy to pool {pinned}"
    );
    let moved = router.rebalance();
    assert!(
        moved >= 2,
        "a 6-vs-0 skew must migrate at least two queued jobs, moved {moved}"
    );
    let after = router.stats();
    assert_eq!(after.migrations, moved as u64);
    let other = 1 - pinned;
    assert!(
        after.pools[other].load.queued + after.pools[other].load.in_flight >= 2,
        "the shallow pool adopted the migrants"
    );
    // Migration must not change any result: cancel the blockers and
    // every handle still resolves through its (possibly new) pool.
    for handle in &handles {
        handle.cancel();
    }
    for handle in handles {
        match handle.join() {
            Ok(sol) => assert!(
                sol.status == SolveStatus::Cancelled || sol.status == SolveStatus::Optimal,
                "unexpected status {:?}",
                sol.status
            ),
            // Cancelled before any incumbent: the engine's no-incumbent rule.
            Err(rankhow_core::SolverError::Infeasible) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn backpressure_blocks_instead_of_shedding() {
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 2,
        queue_cap: 1,
        backpressure: true,
        // Three sequential joins of one query: with the cache on, the
        // repeats would complete from the cache without being admitted —
        // this test is about backpressure admission, so disable it.
        cache: false,
        ..RouterConfig::default()
    });
    // Light queries: each spawn after the first blocks until the pool
    // drains, so all three are admitted and none is rejected.
    let problem = Arc::new(light_problem());
    let mut errors = Vec::new();
    for _ in 0..3 {
        let handle = router.spawn_shared(Arc::clone(&problem), SolverConfig::default());
        errors.push(handle.join().expect("feasible instance").error);
    }
    assert_eq!(errors, vec![0, 0, 0]);
    let stats = router.stats();
    assert_eq!(stats.admissions, 3);
    assert_eq!(stats.rejections, 0);
}

#[test]
fn backpressure_under_the_global_mark_unblocks_when_another_pool_drains() {
    // The placed pool is idle; the global mark is held by a job on the
    // *other* pool — the spawner must wait boundedly (not spin forever,
    // not reject) and admit as soon as that job completes.
    let router = Arc::new(Router::new(RouterConfig {
        pools: 2,
        threads_per_pool: 1,
        queue_cap: 0,
        global_cap: 1,
        placement: Placement::LeastLoaded,
        backpressure: true,
        ..RouterConfig::default()
    }));
    let blocker = router.spawn(blocker_problem(12, 6, 4), blocker_config());
    let light = Arc::new(light_problem());
    let spawner = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || {
            router
                .spawn_shared(light, SolverConfig::default())
                .join()
                .expect("feasible instance")
        })
    };
    // Give the spawner time to reach the blocked state, then release
    // the global slot. (The block-state assert is conditional on the
    // blocker still running — on a fast machine it may already have
    // finished, in which case the spawner was legitimately admitted.)
    std::thread::sleep(Duration::from_millis(50));
    if !blocker.is_finished() {
        assert!(!spawner.is_finished(), "spawner must block on the mark");
    }
    blocker.cancel();
    let sol = spawner.join().expect("spawner thread");
    assert_eq!(sol.error, 0);
    let stats = router.stats();
    assert_eq!(stats.admissions, 2);
    assert_eq!(stats.rejections, 0, "backpressure never sheds");
}

#[test]
fn symgd_chain_routes_through_pools_and_matches_blocking_path() {
    let n = 24;
    let hidden = [0.55, 0.35, 0.1];
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..3)
                .map(|j| (((i * (7 + 3 * j) + j) % n) as f64) / n as f64)
                .collect()
        })
        .collect();
    let scores: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().zip(hidden.iter()).map(|(a, w)| a * w).sum())
        .collect();
    let names = (0..3).map(|j| format!("A{j}")).collect();
    let data = Dataset::from_rows(names, rows).unwrap();
    let given = GivenRanking::from_scores(&scores, 6, 0.0).unwrap();
    let problem = Arc::new(OptProblem::new(data, given).unwrap());
    let seed = [0.5, 0.4, 0.1];

    let config = SymGdConfig {
        threads: 1,
        ..SymGdConfig::default()
    };
    let blocking = SymGd::with_config(config.clone())
        .solve(&problem, &seed)
        .unwrap();
    // Two pools, one worker each; a queue cap of 1 additionally proves
    // cell jobs use backpressure (they delay, never shed) even though
    // the router's external policy is shedding.
    let router = Router::new(RouterConfig {
        pools: 2,
        threads_per_pool: 1,
        queue_cap: 1,
        backpressure: false,
        ..RouterConfig::default()
    });
    let routed = SymGd::with_config(config)
        .solve_on(&router, &problem, &seed)
        .unwrap();
    assert_eq!(routed.error, blocking.error, "routed chain diverged");
    assert_eq!(
        routed.weights, blocking.weights,
        "single-worker determinism"
    );
    assert_eq!(routed.iterations, blocking.iterations);
    let stats = router.stats();
    assert_eq!(stats.admissions as usize, routed.iterations);
    assert_eq!(stats.rejections, 0, "cell jobs are never shed");
    assert_eq!(routed.error, 0, "seeded near the hidden weights");
}

#[test]
fn stats_snapshot_aggregates_pools() {
    let router = Router::new(RouterConfig {
        pools: 3,
        threads_per_pool: 1,
        placement: Placement::LeastLoaded,
        // Six copies of one query must all become pool jobs for the
        // per-pool sums below; a cache hit would answer some of them
        // before any pool saw them.
        cache: false,
        ..RouterConfig::default()
    });
    let problem = Arc::new(light_problem());
    let handles: Vec<_> = (0..6)
        .map(|_| router.spawn_shared(Arc::clone(&problem), SolverConfig::default()))
        .collect();
    for handle in handles {
        handle.join().expect("feasible instance");
    }
    let stats = router.stats();
    assert_eq!(stats.pools.len(), 3);
    assert_eq!(stats.admissions, 6);
    assert_eq!(
        stats.solver.jobs, 6,
        "completed jobs aggregate across pools"
    );
    assert_eq!(
        stats.pools.iter().map(|p| p.solver.jobs).sum::<usize>(),
        6,
        "per-pool rows sum to the aggregate"
    );
    assert_eq!(
        stats.pools.iter().map(|p| p.spawned).sum::<u64>(),
        6,
        "every admission was spawned on some pool"
    );
    assert_eq!(stats.live_jobs(), 0, "all jobs completed");
}
