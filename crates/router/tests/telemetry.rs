//! Full-stack telemetry contracts for the serving path: the flight
//! recorder sees a query's whole router → scheduler → engine journey in
//! order, latency accounting matches completed-query counts across the
//! exact-hit and rejection fast paths, the `RouterConfig::telemetry`
//! gate silences exactly the router layer, and — the load-bearing
//! invariant — attaching telemetry never changes certified answers, at
//! any pool/thread shape.

// The shared fixture module ships helpers for the blocker-based
// admission tests too; this suite only needs a subset.
#[allow(dead_code)]
#[path = "../../serve/tests/support/mod.rs"]
mod support;

use proptest::prelude::*;
use rankhow_core::{Solution, SolveStatus, SolverConfig};
use rankhow_obs::{MetricsRegistry, SolveTelemetry};
use rankhow_router::{Router, RouterConfig};
use std::sync::Arc;
use support::{blocker_config, blocker_problem, build, light_problem, small_instance};

fn telemetry() -> Arc<SolveTelemetry> {
    Arc::new(
        SolveTelemetry::new(Arc::new(MetricsRegistry::new()))
            .with_recorder(4096)
            .with_phase_sample(1),
    )
}

fn with_telemetry(tel: &Arc<SolveTelemetry>) -> SolverConfig {
    SolverConfig {
        telemetry: Some(Arc::clone(tel)),
        ..SolverConfig::default()
    }
}

fn event_names(tel: &SolveTelemetry) -> Vec<&'static str> {
    tel.recorder
        .as_ref()
        .expect("recorder attached")
        .drain("test")
        .events
        .iter()
        .map(|e| e.event.name())
        .collect()
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn trace_covers_the_whole_solve_path_in_order() {
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        ..RouterConfig::default()
    });
    let tel = telemetry();
    let sol = router
        .spawn_shared(Arc::new(light_problem()), with_telemetry(&tel))
        .join()
        .expect("feasible instance");
    assert!(sol.optimal);

    let names = event_names(&tel);
    // The serving layers appear in admission order, engine work in
    // between, completion last.
    let pos = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("missing event {name}: {names:?}"))
    };
    assert_eq!(pos("admitted"), 0, "admission is the first event");
    assert!(pos("admitted") < pos("placed"));
    assert!(pos("placed") < pos("dequeued"));
    assert!(pos("dequeued") < pos("root_init"));
    assert!(pos("root_init") < pos("completed"));
    assert_eq!(
        names.last(),
        Some(&"completed"),
        "completion closes the trace"
    );
    assert_eq!(names.iter().filter(|n| **n == "completed").count(), 1);

    // One query: one latency, one queue wait, one cache lookup (the
    // default-on cache missed), and a sighted pool-depth gauge.
    let m = &tel.metrics;
    assert_eq!(m.latency.snapshot().count, 1);
    assert_eq!(m.queue_wait.snapshot().count, 1);
    assert_eq!(m.cache_lookup.snapshot().count, 1);
    assert_eq!(m.pool_depths().len(), 1);
    // Queue wait and end-to-end latency measure from the same admission
    // stamp, so wait can never exceed latency.
    assert!(m.queue_wait.snapshot().max() <= m.latency.snapshot().max());
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn latency_counts_completed_queries_across_fast_paths() {
    // Exact cache hits complete at the router without touching a pool —
    // they still count one latency entry each.
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        ..RouterConfig::default()
    });
    let problem = Arc::new(light_problem());
    let miss_tel = telemetry();
    router
        .spawn_shared(Arc::clone(&problem), with_telemetry(&miss_tel))
        .join()
        .expect("feasible instance");
    let hit_tel = telemetry();
    let hit = router
        .spawn_shared(Arc::clone(&problem), with_telemetry(&hit_tel))
        .join()
        .expect("cached solution");
    assert_eq!(hit.stats.cache_exact_hits, 1);
    assert_eq!(hit_tel.metrics.latency.snapshot().count, 1);
    let hit_names = event_names(&hit_tel);
    assert!(hit_names.contains(&"cache_exact_hit"), "{hit_names:?}");
    assert!(hit_names.contains(&"completed"));
    assert!(
        !hit_names.contains(&"placed"),
        "an exact hit never reaches a pool: {hit_names:?}"
    );

    // Shed queries never complete: a rejected event, no latency entry.
    let tight = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        queue_cap: 1,
        cache: false,
        ..RouterConfig::default()
    });
    let blocker = tight.spawn_shared(Arc::new(blocker_problem(12, 6, 0)), blocker_config());
    let shed_tel = telemetry();
    let shed = tight
        .spawn_shared(Arc::clone(&problem), with_telemetry(&shed_tel))
        .join()
        .expect("rejection is a status, not an error");
    assert_eq!(shed.status, SolveStatus::Rejected);
    assert_eq!(shed_tel.metrics.latency.snapshot().count, 0);
    let shed_names = event_names(&shed_tel);
    assert!(shed_names.contains(&"rejected"), "{shed_names:?}");
    assert!(!shed_names.contains(&"completed"), "{shed_names:?}");
    blocker.cancel();
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn router_telemetry_flag_silences_exactly_the_router_layer() {
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        telemetry: false,
        ..RouterConfig::default()
    });
    let tel = telemetry();
    let sol = router
        .spawn_shared(Arc::new(light_problem()), with_telemetry(&tel))
        .join()
        .expect("feasible instance");
    assert!(sol.optimal);
    let names = event_names(&tel);
    for router_event in ["admitted", "placed", "cache_exact_hit", "rejected"] {
        assert!(
            !names.contains(&router_event),
            "router layer must stay silent, saw {router_event}: {names:?}"
        );
    }
    // Scheduler and engine layers still record through the handle.
    assert!(names.contains(&"dequeued"), "{names:?}");
    assert!(names.contains(&"root_init"), "{names:?}");
    assert!(names.contains(&"completed"), "{names:?}");
    let m = &tel.metrics;
    assert_eq!(m.cache_lookup.snapshot().count, 0, "router-layer histogram");
    assert!(m.pool_depths().is_empty(), "router-layer gauge");
    assert_eq!(m.latency.snapshot().count, 1, "scheduler-layer histogram");
}

/// The serve-layer cross-check for two exhaustive solves of one
/// instance: each one's incumbent error is a lower bound on the other's
/// certified error (band incumbents are interleaving-dependent, so
/// exact equality is not pinned — the bracket overlap is).
fn brackets_overlap(a: &Solution, b: &Solution) -> bool {
    a.error <= b.certified_error && b.error <= a.certified_error
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The disabled-path parity pin the instrumentation work hangs off:
    /// for random instances, at every serving shape the issue calls out
    /// (threads {1, 2, 4} × pools {1, 4}), a telemetry-carrying solve
    /// and a bare solve prove overlapping certified brackets — and at
    /// threads = 1 the answers are identical bit-for-bit.
    #[test]
    fn telemetry_on_matches_telemetry_off_at_every_shape(inst in small_instance()) {
        let Some(problem) = build(&inst) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let problem = Arc::new(problem);
        for &(threads, pools) in &[(1, 1), (2, 1), (4, 1), (1, 4), (2, 4), (4, 4)] {
            let solve = |telemetry: Option<Arc<SolveTelemetry>>| {
                let router = Router::new(RouterConfig {
                    pools,
                    threads_per_pool: threads,
                    ..RouterConfig::default()
                });
                router
                    .spawn_shared(
                        Arc::clone(&problem),
                        SolverConfig { telemetry, ..SolverConfig::default() },
                    )
                    .join()
                    .expect("feasible unconstrained instance")
            };
            let tel = telemetry();
            let observed = solve(Some(Arc::clone(&tel)));
            let bare = solve(None);
            prop_assert!(observed.optimal);
            prop_assert!(bare.optimal);
            prop_assert!(
                brackets_overlap(&observed, &bare),
                "telemetry changed the certified bracket at threads={} pools={}: \
                 on ({}, {}) vs off ({}, {})",
                threads, pools,
                observed.error, observed.certified_error,
                bare.error, bare.certified_error
            );
            if threads == 1 && pools == 1 {
                prop_assert_eq!(&observed.weights, &bare.weights);
                prop_assert_eq!(observed.error, bare.error);
                prop_assert_eq!(observed.certified_error, bare.certified_error);
            }
            if rankhow_obs::ENABLED {
                prop_assert_eq!(
                    tel.metrics.lp_solve.snapshot().count,
                    observed.stats.lp_solves as u64,
                    "lp histogram reconciles at threads={} pools={}",
                    threads, pools
                );
                prop_assert_eq!(tel.metrics.latency.snapshot().count, 1);
            }
        }
    }
}
