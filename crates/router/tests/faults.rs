//! Chaos and recovery semantics of the fault-tolerant router (runs
//! only under the `fault-inject` cargo feature; the default build
//! compiles this file to nothing): randomized seeded fault plans across
//! thread/pool shapes with bounded joins and certified-bracket safety,
//! plus deterministic retry-ledger, quarantine, and degraded-cache
//! scenarios.

#![cfg(feature = "fault-inject")]

// The shared fixture module ships helpers for the admission tests too;
// this suite only needs a slice of them.
#[allow(dead_code)]
#[path = "../../serve/tests/support/mod.rs"]
mod support;

use proptest::prelude::*;
use rankhow_core::fault::{silence_injected_panics, FaultPlan};
use rankhow_core::{OptProblem, RankHow, SolveStatus, SolverConfig, WeightConstraints};
use rankhow_router::{RetryPolicy, Router, RouterConfig, RouterStats};
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{build, light_problem, small_instance};

fn faulty_router(pools: usize, threads: usize, max_retries: u32) -> Router {
    Router::new(RouterConfig {
        pools,
        threads_per_pool: threads,
        // The ledger tests count every query through a pool: keep the
        // cache out so repeated instances aren't answered router-side.
        cache: false,
        retry: RetryPolicy {
            max_retries,
            backoff: Duration::from_millis(1),
            budget: None,
        },
        ..RouterConfig::default()
    })
}

/// `admissions == completions + retries_exhausted` — every admitted
/// query is delivered exactly once, as a success or as an exhausted
/// failure.
fn assert_ledger_reconciles(stats: &RouterStats) {
    assert_eq!(
        stats.admissions,
        stats.completions + stats.retries_exhausted,
        "admission ledger must reconcile: {} admitted, {} completed, {} exhausted",
        stats.admissions,
        stats.completions,
        stats.retries_exhausted
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Chaos: random seeded fault plans over thread {1, 2, 4} × pool
    /// {1, 4} shapes. Every handle joins (bounded — the test itself is
    /// the timeout), failures only come from plans that inject them,
    /// and every non-failed answer still satisfies the certified
    /// bracket against an undisturbed sequential solve.
    #[test]
    fn seeded_chaos_keeps_joins_bounded_and_answers_certified(
        insts in prop::collection::vec(small_instance(), 4..6),
        fault_seed in any::<u64>(),
    ) {
        silence_injected_panics();
        let problems: Vec<Arc<OptProblem>> =
            insts.iter().filter_map(build).map(Arc::new).collect();
        if problems.len() < 4 {
            return Err(TestCaseError::reject("invalid ranking"));
        }
        let sequential: Vec<rankhow_core::Solution> = problems
            .iter()
            .map(|p| {
                RankHow::with_config(SolverConfig { threads: 1, ..SolverConfig::default() })
                    .solve(p)
                    .expect("feasible unconstrained instance")
            })
            .collect();
        for (threads, pools) in [(1, 1), (1, 4), (2, 1), (2, 4), (4, 1), (4, 4)] {
            let router = faulty_router(pools, threads, 2);
            let jobs: Vec<_> = problems
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let plan = FaultPlan::seeded(fault_seed.wrapping_add(i as u64)).map(Arc::new);
                    let handle = router.spawn_shared(
                        Arc::clone(p),
                        SolverConfig { faults: plan.clone(), ..SolverConfig::default() },
                    );
                    (i, plan, handle)
                })
                .collect();
            for (i, plan, handle) in jobs {
                match handle.join() {
                    Err(_) => prop_assert!(
                        plan.as_ref().is_some_and(|p| p.forces_root_lp()),
                        "only forced root-LP plans may deliver Err"
                    ),
                    Ok(sol) if sol.status == SolveStatus::Failed => prop_assert!(
                        plan.as_ref().is_some_and(|p| p.fails_job()),
                        "only injected panics may deliver Failed"
                    ),
                    Ok(sol) => {
                        let seq = &sequential[i];
                        prop_assert!(sol.error <= sol.certified_error);
                        prop_assert!(
                            sol.error <= seq.certified_error && seq.error <= sol.certified_error,
                            "chaos bracket ({}, {}) must overlap sequential ({}, {})",
                            sol.error, sol.certified_error, seq.error, seq.certified_error
                        );
                    }
                }
            }
            assert_ledger_reconciles(&router.stats());
        }
    }
}

/// The acceptance scenario: 20% of a 20-query batch panics on its
/// first step (one of those deaths takes the worker thread with it),
/// served on 4 pools with retries. The full batch completes — zero
/// hung joins, zero lost queries — every panicked job recovers on its
/// retry (trigger-once plans), and the counters reconcile exactly.
#[test]
fn panicking_fifth_of_batch_completes_with_reconciled_ledger() {
    silence_injected_panics();
    const QUERIES: u64 = 20;
    let router = faulty_router(4, 2, 2);
    // Every 5th query fails its first attempt; one failure also kills
    // the worker thread, exercising the supervisor under load.
    let plans: Vec<Option<Arc<FaultPlan>>> = (0..QUERIES)
        .map(|i| match i {
            10 => Some(Arc::new(FaultPlan::new().kill_worker_at(1))),
            _ if i % 5 == 0 => Some(Arc::new(FaultPlan::new().panic_at(1))),
            _ => None,
        })
        .collect();
    let panics = plans
        .iter()
        .filter(|p| p.as_ref().is_some_and(|p| p.fails_job()))
        .count() as u64;
    let kills = plans
        .iter()
        .filter(|p| p.as_ref().is_some_and(|p| p.kills_worker()))
        .count() as u64;
    assert_eq!(panics, QUERIES / 5, "20% of the batch fails");
    assert_eq!(kills, 1);

    let problem = Arc::new(light_problem());
    let start = Instant::now();
    let handles: Vec<_> = plans
        .iter()
        .map(|plan| {
            router.spawn_shared(
                Arc::clone(&problem),
                SolverConfig {
                    faults: plan.clone(),
                    ..SolverConfig::default()
                },
            )
        })
        .collect();
    for handle in handles {
        // Panicked jobs recover on the retry (the plan already fired);
        // clean jobs just solve.
        let sol = handle.join().expect("feasible instance");
        assert_eq!(sol.status, SolveStatus::Optimal, "query must recover");
        assert_eq!(sol.error, 0);
    }
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "chaos joins must be bounded"
    );

    let stats = router.stats();
    assert_eq!(stats.admissions, QUERIES);
    assert_eq!(stats.completions, QUERIES, "zero lost queries");
    assert_eq!(stats.retries_exhausted, 0, "every retry recovered");
    assert_eq!(stats.retries, panics, "one respawn per injected panic");
    assert_ledger_reconciles(&stats);
    assert_eq!(stats.solver.job_panics as u64, panics);
    assert_eq!(stats.solver.worker_respawns as u64, kills);
}

/// With retries disabled, injected panics are delivered as `Failed`
/// finals and the ledger still reconciles:
/// `admissions == completions + retries_exhausted`.
#[test]
fn disabled_retries_deliver_failed_and_reconcile() {
    silence_injected_panics();
    let router = faulty_router(2, 1, 0);
    let problem = Arc::new(light_problem());
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let faults = (i % 2 == 0).then(|| Arc::new(FaultPlan::new().panic_at(1)));
            router.spawn_shared(
                Arc::clone(&problem),
                SolverConfig {
                    faults,
                    ..SolverConfig::default()
                },
            )
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let sol = handle.join().expect("failed jobs still deliver Ok");
        if i % 2 == 0 {
            assert_eq!(sol.status, SolveStatus::Failed);
        } else {
            assert_eq!(sol.status, SolveStatus::Optimal);
        }
    }
    let stats = router.stats();
    assert_eq!(stats.admissions, 6);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.retries_exhausted, 3);
    assert_eq!(stats.completions, 3);
    assert_ledger_reconciles(&stats);
}

/// Repeated failures on one pool trip its quarantine: the pool leaves
/// placement for the cooldown (queries remap to its neighbor), then
/// recovers with a clean window.
#[test]
fn failing_pool_quarantines_and_recovers_after_cooldown() {
    silence_injected_panics();
    let cooldown = Duration::from_secs(2);
    let router = Router::new(RouterConfig {
        pools: 2,
        threads_per_pool: 1,
        cache: false,
        retry: RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            budget: None,
        },
        quarantine_after: 2,
        quarantine_cooldown: cooldown,
        ..RouterConfig::default()
    });
    let problem = Arc::new(light_problem());
    // Query-hash placement pins this problem; note the healthy pin
    // before any failures land.
    let pinned = router.place(&problem);
    for _ in 0..2 {
        let sol = router
            .spawn_shared(
                Arc::clone(&problem),
                SolverConfig {
                    faults: Some(Arc::new(FaultPlan::new().panic_at(1))),
                    ..SolverConfig::default()
                },
            )
            .join()
            .expect("panicked query recovers on retry");
        assert_eq!(sol.status, SolveStatus::Optimal);
    }
    let stats = router.stats();
    assert_eq!(stats.quarantines, 1, "two failures trip the threshold");
    assert_eq!(router.quarantined_pools(), vec![pinned]);
    assert_ne!(
        router.place(&problem),
        pinned,
        "placement must remap off the benched pool"
    );
    // The router still serves while one pool is benched.
    let sol = router
        .spawn_shared(Arc::clone(&problem), SolverConfig::default())
        .join()
        .expect("feasible instance");
    assert_eq!(sol.error, 0);
    // Cooldown over: the pool re-enters placement with a clean window.
    std::thread::sleep(cooldown + Duration::from_millis(100));
    assert!(router.quarantined_pools().is_empty());
    assert_eq!(router.place(&problem), pinned);
    assert_eq!(router.stats().quarantines, 1, "no re-trip after recovery");
}

/// A stalled step delays but never wedges a routed query: the deadline
/// (set through the relayed handle) still expires it.
#[test]
fn stalled_routed_query_still_honors_deadline() {
    let router = faulty_router(1, 1, 2);
    let handle = router.spawn_shared(
        Arc::new(support::blocker_problem(12, 4, 1)),
        SolverConfig {
            faults: Some(Arc::new(FaultPlan::new().stall_at(2, 30))),
            ..support::blocker_config()
        },
    );
    handle.deadline(Duration::from_millis(100));
    let sol = handle.join().expect("deadline delivers best-so-far");
    assert!(
        matches!(sol.status, SolveStatus::TimeLimit | SolveStatus::Optimal),
        "unexpected status {:?}",
        sol.status
    );
}

/// A near-hit whose cached root artifacts are refused (as if the
/// containment re-proof failed) degrades to a cold root — and still
/// proves the same optimum.
#[test]
fn rejected_cache_seed_degrades_to_cold_root_same_optimum() {
    let router = Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        cache_cap: 16,
        ..RouterConfig::default()
    });
    let base = Arc::new(light_problem());
    let first = router
        .spawn_shared(Arc::clone(&base), SolverConfig::default())
        .join()
        .expect("feasible instance");
    assert!(first.optimal);
    // Same shape, new constraints: a near hit whose artifacts the plan
    // refuses to adopt.
    let constrained = Arc::new(
        (*base)
            .clone()
            .with_constraints(WeightConstraints::none().max_weight(0, 0.6))
            .unwrap(),
    );
    let degraded = router
        .spawn_shared(
            Arc::clone(&constrained),
            SolverConfig {
                faults: Some(Arc::new(FaultPlan::new().reject_root_seed())),
                ..SolverConfig::default()
            },
        )
        .join()
        .expect("feasible constrained instance");
    assert!(degraded.optimal, "cold-root degradation must still prove");
    assert_eq!(router.stats().cache.near_hits, 1, "the lookup still hit");
    // Cold reference: identical certified answer set.
    let cold = RankHow::with_config(SolverConfig {
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&constrained)
    .expect("feasible constrained instance");
    assert!(
        degraded.error <= cold.certified_error && cold.error <= degraded.certified_error,
        "degraded bracket ({}, {}) must overlap cold ({}, {})",
        degraded.error,
        degraded.certified_error,
        cold.error,
        cold.certified_error
    );
}
