//! The cross-query solution cache's correctness bar: exact hits are
//! bit-identical to the first solve, near-hit warm seeding never
//! degrades the certified bracket, unsound artifact adoption is
//! impossible (a cached *tighter* region must not leak facts into a
//! looser re-query), and the LRU capacity policy holds under both
//! sequential and interleaved traffic.

// The shared fixture module ships helpers for the blocker-based
// admission tests too; this suite only needs the instance builders.
#[allow(dead_code)]
#[path = "../../serve/tests/support/mod.rs"]
mod support;

use proptest::prelude::*;
use rankhow_core::{OptProblem, Solution, SolverConfig, WeightConstraints};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;
use rankhow_router::{Router, RouterConfig};
use std::sync::Arc;
use support::{build, light_problem, small_instance};

/// The serve-layer cross-check for two exhaustive solves of one
/// instance: each one's incumbent error is a lower bound on the other's
/// certified error (band incumbents are interleaving-dependent, so
/// exact equality is not pinned — the bracket overlap is).
fn brackets_overlap(a: &Solution, b: &Solution) -> bool {
    a.error <= b.certified_error && b.error <= a.certified_error
}

fn cached_router(pools: usize, threads: usize, cap: usize) -> Router {
    Router::new(RouterConfig {
        pools,
        threads_per_pool: threads,
        cache_cap: cap,
        ..RouterConfig::default()
    })
}

fn cold_router(pools: usize, threads: usize) -> Router {
    Router::new(RouterConfig {
        pools,
        threads_per_pool: threads,
        cache: false,
        ..RouterConfig::default()
    })
}

/// A small fixed instance parameterized by one feature value, for
/// driving distinct-query traffic at the cache.
fn variant_problem(v: f64) -> Arc<OptProblem> {
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into(), "c".into()],
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, v, 14.0],
            vec![2.0, 3.0, 9.0],
        ],
    )
    .unwrap();
    let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None, None]).unwrap();
    Arc::new(OptProblem::new(data, pi).unwrap())
}

#[test]
fn exact_hit_returns_the_stored_solution_without_running() {
    let router = cached_router(1, 1, 16);
    let problem = Arc::new(light_problem());
    let first = router
        .spawn_shared(Arc::clone(&problem), SolverConfig::default())
        .join()
        .expect("feasible instance");
    assert!(first.optimal);
    // The completion hook records before joiners wake, so a sequential
    // re-submit is guaranteed to hit.
    let hit_handle = router.spawn_shared(Arc::clone(&problem), SolverConfig::default());
    assert!(
        hit_handle.is_finished(),
        "an exact hit completes on arrival, no pool involved"
    );
    let hit = hit_handle.join().expect("cached solution");
    // Bit-identical payload...
    assert_eq!(hit.weights, first.weights);
    assert_eq!(hit.error, first.error);
    assert_eq!(hit.optimal, first.optimal);
    assert_eq!(hit.status, first.status);
    assert_eq!(hit.certified, first.certified);
    assert_eq!(hit.certified_error, first.certified_error);
    assert_eq!(hit.certified_weights, first.certified_weights);
    // ...with serving stats that say "no search ran".
    assert_eq!(hit.stats.nodes, 0);
    assert_eq!(hit.stats.lp_solves, 0);
    assert_eq!(hit.stats.cache_exact_hits, 1);
    let stats = router.stats();
    assert_eq!(stats.cache.exact_hits, 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.entries, 1);
    assert_eq!(stats.admissions, 1, "the hit was never admitted to a pool");
    assert_eq!(
        stats.solver.cache_exact_hits, 1,
        "folded into the aggregate"
    );
}

#[test]
fn near_hit_seeds_the_constrained_re_query() {
    let router = cached_router(1, 1, 16);
    let base = Arc::new(light_problem());
    let first = router
        .spawn_shared(Arc::clone(&base), SolverConfig::default())
        .join()
        .expect("feasible instance");
    assert!(first.optimal);
    // Same instance, new weight constraints: a near hit — the cached
    // (looser-region) root facts are adoptable after the containment
    // re-proof, and the cached incumbent is a candidate.
    let constrained = Arc::new(
        (*base)
            .clone()
            .with_constraints(WeightConstraints::none().max_weight(0, 0.6))
            .unwrap(),
    );
    let warm = router
        .spawn_shared(Arc::clone(&constrained), SolverConfig::default())
        .join()
        .expect("feasible constrained instance");
    assert!(warm.optimal);
    assert!(warm.stats.cache_near_hits >= 1, "the job saw the seed");
    // Cold reference: the warm-seeded solve must reproduce its bracket.
    let cold = cold_router(1, 1)
        .spawn_shared(constrained, SolverConfig::default())
        .join()
        .expect("feasible constrained instance");
    assert!(cold.optimal);
    assert!(
        brackets_overlap(&warm, &cold),
        "warm ({}, {}) vs cold ({}, {}) certified brackets must overlap",
        warm.error,
        warm.certified_error,
        cold.error,
        cold.certified_error
    );
    let stats = router.stats();
    assert_eq!(stats.cache.near_hits, 1);
    assert_eq!(stats.solver.cache_near_hits, 1, "per-job stats agree");
}

#[test]
fn loosening_the_constraints_must_not_inherit_tight_region_facts() {
    // Cache a *constrained* solve first: its root facts (boxes, decided
    // pairs, witnesses) are only valid inside the constrained region.
    let router = cached_router(1, 1, 16);
    let base = Arc::new(light_problem());
    let constrained = Arc::new(
        (*base)
            .clone()
            .with_constraints(WeightConstraints::none().max_weight(0, 0.4))
            .unwrap(),
    );
    let tight = router
        .spawn_shared(constrained, SolverConfig::default())
        .join()
        .expect("feasible constrained instance");
    assert!(tight.optimal);
    // Now the *unconstrained* query: same shape, so the cache offers a
    // near hit — but the containment gate must reject the artifacts
    // (the new region is a superset), keeping only the incumbent
    // candidates. An unsound adoption would over-prune and could
    // certify a wrong optimum.
    let loose = router
        .spawn_shared(Arc::clone(&base), SolverConfig::default())
        .join()
        .expect("feasible instance");
    assert!(loose.optimal);
    let cold = cold_router(1, 1)
        .spawn_shared(base, SolverConfig::default())
        .join()
        .expect("feasible instance");
    assert!(cold.optimal);
    assert!(
        brackets_overlap(&loose, &cold),
        "loosened re-query ({}, {}) diverged from cold ({}, {})",
        loose.error,
        loose.certified_error,
        cold.error,
        cold.certified_error
    );
    assert!(
        loose.error <= tight.error,
        "a superset region never has a worse optimum"
    );
}

#[test]
fn lru_capacity_holds_under_sequential_and_interleaved_traffic() {
    let variants: Vec<Arc<OptProblem>> = (0..6).map(|i| variant_problem(i as f64)).collect();
    let router = cached_router(1, 2, 3);
    // Sequential distinct queries: every lookup misses, inserts stay
    // capped, eviction is oldest-first.
    for problem in &variants {
        router
            .spawn_shared(Arc::clone(problem), SolverConfig::default())
            .join()
            .expect("feasible instance");
    }
    let stats = router.stats();
    assert_eq!(stats.cache.misses, 6, "distinct shapes never hit");
    assert_eq!(stats.cache.insertions, 6);
    assert_eq!(stats.cache.entries, 3, "capacity binds");
    assert_eq!(stats.cache.evictions, 3);
    // The most recent variant survives; the oldest was evicted.
    let newest = router.spawn_shared(Arc::clone(&variants[5]), SolverConfig::default());
    assert!(newest.is_finished(), "most recent entry is resident");
    newest.join().expect("cached solution");
    router
        .spawn_shared(Arc::clone(&variants[0]), SolverConfig::default())
        .join()
        .expect("feasible instance");
    let stats = router.stats();
    assert_eq!(stats.cache.exact_hits, 1);
    assert_eq!(stats.cache.misses, 7, "the evicted entry misses");
    // Interleaved traffic: spawn everything concurrently, twice over.
    let handles: Vec<_> = variants
        .iter()
        .chain(variants.iter())
        .map(|p| router.spawn_shared(Arc::clone(p), SolverConfig::default()))
        .collect();
    for handle in handles {
        handle.join().expect("feasible instance");
    }
    let stats = router.stats();
    assert!(
        stats.cache.entries <= 3,
        "capacity holds under interleaving"
    );
    assert_eq!(
        stats.cache.insertions - stats.cache.evictions,
        stats.cache.entries as u64,
        "insert/evict/resident accounting balances"
    );
    let lookups = stats.cache.exact_hits + stats.cache.near_hits + stats.cache.misses;
    assert_eq!(lookups, 20, "every eligible spawn did exactly one lookup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cache-on serving returns certified brackets overlapping cache-off
    /// serving for every query of a duplicate-heavy batch, across pool
    /// and thread shapes. Queries are joined in spawn order, so later
    /// duplicates genuinely exercise exact hits.
    #[test]
    fn cache_on_matches_cache_off_across_shapes(insts in prop::collection::vec(small_instance(), 3..5)) {
        let mut problems: Vec<Arc<OptProblem>> =
            insts.iter().filter_map(build).map(Arc::new).collect();
        if problems.is_empty() {
            return Err(TestCaseError::reject("invalid ranking"));
        }
        // Duplicate the batch so the cache has repeats to serve.
        problems.extend(problems.clone());
        for &(pools, threads) in &[(1usize, 1usize), (2, 2), (4, 4), (1, 4), (4, 1)] {
            let cold = cold_router(pools, threads);
            let warm = cached_router(pools, threads, 64);
            for problem in &problems {
                let a = cold
                    .spawn_shared(Arc::clone(problem), SolverConfig::default())
                    .join()
                    .expect("feasible instance");
                let b = warm
                    .spawn_shared(Arc::clone(problem), SolverConfig::default())
                    .join()
                    .expect("feasible instance");
                prop_assert!(a.optimal && b.optimal);
                prop_assert!(
                    brackets_overlap(&a, &b),
                    "{} pools / {} threads: cold ({}, {}) vs cached ({}, {})",
                    pools, threads, a.error, a.certified_error, b.error, b.certified_error
                );
            }
            let stats = warm.stats();
            prop_assert!(
                stats.cache.exact_hits >= problems.len() as u64 / 2,
                "sequential duplicates must hit: {} hits of {} queries",
                stats.cache.exact_hits, problems.len()
            );
        }
    }

    /// Every exact hit is bit-identical to the first solve of the same
    /// query — weights, error fields, and status all round-trip.
    #[test]
    fn exact_hits_are_bit_identical(inst in small_instance()) {
        let Some(problem) = build(&inst).map(Arc::new) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let router = cached_router(2, 1, 16);
        let first = router
            .spawn_shared(Arc::clone(&problem), SolverConfig::default())
            .join()
            .expect("feasible instance");
        prop_assert!(first.optimal);
        for _ in 0..2 {
            let hit = router
                .spawn_shared(Arc::clone(&problem), SolverConfig::default())
                .join()
                .expect("cached solution");
            prop_assert_eq!(&hit.weights, &first.weights);
            prop_assert_eq!(hit.error, first.error);
            prop_assert_eq!(hit.certified_error, first.certified_error);
            prop_assert_eq!(&hit.certified_weights, &first.certified_weights);
            prop_assert_eq!(hit.status, first.status);
            prop_assert_eq!(hit.stats.nodes, 0, "a hit runs no search");
            prop_assert_eq!(hit.stats.lp_solves, 0);
        }
        prop_assert_eq!(router.stats().cache.exact_hits, 2);
    }

    /// Near-hit warm seeding (cached base solve, then a constrained
    /// variant) never yields a worse certified bracket than solving the
    /// variant cold — in either tightening direction.
    #[test]
    fn near_hits_never_degrade_the_bracket(
        inst in small_instance(),
        bound in 0.35f64..0.9,
        tighten_first in any::<bool>(),
    ) {
        let Some(base) = build(&inst).map(Arc::new) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let constrained = Arc::new(
            (*base)
                .clone()
                .with_constraints(WeightConstraints::none().max_weight(0, bound))
                .unwrap(),
        );
        let (first, second) = if tighten_first {
            (Arc::clone(&constrained), Arc::clone(&base))
        } else {
            (Arc::clone(&base), Arc::clone(&constrained))
        };
        let router = cached_router(1, 1, 16);
        let primed = router
            .spawn_shared(first, SolverConfig::default())
            .join()
            .expect("feasible instance");
        prop_assert!(primed.optimal);
        let warm = router
            .spawn_shared(Arc::clone(&second), SolverConfig::default())
            .join()
            .expect("feasible instance");
        prop_assert!(warm.optimal);
        prop_assert!(warm.stats.cache_near_hits >= 1, "the seed reached the job");
        let cold = cold_router(1, 1)
            .spawn_shared(second, SolverConfig::default())
            .join()
            .expect("feasible instance");
        prop_assert!(cold.optimal);
        prop_assert!(
            brackets_overlap(&warm, &cold),
            "warm ({}, {}) vs cold ({}, {})",
            warm.error, warm.certified_error, cold.error, cold.certified_error
        );
    }

    /// Interleaved spawns of a rotating query set never break the LRU
    /// capacity or accounting invariants, and all results stay optimal.
    #[test]
    fn lru_invariants_under_interleaved_spawns(
        order in prop::collection::vec(0usize..5, 8..14),
        cap in 1usize..4,
    ) {
        let variants: Vec<Arc<OptProblem>> = (0..5).map(|i| variant_problem(i as f64)).collect();
        let router = cached_router(2, 2, cap);
        let handles: Vec<_> = order
            .iter()
            .map(|&i| router.spawn_shared(Arc::clone(&variants[i]), SolverConfig::default()))
            .collect();
        for handle in handles {
            let sol = handle.join().expect("feasible instance");
            prop_assert!(sol.optimal);
        }
        let stats = router.stats();
        // Two shards of ceil(cap/2) each bound the resident count.
        prop_assert!(stats.cache.entries <= 2 * cap.div_ceil(2));
        prop_assert_eq!(
            stats.cache.insertions - stats.cache.evictions,
            stats.cache.entries as u64
        );
        prop_assert_eq!(
            stats.cache.exact_hits + stats.cache.near_hits + stats.cache.misses,
            order.len() as u64
        );
    }
}
