//! Admission-shed retry semantics that need no fault injection (this
//! suite runs in the default tier-1 build): a spawn refused by a full
//! pool is re-admitted after backoff instead of shedding, and a spent
//! retry budget still sheds deterministically.

// The shared fixture module ships helpers for the chaos suites too;
// this one only needs the blocker and light instances.
#[allow(dead_code)]
#[path = "../../serve/tests/support/mod.rs"]
mod support;

use rankhow_core::{SolveStatus, SolverConfig};
use rankhow_router::{RetryPolicy, Router, RouterConfig};
use std::sync::Arc;
use std::time::Duration;
use support::{blocker_config, blocker_problem, light_problem};

fn retrying_router(max_retries: u32, budget: Option<Duration>) -> Router {
    Router::new(RouterConfig {
        pools: 1,
        threads_per_pool: 1,
        // One live job fills the pool: the second spawn must be shed
        // (and, with retries on, re-admitted).
        queue_cap: 1,
        cache: false,
        retry: RetryPolicy {
            max_retries,
            backoff: Duration::from_millis(10),
            budget,
        },
        ..RouterConfig::default()
    })
}

/// A spawn refused by a full pool retries with backoff and lands once
/// capacity frees up — the caller sees one ordinary handle that solves,
/// never a `Rejected` shed.
#[test]
fn shed_spawn_is_readmitted_after_backoff() {
    let router = Arc::new(retrying_router(50, None));
    let blocker = router.spawn(blocker_problem(12, 6, 3), blocker_config());
    // Free the pool from the side once the retry loop is certainly
    // spinning.
    let unblock = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        blocker.cancel();
        let _ = blocker.join();
    });
    // This call occupies the submitting thread through the backoff
    // sleeps until the blocker's cancellation frees the slot.
    let sol = router
        .spawn_shared(Arc::new(light_problem()), SolverConfig::default())
        .join()
        .expect("re-admitted query must solve");
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_eq!(sol.error, 0);
    unblock.join().unwrap();

    let stats = router.stats();
    assert!(stats.retries >= 1, "the shed must have retried");
    assert_eq!(stats.admissions, 2, "blocker + re-admitted query");
    assert_eq!(stats.rejections, 0, "nothing shed to the caller");
    assert_eq!(
        stats.admissions,
        stats.completions + stats.retries_exhausted,
        "admission ledger must reconcile"
    );
}

/// A spent retry time budget stops re-admission: the spawn sheds with
/// `Rejected` just as if retries were off, bounded by the budget rather
/// than hanging on a never-freeing pool.
#[test]
fn exhausted_retry_budget_sheds_with_rejected() {
    let router = retrying_router(u32::MAX, Some(Duration::from_millis(50)));
    let blocker = router.spawn(blocker_problem(12, 6, 5), blocker_config());
    let shed = router
        .spawn_shared(Arc::new(light_problem()), SolverConfig::default())
        .join()
        .expect("shed spawns deliver Ok(Rejected)");
    assert_eq!(shed.status, SolveStatus::Rejected);

    let stats = router.stats();
    assert!(stats.retries >= 1, "the budget allowed at least one retry");
    assert_eq!(stats.rejections, 1);
    assert_eq!(stats.admissions, 1, "only the blocker was admitted");
    blocker.cancel();
    let _ = blocker.join();
}
