//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs with a *known feasible point*, then check
//! the solver-reported optimum (a) is feasible, (b) is at least as good as
//! the known point and any other sampled feasible points. This catches
//! wrong pivots, bad phase-1 transitions, and sign errors without needing
//! an oracle solver.

use proptest::prelude::*;
use rankhow_lp::{Op, Problem, Sense, Status};

/// A random LP built around a known interior point so it is feasible by
/// construction: constraints are `a·x ≤ a·x0 + slack` with slack ≥ 0.
#[derive(Debug, Clone)]
struct FeasibleLp {
    problem: Problem,
    witness: Vec<f64>,
}

fn feasible_lp() -> impl Strategy<Value = FeasibleLp> {
    (2usize..5, 1usize..6).prop_flat_map(|(nvars, nrows)| {
        let point = prop::collection::vec(0.0..1.0f64, nvars);
        let objs = prop::collection::vec(-2.0..2.0f64, nvars);
        let rows = prop::collection::vec(
            (
                prop::collection::vec(-1.0..1.0f64, nvars),
                0.01..1.0f64, // slack distance from the witness point
            ),
            nrows,
        );
        (point, objs, rows).prop_map(move |(x0, objs, rows)| {
            let mut p = Problem::new(Sense::Minimize);
            for (i, &c) in objs.iter().enumerate() {
                p.add_var(&format!("x{i}"), 0.0, 1.0, c);
            }
            for (coefs, slack) in rows {
                let lhs: f64 = coefs.iter().zip(&x0).map(|(a, b)| a * b).sum();
                let terms: Vec<(usize, f64)> =
                    coefs.iter().enumerate().map(|(i, &c)| (i, c)).collect();
                p.add_constraint(&terms, Op::Le, lhs + slack);
            }
            FeasibleLp {
                problem: p,
                witness: x0,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimum_is_feasible_and_beats_witness(lp in feasible_lp()) {
        let sol = lp.problem.solve().unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(lp.problem.violation_at(&sol.x) < 1e-6,
            "violation {}", lp.problem.violation_at(&sol.x));
        let witness_obj = lp.problem.objective_at(&lp.witness);
        prop_assert!(sol.objective <= witness_obj + 1e-7,
            "optimum {} worse than witness {}", sol.objective, witness_obj);
    }

    #[test]
    fn optimum_beats_random_feasible_samples(lp in feasible_lp(), seeds in prop::collection::vec(0.0..1.0f64, 16)) {
        let sol = lp.problem.solve().unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        let n = lp.problem.num_vars();
        // Points on the segment witness→corner stay feasible for ≤ rows
        // only if they satisfy them; just filter by violation.
        for chunk in seeds.chunks(n) {
            if chunk.len() < n {
                continue;
            }
            let cand: Vec<f64> = lp
                .witness
                .iter()
                .zip(chunk)
                .map(|(w, s)| (w * 0.5 + s * 0.5).clamp(0.0, 1.0))
                .collect();
            if lp.problem.violation_at(&cand) <= 0.0 {
                let obj = lp.problem.objective_at(&cand);
                prop_assert!(sol.objective <= obj + 1e-7);
            }
        }
    }

    #[test]
    fn feasibility_mode_agrees_with_full_solve(lp in feasible_lp()) {
        let feas = lp.problem.solve_feasibility().unwrap();
        prop_assert_eq!(feas.status, Status::Optimal);
        prop_assert!(lp.problem.violation_at(&feas.x) < 1e-6);
    }

    #[test]
    fn infeasible_detected_when_contradictory(bound in 0.1..0.9f64) {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Op::Le, bound - 0.05);
        p.add_constraint(&[(x, 1.0)], Op::Ge, bound + 0.05);
        let s = p.solve().unwrap();
        prop_assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn equality_simplex_weights_solve(n in 2usize..8) {
        // min w_0 over the probability simplex: optimum 0.
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_var(&format!("w{i}"), 0.0, 1.0, if i == 0 { 1.0 } else { 0.0 }))
            .collect();
        let terms: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Op::Eq, 1.0);
        let s = p.solve().unwrap();
        prop_assert_eq!(s.status, Status::Optimal);
        prop_assert!(s.objective.abs() < 1e-9);
        let total: f64 = s.x.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
    }
}
