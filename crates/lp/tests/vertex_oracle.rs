//! Geometric oracle for the simplex solver: for 2-variable LPs the
//! optimum (when bounded) lies at an intersection of two active
//! boundaries (constraint lines and/or box edges). Enumerating every
//! such intersection and taking the best feasible one is an exact,
//! solver-independent oracle.

use proptest::prelude::*;
use rankhow_lp::{Op, Problem, Sense, Status};

#[derive(Debug, Clone)]
struct Lp2 {
    maximize: bool,
    c: [f64; 2],
    // rows: a·x + b·y ≤ rhs
    rows: Vec<([f64; 2], f64)>,
    hi: [f64; 2],
}

fn lp2() -> impl Strategy<Value = Lp2> {
    (
        any::<bool>(),
        prop::array::uniform2(-3.0..3.0f64),
        prop::collection::vec((prop::array::uniform2(-2.0..2.0f64), -1.0..4.0f64), 0..4),
        prop::array::uniform2(0.5..5.0f64),
    )
        .prop_map(|(maximize, c, rows, hi)| Lp2 {
            maximize,
            c,
            rows,
            hi,
        })
}

fn feasible(p: &Lp2, x: f64, y: f64) -> bool {
    const T: f64 = 1e-7;
    x >= -T
        && y >= -T
        && x <= p.hi[0] + T
        && y <= p.hi[1] + T
        && p.rows.iter().all(|([a, b], rhs)| a * x + b * y <= rhs + T)
}

/// All candidate vertices: pairwise intersections of boundary lines.
fn vertices(p: &Lp2) -> Vec<(f64, f64)> {
    // Boundary lines as a·x + b·y = c.
    let mut lines: Vec<(f64, f64, f64)> = vec![
        (1.0, 0.0, 0.0),     // x = 0
        (0.0, 1.0, 0.0),     // y = 0
        (1.0, 0.0, p.hi[0]), // x = hi
        (0.0, 1.0, p.hi[1]), // y = hi
    ];
    lines.extend(p.rows.iter().map(|([a, b], rhs)| (*a, *b, *rhs)));
    let mut out = Vec::new();
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let (a1, b1, c1) = lines[i];
            let (a2, b2, c2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-10 {
                continue;
            }
            let x = (c1 * b2 - c2 * b1) / det;
            let y = (a1 * c2 - a2 * c1) / det;
            if feasible(p, x, y) {
                out.push((x, y));
            }
        }
    }
    out
}

fn oracle(p: &Lp2) -> Option<f64> {
    let vs = vertices(p);
    if vs.is_empty() {
        return None; // infeasible (the box guarantees boundedness)
    }
    let vals = vs.iter().map(|&(x, y)| p.c[0] * x + p.c[1] * y);
    Some(if p.maximize {
        vals.fold(f64::NEG_INFINITY, f64::max)
    } else {
        vals.fold(f64::INFINITY, f64::min)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn two_var_lps_match_vertex_oracle(p in lp2()) {
        let sense = if p.maximize { Sense::Maximize } else { Sense::Minimize };
        let mut lp = Problem::new(sense);
        let x = lp.add_var("x", 0.0, p.hi[0], p.c[0]);
        let y = lp.add_var("y", 0.0, p.hi[1], p.c[1]);
        for ([a, b], rhs) in &p.rows {
            lp.add_constraint(&[(x, *a), (y, *b)], Op::Le, *rhs);
        }
        let sol = lp.solve().unwrap();
        match oracle(&p) {
            Some(best) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!(
                    (sol.objective - best).abs() < 1e-5,
                    "simplex {} vs oracle {}",
                    sol.objective,
                    best
                );
                // The reported point must itself be feasible.
                prop_assert!(feasible(&p, sol.x[x], sol.x[y]),
                    "reported point infeasible: {:?}", (sol.x[x], sol.x[y]));
            }
            None => prop_assert_eq!(sol.status, Status::Infeasible),
        }
    }

    /// Equality constraints: x + y = s with box bounds — the optimum is
    /// computable in closed form.
    #[test]
    fn equality_constrained_closed_form(
        s in 0.2..1.8f64,
        c0 in -2.0..2.0f64,
        c1 in -2.0..2.0f64,
    ) {
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 1.0, c0);
        let y = lp.add_var("y", 0.0, 1.0, c1);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Eq, s);
        let sol = lp.solve().unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        // Put as much mass as possible on the cheaper variable; the
        // rest goes to the other (bounded by 1 each, total s).
        let best = if c0 <= c1 {
            let xv = s.min(1.0);
            c0 * xv + c1 * (s - xv)
        } else {
            let yv = s.min(1.0);
            c1 * yv + c0 * (s - yv)
        };
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "simplex {} vs closed form {}", sol.objective, best);
    }

    /// Ge constraints mirror Le under negation: solving both forms gives
    /// identical optima.
    #[test]
    fn ge_le_negation_symmetry(
        a in prop::array::uniform2(-2.0..2.0f64),
        rhs in -1.0..2.0f64,
        c in prop::array::uniform2(-2.0..2.0f64),
    ) {
        let mut le = Problem::new(Sense::Maximize);
        let x1 = le.add_var("x", 0.0, 3.0, c[0]);
        let y1 = le.add_var("y", 0.0, 3.0, c[1]);
        le.add_constraint(&[(x1, a[0]), (y1, a[1])], Op::Le, rhs);

        let mut ge = Problem::new(Sense::Maximize);
        let x2 = ge.add_var("x", 0.0, 3.0, c[0]);
        let y2 = ge.add_var("y", 0.0, 3.0, c[1]);
        ge.add_constraint(&[(x2, -a[0]), (y2, -a[1])], Op::Ge, -rhs);

        let s1 = le.solve().unwrap();
        let s2 = ge.solve().unwrap();
        prop_assert_eq!(s1.status, s2.status);
        if s1.status == Status::Optimal {
            prop_assert!((s1.objective - s2.objective).abs() < 1e-7);
        }
    }
}
