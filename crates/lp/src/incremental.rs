//! Incremental LP solving: amortize standard-form construction and
//! phase-1 work across near-identical solves.
//!
//! The branch-and-bound node loop solves three kinds of LPs over *one*
//! region per node: `2m` box-tightening probes that differ only in
//! their objective vector, one feasibility check per child that differs
//! by exactly one appended pair-sign constraint, and (across nodes) a
//! child's region that differs from its parent's by that same single
//! row. [`IncrementalLp`] exploits all three structures:
//!
//! - **objective swap** ([`IncrementalLp::solve_objective`]): re-price
//!   the current optimal basis for a new cost vector and run primal
//!   phase 2 only — phase 1 is never repeated within a region;
//! - **dual-simplex row addition** ([`IncrementalLp::push_row`] /
//!   [`IncrementalLp::pop_row`]): append one constraint, eliminate the
//!   basic columns from it, and restore feasibility with dual pivots
//!   from the current basis instead of re-solving from scratch;
//! - **basis snapshots** ([`IncrementalLp::snapshot`] +
//!   [`IncrementalLp::load`] with a hint): a compact, layout-independent
//!   list of basic columns that survives work-stealing — the stealing
//!   worker rebuilds the (cheap) raw tableau on its own scratch and
//!   re-installs the parent basis with a handful of Gauss-Jordan
//!   pivots, skipping phase 1 entirely.
//!
//! Every warm path has a cold fallback: if a snapshot fails to resolve
//! or install (numerically tiny pivots, a basic artificial left at a
//! nonzero value), [`IncrementalLp::load`] silently re-runs the
//! ordinary two-phase construction, so warm-starting can only ever
//! change *work*, not *answers* beyond LP-roundoff freedom.

use crate::dual::{dual_restore, DualOutcome};
use crate::model::{Op, Problem, Sense, Solution, Status};
use crate::simplex::{
    self, SimplexWorkspace, SolveError, StdForm, Tableau, VarMap, FEAS_TOL, NO_COL,
};
use rankhow_linalg::kernels;

/// Pivots smaller than this are rejected when installing a snapshot
/// basis (matches the phase-1 artificial drive-out threshold).
const INSTALL_TOL: f64 = 1e-7;

/// Layout-independent identity of one basic column. Snapshots are
/// expressed in these terms so they survive a re-build whose column
/// indices differ (a child region has one more constraint row, which
/// shifts every slack/artificial column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BasicCol {
    /// A structural variable's standard-form column (`neg` = the
    /// negative half of a free variable's split).
    Structural { var: u32, neg: bool },
    /// The slack/surplus column of model constraint `row`.
    ConSlack(u32),
    /// The artificial column of model constraint `row` (kept only for
    /// redundant rows that phase 1 could not clear).
    ConArt(u32),
    /// The slack of the upper-bound row generated for variable `var`.
    UbSlack(u32),
}

/// A compact basis handle: which columns were basic at capture time, in
/// layout-independent terms. Cheap to clone and share (`k + 1` words
/// for a `k`-row tableau); carries no tableau data — the receiver
/// rebuilds the tableau from the problem and re-installs the basis.
#[derive(Clone, Debug)]
pub struct BasisSnapshot {
    cols: Vec<BasicCol>,
}

impl BasisSnapshot {
    /// Number of basic columns captured.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the snapshot is empty (a zero-row problem).
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// How [`IncrementalLp::load`] left the tableau.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadStatus {
    /// A feasible basis is installed; probes and row pushes may follow.
    /// `warm` says whether it came from the snapshot hint (phase 1
    /// skipped) or from a cold two-phase construction.
    Feasible {
        /// Whether the snapshot hint was used (no phase 1 ran).
        warm: bool,
    },
    /// The problem has no feasible point. `warm` records which path
    /// concluded it (snapshot + dual restore vs cold phase 1), so
    /// callers can account the load's work either way.
    Infeasible {
        /// Whether the snapshot hint was used (no phase 1 ran).
        warm: bool,
    },
}

/// A reusable incremental-LP workspace. One instance serves any
/// sequence of regions (buffers regrow as needed); it is `Send`, so the
/// engine keeps one per worker, alongside its plain
/// [`SimplexWorkspace`].
#[derive(Default)]
pub struct IncrementalLp {
    ws: SimplexWorkspace,
    form: Option<StdForm>,
    /// Model constraint count of the loaded problem (rows ≥ this are
    /// upper-bound rows).
    n_cons: usize,
    /// Structural variable bounds, for extraction clamping.
    var_lo: Vec<f64>,
    var_hi: Vec<f64>,
    /// Reverse of `ws.maps`: standard column → (var, neg-half).
    std_owner: Vec<(u32, bool)>,
    /// Per column of the loaded layout: its layout-independent
    /// descriptor (snapshot capture and install are O(rows) with it).
    col_desc: Vec<BasicCol>,
    /// Reverse of `ws.ub_rows`: standard column → ub-row index
    /// ([`NO_COL`] when the column has no upper-bound row).
    ub_of_std: Vec<usize>,
    /// Install scratch: resolved snapshot columns, column → target
    /// index ([`NO_COL`] = not a target), and done flags.
    targets: Vec<usize>,
    target_of: Vec<usize>,
    row_done: Vec<bool>,
    col_done: Vec<bool>,
    /// Objective coefficients over standard columns (scratch).
    costs: Vec<f64>,
    /// Saved state for `push_row`/`pop_row`.
    saved_tableau: Vec<f64>,
    saved_basis: Vec<usize>,
    saved_form: Option<StdForm>,
    /// Whether the saved state still equals the live tableau (true
    /// right after `pop_row`, until the next mutation) — lets the
    /// sibling child's `push_row` skip an identical re-save.
    saved_clean: bool,
    pushed: bool,
    /// Scratch for widening the tableau by one column.
    widen: Vec<f64>,
    /// Scratch for building the appended row over standard columns.
    new_row: Vec<f64>,
    /// Batch-sweep scratch: one reduced-cost row, priced per probe and
    /// handed to phase 2 (see [`IncrementalLp::solve_objectives`]).
    bat: Vec<f64>,
}

/// Outcome of one objective in an [`IncrementalLp::solve_objectives`]
/// sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ProbeOutcome {
    /// Solved to optimality: the objective value, plus the index of this
    /// probe's optimizer in the sweep's witness list (consecutive probes
    /// optimized by the same basis share one entry).
    Solved {
        /// The optimal objective value, in model terms.
        value: f64,
        /// Index into the `witnesses` vector passed to the sweep.
        witness: usize,
    },
    /// Phase 2 did not converge for this objective (unbounded, or the
    /// pivot iteration limit) — the same conditions under which
    /// [`IncrementalLp::solve_objective`] reports a non-optimal status.
    Failed,
}

impl IncrementalLp {
    /// A fresh, empty incremental workspace.
    pub fn new() -> Self {
        IncrementalLp::default()
    }

    /// Total Gauss-Jordan pivots ever performed by this workspace
    /// (loads, installs, probes, row pushes). Monotone; never reset.
    pub fn pivots(&self) -> u64 {
        self.ws.pivots()
    }

    /// Build the standard-form tableau for `problem` and reach a
    /// feasible basis.
    ///
    /// With a `hint`, the snapshot basis is re-installed onto the raw
    /// tableau (a handful of pivots) and feasibility is restored with
    /// dual simplex — no phase 1. Without one, or whenever the install
    /// does not cleanly succeed, the ordinary two-phase cold path runs.
    /// Either way the result is a feasible basis (or a sound
    /// [`LoadStatus::Infeasible`] verdict).
    pub fn load(
        &mut self,
        problem: &Problem,
        hint: Option<&BasisSnapshot>,
    ) -> Result<LoadStatus, SolveError> {
        self.pushed = false;
        self.saved_form = None;
        self.saved_clean = false;
        let form = simplex::build_standard(problem, &mut self.ws)?;
        self.form = Some(form);
        self.n_cons = problem.num_constraints();
        self.var_lo.clear();
        self.var_hi.clear();
        for v in 0..problem.num_vars() {
            let (lo, hi) = problem.bounds(v);
            self.var_lo.push(lo);
            self.var_hi.push(hi);
        }
        self.std_owner.clear();
        self.std_owner.resize(form.n_std, (0, false));
        for (v, map) in self.ws.maps.iter().enumerate() {
            match *map {
                VarMap::Shifted { idx, .. } | VarMap::Mirrored { idx, .. } => {
                    self.std_owner[idx] = (v as u32, false);
                }
                VarMap::Split { pos, neg } => {
                    self.std_owner[pos] = (v as u32, false);
                    self.std_owner[neg] = (v as u32, true);
                }
            }
        }
        // Column → descriptor and std-column → ub-row tables, so
        // snapshot capture and install stay O(rows) and allocation-free
        // per node.
        self.ub_of_std.clear();
        self.ub_of_std.resize(form.n_std, NO_COL);
        for (u, &(idx, _)) in self.ws.ub_rows.iter().enumerate() {
            self.ub_of_std[idx] = u;
        }
        self.col_desc.clear();
        for c in 0..form.n_std {
            let (var, neg) = self.std_owner[c];
            self.col_desc.push(BasicCol::Structural { var, neg });
        }
        self.col_desc
            .resize(form.ncols, BasicCol::Structural { var: 0, neg: false });
        for r in 0..form.rows {
            let s = self.ws.row_slack[r];
            if s != NO_COL {
                self.col_desc[s] = if r < self.n_cons {
                    BasicCol::ConSlack(r as u32)
                } else {
                    let idx = self.ws.ub_rows[r - self.n_cons].0;
                    BasicCol::UbSlack(self.std_owner[idx].0)
                };
            }
            let a = self.ws.row_art[r];
            if a != NO_COL {
                self.col_desc[a] = BasicCol::ConArt(r as u32);
            }
        }

        if let Some(snap) = hint {
            if self.try_install(snap, form) {
                self.costs.clear();
                self.costs.resize(form.ncols + 1, 0.0);
                let mut t = tableau(&mut self.ws, form);
                match dual_restore(&mut t, &mut self.costs) {
                    DualOutcome::Feasible => {
                        // A basic artificial must sit at (numerical)
                        // zero, else the installed basis violates its
                        // row and only a cold phase 1 can be trusted.
                        let clean = (0..form.rows).all(|r| {
                            t.basis[r] < form.first_artificial || t.rhs(r).abs() <= FEAS_TOL
                        });
                        if clean {
                            return Ok(LoadStatus::Feasible { warm: true });
                        }
                    }
                    DualOutcome::Infeasible => return Ok(LoadStatus::Infeasible { warm: true }),
                    DualOutcome::IterationLimit => {}
                }
            }
            // Install (or restore) failed: rebuild the raw tableau the
            // partial pivots dirtied and fall through to the cold path.
            simplex::build_standard(problem, &mut self.ws)?;
        }

        if !simplex::phase1(&mut self.ws, form)? {
            return Ok(LoadStatus::Infeasible { warm: false });
        }
        Ok(LoadStatus::Feasible { warm: false })
    }

    /// Try to pivot the snapshot's columns into the basis of the raw
    /// tableau. Returns whether every column resolved and installed;
    /// on `false` the tableau is left dirty and must be rebuilt.
    fn try_install(&mut self, snap: &BasisSnapshot, form: StdForm) -> bool {
        if !self.resolve_into(snap, form) {
            return false;
        }
        self.row_done.clear();
        self.row_done.resize(form.rows, false);
        self.col_done.clear();
        self.col_done.resize(self.targets.len(), false);
        // Pass 1: columns already basic in the raw tableau (slacks of
        // `≤` rows, typically most of a node's basis) cost nothing.
        // `targets` is duplicate-free, so `target_of` is unambiguous.
        for r in 0..form.rows {
            let k = self.target_of[self.ws.basis[r]];
            if k != NO_COL && !self.col_done[k] {
                self.row_done[r] = true;
                self.col_done[k] = true;
            }
        }
        // Pass 2: pivot the rest in, choosing per column the free row
        // with the largest magnitude entry (the basis is a *set* — the
        // row assignment is ours to make, so greedy max-pivot is safe).
        self.costs.clear();
        self.costs.resize(form.ncols + 1, 0.0);
        for k in 0..self.targets.len() {
            if self.col_done[k] {
                continue;
            }
            let c = self.targets[k];
            let mut t = tableau(&mut self.ws, form);
            let mut best: Option<(usize, f64)> = None;
            for (r, done) in self.row_done.iter().enumerate() {
                if *done {
                    continue;
                }
                let v = t.at(r, c).abs();
                if best.map_or(true, |(_, bv)| v > bv) {
                    best = Some((r, v));
                }
            }
            match best {
                Some((r, v)) if v > INSTALL_TOL => {
                    t.pivot(r, c, &mut self.costs);
                    self.row_done[r] = true;
                    self.col_done[k] = true;
                }
                _ => return false,
            }
        }
        // Pass 3: rows the snapshot does not cover (a child's freshly
        // appended decision row) keep their initial basic. A slack is
        // fine as-is (dual restore fixes a negative value); a basic
        // artificial must be swapped for the row's own surplus so the
        // real constraint binds — an uncovered `=` row with a nonzero
        // RHS cannot be warm-started at all.
        for r in 0..form.rows {
            if self.row_done[r] || self.ws.basis[r] < form.first_artificial {
                continue;
            }
            let slack = self.ws.row_slack[r];
            let mut t = tableau(&mut self.ws, form);
            if slack != NO_COL && t.at(r, slack).abs() > INSTALL_TOL {
                t.pivot(r, slack, &mut self.costs);
            } else if t.rhs(r).abs() > FEAS_TOL {
                return false;
            }
        }
        true
    }

    /// Map each snapshot descriptor to a column of the current layout,
    /// filling `self.targets` and the `self.target_of` inverse. `false`
    /// when any descriptor does not exist in this layout (or two
    /// descriptors collide on one column).
    fn resolve_into(&mut self, snap: &BasisSnapshot, form: StdForm) -> bool {
        self.target_of.clear();
        self.target_of.resize(form.ncols, NO_COL);
        self.targets.clear();
        for &d in &snap.cols {
            let col = match d {
                BasicCol::Structural { var, neg } => match self.ws.maps.get(var as usize) {
                    Some(&(VarMap::Shifted { idx, .. } | VarMap::Mirrored { idx, .. })) => {
                        if neg {
                            return false;
                        }
                        idx
                    }
                    Some(&VarMap::Split { pos, neg: nc }) => {
                        if neg {
                            nc
                        } else {
                            pos
                        }
                    }
                    None => return false,
                },
                BasicCol::ConSlack(row) => {
                    let row = row as usize;
                    if row >= self.n_cons || self.ws.row_slack[row] == NO_COL {
                        return false;
                    }
                    self.ws.row_slack[row]
                }
                BasicCol::ConArt(row) => {
                    let row = row as usize;
                    if row >= self.n_cons || self.ws.row_art[row] == NO_COL {
                        return false;
                    }
                    self.ws.row_art[row]
                }
                BasicCol::UbSlack(var) => {
                    let idx = match self.ws.maps.get(var as usize) {
                        Some(&VarMap::Shifted { idx, .. }) => idx,
                        _ => return false,
                    };
                    let u = self.ub_of_std[idx];
                    if u == NO_COL || self.ws.row_slack[self.n_cons + u] == NO_COL {
                        return false;
                    }
                    self.ws.row_slack[self.n_cons + u]
                }
            };
            if self.target_of[col] != NO_COL {
                return false;
            }
            self.target_of[col] = self.targets.len();
            self.targets.push(col);
        }
        true
    }

    /// Capture the current basis in layout-independent terms, for
    /// warm-starting a region that shares this one's constraint prefix
    /// (a branch-and-bound child). Requires a loaded, un-pushed state.
    pub fn snapshot(&self) -> BasisSnapshot {
        assert!(!self.pushed, "snapshot with a pushed row");
        let form = self.form.expect("snapshot before load");
        let cols = self.ws.basis[..form.rows]
            .iter()
            .map(|&c| self.col_desc[c])
            .collect();
        BasisSnapshot { cols }
    }

    /// Re-price the current basis for a new objective and run primal
    /// phase 2 from it. The basis must be feasible (a successful
    /// [`IncrementalLp::load`], possibly followed by earlier probes).
    ///
    /// Sparse objective: `terms` are `(var, coef)` over the *structural*
    /// variables; unmentioned variables cost zero. Matches the cold
    /// solver's conventions: the returned `x` is clamped into the
    /// variable bounds and `objective = Σ coef·x[var]`.
    pub fn solve_objective(
        &mut self,
        terms: &[(usize, f64)],
        sense: Sense,
    ) -> Result<Solution, SolveError> {
        assert!(!self.pushed, "solve_objective with a pushed row");
        let form = self.form.expect("solve_objective before load");
        // Phase-2 pivots mutate the tableau: any saved pop_row state no
        // longer matches it.
        self.saved_clean = false;
        self.costs.clear();
        self.costs.resize(form.ncols, 0.0);
        let sign = match sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        // Same mapping arithmetic as the cold builder; objective costs
        // have no RHS to shift, so the offset sink is discarded.
        let mut unused_rhs = 0.0;
        simplex::scatter_terms(&self.ws.maps, terms, sign, &mut self.costs, &mut unused_rhs);
        let ws = &mut self.ws;
        let mut t = Tableau {
            a: &mut ws.tableau,
            rows: form.rows,
            ncols: form.ncols,
            basis: &mut ws.basis,
            first_artificial: form.first_artificial,
            pivots: &mut ws.pivots,
        };
        simplex::reduced_costs_into(&t, &self.costs, &mut ws.cost);
        let first_art = form.first_artificial;
        match simplex::run_phase(&mut t, &mut ws.cost, first_art) {
            simplex::PhaseOutcome::Done => {}
            simplex::PhaseOutcome::Unbounded => {
                return Ok(Solution {
                    status: Status::Unbounded,
                    x: vec![0.0; self.var_lo.len()],
                    objective: match sense {
                        Sense::Minimize => f64::NEG_INFINITY,
                        Sense::Maximize => f64::INFINITY,
                    },
                });
            }
            simplex::PhaseOutcome::IterationLimit => return Err(SolveError::IterationLimit),
        }
        // Extraction via the solver's shared helper (warm and cold
        // probe values must come from the same arithmetic).
        let (var_lo, var_hi) = (&self.var_lo, &self.var_hi);
        let x = simplex::extract_x(ws, form.rows, form.ncols, var_lo.len(), |v| {
            (var_lo[v], var_hi[v])
        });
        let objective = terms.iter().map(|&(v, c)| c * x[v]).sum();
        Ok(Solution {
            status: Status::Optimal,
            x,
            objective,
        })
    }

    /// Solve a whole batch of single-variable probe objectives in one
    /// sweep over the current basis.
    ///
    /// Each probe is `(var, sense)` for the objective `min/max x[var]` —
    /// exactly the box-tightening probes the branch-and-bound engine
    /// issues `2m` of per node. Probes run in slot order against the
    /// evolving basis, exactly like a sequence of
    /// [`IncrementalLp::solve_objective`] calls, with the same pivots
    /// and bitwise-identical answers — the sweep only strips the
    /// per-call overhead:
    ///
    /// - **Support pricing.** A probe's scattered standard-form cost
    ///   vector has at most two nonzero columns (the split halves of a
    ///   free variable), so at most two basic rows contribute to its
    ///   reduced-cost row. Instead of the buffer fills and full-row
    ///   scan [`simplex::reduced_costs_into`] runs per objective swap,
    ///   the sweep finds the support's basic rows with one pass over
    ///   the basis and prices the probe with ≤ 2 chunked row-axpys —
    ///   the same rows, in the same ascending order, with
    ///   bitwise-identical arithmetic.
    /// - **In-place phase 2.** The priced row goes straight into
    ///   [`simplex::run_phase`] as the phase-2 cost row; a probe the
    ///   basis already optimizes *settles* there (one entering scan,
    ///   zero pivots).
    /// - **Shared extraction.** Consecutive probes optimized by the
    ///   same basis (a settled run) share one optimizer extraction;
    ///   `witnesses` receives one point per basis actually extracted
    ///   and each [`ProbeOutcome::Solved`] carries its index.
    ///
    /// A probe whose phase 2 fails (unbounded, iteration limit) comes
    /// back [`ProbeOutcome::Failed`] — the same conditions under which
    /// `solve_objective` would have reported a non-optimal status from
    /// the identical tableau state. A sweep whose probes all settle
    /// performs no pivots, so a saved `pop_row` state stays valid.
    pub fn solve_objectives(
        &mut self,
        probes: &[(usize, Sense)],
        out: &mut Vec<ProbeOutcome>,
        witnesses: &mut Vec<Vec<f64>>,
    ) {
        assert!(!self.pushed, "solve_objectives with a pushed row");
        let form = self.form.expect("solve_objectives before load");
        out.clear();
        witnesses.clear();
        if probes.is_empty() {
            return;
        }
        let w = form.ncols + 1;
        // Extraction of the current basis, shared across a settled run
        // of probes and invalidated when a probe pivots.
        let mut wit_idx: Option<usize> = None;
        for &(var, sense) in probes {
            let sign = match sense {
                Sense::Minimize => 1.0,
                Sense::Maximize => -1.0,
            };
            // Scatter the one-variable objective (≤ 2 std columns) —
            // the same mapping arithmetic `solve_objective` feeds
            // through `scatter_terms`.
            let support: [(usize, f64); 2] = match self.ws.maps[var] {
                VarMap::Shifted { idx, .. } => [(idx, sign), (NO_COL, 0.0)],
                VarMap::Mirrored { idx, .. } => [(idx, -sign), (NO_COL, 0.0)],
                VarMap::Split { pos, neg } => [(pos, sign), (neg, -sign)],
            };
            self.bat.clear();
            self.bat.resize(w, 0.0);
            for &(c, v) in &support {
                if c != NO_COL {
                    self.bat[c] = v;
                }
            }
            // The rows `reduced_costs_into`'s full scan would touch are
            // exactly those whose basic column lies in the support: one
            // pass over the basis finds them in ascending row order.
            // Gather their (row, cost) pairs *before* any axpy mutates
            // the cost entries, then cancel them in that order —
            // bitwise the same arithmetic as the full scan.
            let mut contrib: [(usize, f64); 2] = [(usize::MAX, 0.0); 2];
            let mut nc = 0usize;
            for r in 0..form.rows {
                let b = self.ws.basis[r];
                for &(c, v) in &support {
                    if c != NO_COL && b == c && v != 0.0 {
                        contrib[nc] = (r, v);
                        nc += 1;
                    }
                }
            }
            for &(r, cb) in &contrib[..nc] {
                kernels::axpy(&mut self.bat, -cb, &self.ws.tableau[r * w..(r + 1) * w]);
            }
            // The priced row is the phase-2 cost row: hand it straight
            // to the same `run_phase` call `solve_objective` makes. A
            // probe the basis already optimizes settles in one entering
            // scan with zero pivots.
            let pivots_before = self.ws.pivots;
            let ws = &mut self.ws;
            let mut t = Tableau {
                a: &mut ws.tableau,
                rows: form.rows,
                ncols: form.ncols,
                basis: &mut ws.basis,
                first_artificial: form.first_artificial,
                pivots: &mut ws.pivots,
            };
            let outcome = simplex::run_phase(&mut t, &mut self.bat, form.first_artificial);
            if self.ws.pivots != pivots_before {
                // The basis moved: the cached extraction and any saved
                // pop_row state are stale.
                wit_idx = None;
                self.saved_clean = false;
            }
            if !matches!(outcome, simplex::PhaseOutcome::Done) {
                out.push(ProbeOutcome::Failed);
                continue;
            }
            let idx = match wit_idx {
                Some(i) => i,
                None => {
                    let (var_lo, var_hi) = (&self.var_lo, &self.var_hi);
                    let x = simplex::extract_x(
                        &mut self.ws,
                        form.rows,
                        form.ncols,
                        var_lo.len(),
                        |v| (var_lo[v], var_hi[v]),
                    );
                    witnesses.push(x);
                    wit_idx = Some(witnesses.len() - 1);
                    witnesses.len() - 1
                }
            };
            // `solve_objective` reports `Σ coef·x[var]`, which for the
            // unit-coefficient probe objective is exactly `x[var]`.
            out.push(ProbeOutcome::Solved {
                value: witnesses[idx][var],
                witness: idx,
            });
        }
    }

    /// Append one constraint row and restore feasibility with dual
    /// simplex from the current basis. Returns [`Status::Optimal`] when
    /// the extended region is feasible, [`Status::Infeasible`] when the
    /// row cuts it empty. At most one row may be pushed at a time; call
    /// [`IncrementalLp::pop_row`] to restore the pre-push state (also
    /// required after an `Err`).
    pub fn push_row(
        &mut self,
        terms: &[(usize, f64)],
        op: Op,
        rhs: f64,
    ) -> Result<Status, SolveError> {
        assert!(!self.pushed, "push_row: a row is already pushed");
        let form = self.form.expect("push_row before load");
        assert!(op != Op::Eq, "push_row supports inequality rows only");
        // Save the pre-push state for pop_row — unless the previous
        // pop_row's restore is still byte-identical to the live tableau
        // (the sibling-child case: push A, pop, push B with no probes
        // in between), where the copy would be redundant.
        let w = form.ncols + 1;
        if !self.saved_clean {
            self.saved_tableau.clear();
            self.saved_tableau
                .extend_from_slice(&self.ws.tableau[..form.rows * w]);
            self.saved_basis.clear();
            self.saved_basis
                .extend_from_slice(&self.ws.basis[..form.rows]);
            self.saved_form = Some(form);
        }
        self.saved_clean = false;
        self.pushed = true;

        // Build the row over standard columns in `≤` orientation (the
        // same mapping arithmetic as the cold row builder, shared).
        let n_std = form.n_std;
        self.new_row.clear();
        self.new_row.resize(n_std, 0.0);
        let mut b = rhs;
        simplex::scatter_terms(&self.ws.maps, terms, 1.0, &mut self.new_row, &mut b);
        if op == Op::Ge {
            self.new_row.iter_mut().for_each(|c| *c = -*c);
            b = -b;
        }
        // Equilibrate like the cold build.
        let scale = self.new_row.iter().fold(0.0f64, |mx, c| mx.max(c.abs()));
        if scale > 0.0 {
            let inv = 1.0 / scale;
            self.new_row.iter_mut().for_each(|c| *c *= inv);
            b *= inv;
        }

        // Widen the tableau by one slack column, inserted at the
        // artificial boundary so it stays eligible for pivoting, and
        // append the new row with that slack basic.
        let slack_col = form.first_artificial;
        let new_form = StdForm {
            n_std,
            rows: form.rows + 1,
            ncols: form.ncols + 1,
            first_artificial: form.first_artificial + 1,
            n_art: form.n_art,
        };
        let nw = new_form.ncols + 1;
        self.widen.clear();
        self.widen.resize(new_form.rows * nw, 0.0);
        for r in 0..form.rows {
            let src = &self.ws.tableau[r * w..(r + 1) * w];
            let dst = &mut self.widen[r * nw..(r + 1) * nw];
            dst[..slack_col].copy_from_slice(&src[..slack_col]);
            dst[slack_col + 1..].copy_from_slice(&src[slack_col..]);
        }
        {
            let last = &mut self.widen[form.rows * nw..(form.rows + 1) * nw];
            last[..n_std].copy_from_slice(&self.new_row);
            last[slack_col] = 1.0;
            last[new_form.ncols] = b;
        }
        std::mem::swap(&mut self.ws.tableau, &mut self.widen);
        for bcol in self.ws.basis.iter_mut() {
            if *bcol >= slack_col {
                *bcol += 1;
            }
        }
        self.ws.basis.push(slack_col);
        self.form = Some(new_form);

        // Eliminate the basic columns from the appended row (each basic
        // column is a unit vector, so one saxpy per nonzero entry).
        for r in 0..new_form.rows - 1 {
            let bcol = self.ws.basis[r];
            let factor = self.ws.tableau[(new_form.rows - 1) * nw + bcol];
            if factor.abs() > 1e-12 {
                for j in 0..nw {
                    let v = self.ws.tableau[r * nw + j];
                    self.ws.tableau[(new_form.rows - 1) * nw + j] -= factor * v;
                }
            }
        }

        // Restore feasibility (zero cost row: feasibility is all the
        // callers need, and a zero row is trivially dual feasible).
        self.costs.clear();
        self.costs.resize(new_form.ncols + 1, 0.0);
        let mut t = tableau(&mut self.ws, new_form);
        match dual_restore(&mut t, &mut self.costs) {
            DualOutcome::Feasible => Ok(Status::Optimal),
            DualOutcome::Infeasible => Ok(Status::Infeasible),
            DualOutcome::IterationLimit => Err(SolveError::IterationLimit),
        }
    }

    /// Restore the exact pre-[`IncrementalLp::push_row`] tableau and
    /// basis. No-op if nothing is pushed.
    pub fn pop_row(&mut self) {
        if !self.pushed {
            return;
        }
        let form = self.saved_form.expect("saved state present");
        let w = form.ncols + 1;
        self.ws.tableau.clear();
        self.ws
            .tableau
            .extend_from_slice(&self.saved_tableau[..form.rows * w]);
        self.ws.basis.clear();
        self.ws
            .basis
            .extend_from_slice(&self.saved_basis[..form.rows]);
        self.form = Some(form);
        // The live state now equals the save — the next push_row may
        // reuse it without re-copying.
        self.saved_clean = true;
        self.pushed = false;
    }
}

fn tableau(ws: &mut SimplexWorkspace, form: StdForm) -> Tableau<'_> {
    Tableau {
        a: &mut ws.tableau,
        rows: form.rows,
        ncols: form.ncols,
        basis: &mut ws.basis,
        first_artificial: form.first_artificial,
        pivots: &mut ws.pivots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Op, Problem, Sense, Status};

    /// The node-LP shape: weights on the simplex inside a box, plus
    /// decision half-spaces.
    fn region(m: usize, cuts: &[(Vec<f64>, Op, f64)]) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let w: Vec<usize> = (0..m)
            .map(|j| p.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
            .collect();
        let simplex: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&simplex, Op::Eq, 1.0);
        for (coefs, op, rhs) in cuts {
            let terms: Vec<(usize, f64)> = coefs.iter().enumerate().map(|(j, &c)| (j, c)).collect();
            p.add_constraint(&terms, *op, *rhs);
        }
        p
    }

    /// Cold reference: one fresh two-phase solve per probe objective.
    fn cold_probe(p: &Problem, var: usize, sense: Sense) -> f64 {
        let mut q = p.clone();
        q.set_objective(var, 1.0);
        q.set_sense(sense);
        let s = q.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        s.objective
    }

    #[test]
    fn objective_swaps_match_cold_probes() {
        let p = region(
            4,
            &[
                (vec![1.0, -1.0, 0.5, 0.0], Op::Ge, 1e-4),
                (vec![0.0, 1.0, -1.0, 0.2], Op::Le, 0.0),
            ],
        );
        let mut inc = IncrementalLp::new();
        let status = inc.load(&p, None).unwrap();
        assert_eq!(status, LoadStatus::Feasible { warm: false });
        for j in 0..4 {
            for sense in [Sense::Minimize, Sense::Maximize] {
                let warm = inc.solve_objective(&[(j, 1.0)], sense).unwrap();
                assert_eq!(warm.status, Status::Optimal);
                let cold = cold_probe(&p, j, sense);
                assert!(
                    (warm.objective - cold).abs() < 1e-7,
                    "var {j} {sense:?}: warm {} cold {cold}",
                    warm.objective
                );
            }
        }
    }

    #[test]
    fn batched_sweep_matches_cold_probes_and_repeats_settle() {
        let p = region(
            4,
            &[
                (vec![1.0, -1.0, 0.5, 0.0], Op::Ge, 1e-4),
                (vec![0.0, 1.0, -1.0, 0.2], Op::Le, 0.0),
            ],
        );
        let mut inc = IncrementalLp::new();
        inc.load(&p, None).unwrap();
        let probes: Vec<(usize, Sense)> = (0..4)
            .flat_map(|j| [(j, Sense::Minimize), (j, Sense::Maximize)])
            .collect();
        let mut out = Vec::new();
        let mut wits = Vec::new();
        inc.solve_objectives(&probes, &mut out, &mut wits);
        assert_eq!(out.len(), probes.len());
        // Every probe must come back solved, agree with a cold solve of
        // that objective, and carry a witness that realizes its value.
        for (k, &(j, sense)) in probes.iter().enumerate() {
            let ProbeOutcome::Solved { value, witness } = out[k] else {
                panic!("probe {k} failed in the sweep");
            };
            assert_eq!(wits[witness][j].to_bits(), value.to_bits());
            let cold = cold_probe(&p, j, sense);
            assert!(
                (value - cold).abs() < 1e-7,
                "var {j} {sense:?}: batched {value} cold {cold}"
            );
        }
        // The sweep is a drop-in for sequential objective swaps: run the
        // same probe list through `solve_objective` on a second warm
        // workspace and the values must match bit for bit, pivot for
        // pivot (same basis evolution, cheaper pricing).
        let mut seq = IncrementalLp::new();
        seq.load(&p, None).unwrap();
        for (k, &(j, sense)) in probes.iter().enumerate() {
            let s = seq.solve_objective(&[(j, 1.0)], sense).unwrap();
            let ProbeOutcome::Solved { value, .. } = out[k] else {
                unreachable!()
            };
            assert_eq!(
                s.objective.to_bits(),
                value.to_bits(),
                "var {j} {sense:?}: sweep diverged from sequential swaps"
            );
        }
        assert_eq!(inc.pivots(), seq.pivots(), "sweep pivots ≠ sequential");
        // A probe whose optimum the basis already realizes settles with
        // zero pivots and reproduces the phase-2 answer bit for bit.
        let warm = inc.solve_objective(&[(2, 1.0)], Sense::Minimize).unwrap();
        let before = inc.pivots();
        let mut out2 = Vec::new();
        inc.solve_objectives(&[(2, Sense::Minimize)], &mut out2, &mut wits);
        assert_eq!(inc.pivots(), before, "a settled sweep never pivots");
        match out2[0] {
            ProbeOutcome::Solved { value, .. } => {
                assert_eq!(value.to_bits(), warm.objective.to_bits());
            }
            ProbeOutcome::Failed => panic!("just-optimized objective must settle"),
        }
    }

    #[test]
    fn push_row_feasible_and_infeasible_then_pop_restores() {
        let p = region(3, &[]);
        let mut inc = IncrementalLp::new();
        assert_eq!(
            inc.load(&p, None).unwrap(),
            LoadStatus::Feasible { warm: false }
        );
        let before = inc.solve_objective(&[(0, 1.0)], Sense::Minimize).unwrap();

        // A satisfiable cut: w0 − w1 ≥ 0.1.
        let st = inc.push_row(&[(0, 1.0), (1, -1.0)], Op::Ge, 0.1).unwrap();
        assert_eq!(st, Status::Optimal);
        inc.pop_row();

        // An unsatisfiable cut: w0 + w1 + w2 ≥ 2 on the simplex.
        let st = inc
            .push_row(&[(0, 1.0), (1, 1.0), (2, 1.0)], Op::Ge, 2.0)
            .unwrap();
        assert_eq!(st, Status::Infeasible);
        inc.pop_row();

        // The pre-push state is restored exactly: same probe answer,
        // and further pushes still work.
        let after = inc.solve_objective(&[(0, 1.0)], Sense::Minimize).unwrap();
        assert_eq!(before.objective.to_bits(), after.objective.to_bits());
        let st = inc.push_row(&[(2, 1.0)], Op::Le, 0.5).unwrap();
        assert_eq!(st, Status::Optimal);
        inc.pop_row();
    }

    #[test]
    fn push_row_degenerate_cut_through_current_vertex() {
        // Optimal vertex for min w0 over the simplex puts w0 = 0; the
        // appended row w0 ≤ 0 binds exactly there (dual-degenerate:
        // slack enters at value 0). Must report feasible, not cycle.
        let p = region(3, &[]);
        let mut inc = IncrementalLp::new();
        inc.load(&p, None).unwrap();
        let s = inc.solve_objective(&[(0, 1.0)], Sense::Minimize).unwrap();
        assert!(s.objective.abs() < 1e-9);
        let st = inc.push_row(&[(0, 1.0)], Op::Le, 0.0).unwrap();
        assert_eq!(st, Status::Optimal);
        inc.pop_row();
        // And a cut that is violated by the current vertex but
        // satisfiable elsewhere: w0 ≥ 0.25.
        let st = inc.push_row(&[(0, 1.0)], Op::Ge, 0.25).unwrap();
        assert_eq!(st, Status::Optimal);
        inc.pop_row();
    }

    #[test]
    fn snapshot_warm_starts_child_region() {
        // Parent region; probe it, snapshot, then load the child
        // (parent + one decision row) with the hint.
        let cut1 = (vec![1.0, -1.0, 0.0, 0.3], Op::Ge, 1e-4);
        let parent = region(4, std::slice::from_ref(&cut1));
        let mut inc = IncrementalLp::new();
        assert_eq!(
            inc.load(&parent, None).unwrap(),
            LoadStatus::Feasible { warm: false }
        );
        for j in 0..4 {
            inc.solve_objective(&[(j, 1.0)], Sense::Minimize).unwrap();
        }
        let snap = inc.snapshot();

        let cut2 = (vec![0.0, 1.0, -1.0, 0.1], Op::Le, 0.0);
        let child = region(4, &[cut1, cut2]);
        let pivots_before = inc.pivots();
        let status = inc.load(&child, Some(&snap)).unwrap();
        assert_eq!(status, LoadStatus::Feasible { warm: true });
        let warm_pivots = inc.pivots() - pivots_before;

        // Warm answers agree with cold solves of the child.
        for j in 0..4 {
            for sense in [Sense::Minimize, Sense::Maximize] {
                let warm = inc.solve_objective(&[(j, 1.0)], sense).unwrap();
                let cold = cold_probe(&child, j, sense);
                assert!(
                    (warm.objective - cold).abs() < 1e-7,
                    "var {j} {sense:?}: warm {} cold {cold}",
                    warm.objective
                );
            }
        }

        // And the warm install costs fewer pivots than a cold load of
        // the same child.
        let mut cold_inc = IncrementalLp::new();
        let before = cold_inc.pivots();
        assert_eq!(
            cold_inc.load(&child, None).unwrap(),
            LoadStatus::Feasible { warm: false }
        );
        let cold_pivots = cold_inc.pivots() - before;
        assert!(
            warm_pivots < cold_pivots,
            "warm install {warm_pivots} pivots ≥ cold load {cold_pivots}"
        );
    }

    #[test]
    fn snapshot_detects_infeasible_child() {
        let parent = region(3, &[]);
        let mut inc = IncrementalLp::new();
        inc.load(&parent, None).unwrap();
        inc.solve_objective(&[(0, 1.0)], Sense::Minimize).unwrap();
        let snap = inc.snapshot();
        // Child cut empty: Σw ≥ 2 can never hold on the simplex. The
        // warm path itself concludes it (dual restore, no phase 1).
        let child = region(3, &[(vec![1.0, 1.0, 1.0], Op::Ge, 2.0)]);
        assert_eq!(
            inc.load(&child, Some(&snap)).unwrap(),
            LoadStatus::Infeasible { warm: true }
        );
    }

    #[test]
    fn stale_snapshot_falls_back_to_cold() {
        // A snapshot from an unrelated, larger problem must not poison
        // the load: unresolvable descriptors trigger the cold path.
        let big = region(6, &[(vec![1.0, -1.0, 0.0, 0.0, 0.2, -0.2], Op::Ge, 0.0)]);
        let mut inc = IncrementalLp::new();
        inc.load(&big, None).unwrap();
        let snap = inc.snapshot();
        let small = region(3, &[]);
        let status = inc.load(&small, Some(&snap)).unwrap();
        assert_eq!(status, LoadStatus::Feasible { warm: false });
        let s = inc.solve_objective(&[(1, 1.0)], Sense::Maximize).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn boxed_region_with_shifted_bounds_round_trips() {
        // SYM-GD cells shift the variable bounds away from [0,1]; the
        // standard-form shift moves RHS signs around, flipping row
        // orientations — snapshots must survive that.
        let mut p = Problem::new(Sense::Minimize);
        for j in 0..3 {
            p.add_var(&format!("w{j}"), 0.2, 0.6, 0.0);
        }
        p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Op::Eq, 1.0);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Op::Le, 0.0);
        let mut inc = IncrementalLp::new();
        assert_eq!(
            inc.load(&p, None).unwrap(),
            LoadStatus::Feasible { warm: false }
        );
        inc.solve_objective(&[(2, 1.0)], Sense::Maximize).unwrap();
        let snap = inc.snapshot();
        let mut child = p.clone();
        child.add_constraint(&[(1, 1.0), (2, -1.0)], Op::Ge, 0.05);
        let status = inc.load(&child, Some(&snap)).unwrap();
        assert_eq!(status, LoadStatus::Feasible { warm: true });
        for j in 0..3 {
            let warm = inc.solve_objective(&[(j, 1.0)], Sense::Minimize).unwrap();
            let cold = cold_probe(&child, j, Sense::Minimize);
            assert!((warm.objective - cold).abs() < 1e-7);
        }
    }
}
