//! Dual simplex: restore primal feasibility of a basis that is already
//! dual feasible.
//!
//! The incremental layer lands here after appending a constraint row to
//! an optimal (or at least feasible) tableau: the new row's slack may be
//! basic at a negative value, but the cost row still prices every
//! nonbasic column at ≥ 0. Dual simplex pivots the negative-RHS rows out
//! one at a time — typically one or two pivots for a single added
//! pair-sign constraint, versus a full two-phase solve from scratch.
//!
//! With a zero cost row (the feasibility-only case) every column is
//! dual-degenerate and the ratio test reduces to "largest pivot
//! magnitude", which is also the numerically preferred choice.

use crate::simplex::{Tableau, FEAS_TOL, STALL_LIMIT, TOL};

/// Outcome of a dual-simplex feasibility restore.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DualOutcome {
    /// Every RHS is ≥ −[`TOL`]: the basis is primal feasible (and still
    /// optimal for the cost row the caller maintained).
    Feasible,
    /// Some row has a negative RHS and no negative entry in any
    /// non-artificial column: the system (with artificials pinned to
    /// zero) is infeasible.
    Infeasible,
    /// Exceeded the iteration budget — numerical trouble; the tableau
    /// is left in a valid but unfinished state.
    IterationLimit,
}

/// Run dual-simplex pivots until primal feasible (RHS ≥ 0) or provably
/// infeasible. `cost` must be a dual-feasible reduced-cost row for the
/// current basis (all entries ≥ 0 up to tolerance; a zero row always
/// qualifies) and is updated alongside the pivots.
///
/// Optimality caveat: with a *zero* cost row (every current caller),
/// `Feasible` means the basis is also optimal for it — trivially, all
/// reduced costs stay 0. With a nonzero cost row the anti-cycling Bland
/// fallback enters the smallest-index column *without* the dual ratio
/// test, so dual feasibility (hence optimality) may be lost on stalled
/// instances; callers needing a priced restore must re-run primal phase
/// 2 afterwards.
pub(crate) fn dual_restore(t: &mut Tableau<'_>, cost: &mut [f64]) -> DualOutcome {
    let max_iter = 500 + 200 * (t.rows + t.ncols);
    let mut stall = 0usize;
    let mut last_worst = f64::NEG_INFINITY;
    for _ in 0..max_iter {
        // Leaving row: most negative RHS.
        let mut leave: Option<usize> = None;
        let mut worst = -TOL;
        for r in 0..t.rows {
            let rhs = t.rhs(r);
            if rhs < worst {
                worst = rhs;
                leave = Some(r);
            }
        }
        let Some(row) = leave else {
            return DualOutcome::Feasible;
        };
        let bland = stall >= STALL_LIMIT;
        // Entering column: among non-artificial columns with a negative
        // entry in the leaving row, minimize the dual ratio
        // `cost[j] / −a_rj` (keeps the cost row dual feasible); ties
        // break to the largest |a_rj| for stability. In Bland mode take
        // the smallest eligible index (anti-cycling).
        let mut enter: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for j in 0..t.first_artificial {
            let a = t.at(row, j);
            if a >= -TOL {
                continue;
            }
            if bland {
                enter = Some(j);
                break;
            }
            let ratio = cost[j].max(0.0) / -a;
            let better = if ratio < best_ratio - TOL {
                true
            } else if ratio < best_ratio + TOL {
                match enter {
                    None => true,
                    Some(e) => a.abs() > t.at(row, e).abs(),
                }
            } else {
                false
            };
            if better {
                best_ratio = ratio.min(best_ratio);
                enter = Some(j);
            }
        }
        let Some(col) = enter else {
            // No eligible negative entry: the row reads
            // `Σ (≥0)·(≥0) = rhs < 0` over the artificial-free space.
            // Declare infeasible only past the same [`FEAS_TOL`]
            // leniency the cold phase-1 exit uses — a region whose only
            // points sit exactly on a boundary hyperplane (the ε = 0
            // tie slivers branch-and-bound must not lose) may converge
            // to an RHS a few ulps below zero.
            return if worst >= -FEAS_TOL {
                DualOutcome::Feasible
            } else {
                DualOutcome::Infeasible
            };
        };
        t.pivot(row, col, cost);
        // Progress = the most negative RHS moved toward zero.
        if worst > last_worst + 1e-12 {
            last_worst = worst;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    DualOutcome::IterationLimit
}
