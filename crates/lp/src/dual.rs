//! Dual simplex: restore primal feasibility of a basis that is already
//! dual feasible.
//!
//! The incremental layer lands here after appending a constraint row to
//! an optimal (or at least feasible) tableau: the new row's slack may be
//! basic at a negative value, but the cost row still prices every
//! nonbasic column at ≥ 0. Dual simplex pivots the negative-RHS rows out
//! one at a time — typically one or two pivots for a single added
//! pair-sign constraint, versus a full two-phase solve from scratch.
//!
//! With a zero cost row (the feasibility-only case) every column is
//! dual-degenerate and the ratio test reduces to "largest pivot
//! magnitude", which is also the numerically preferred choice.

use crate::simplex::{self, PhaseOutcome, Tableau, FEAS_TOL, STALL_LIMIT, TOL};
use rankhow_linalg::kernels;

/// Outcome of a dual-simplex feasibility restore.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DualOutcome {
    /// Every RHS is ≥ −[`TOL`]: the basis is primal feasible (and still
    /// optimal for the cost row the caller maintained).
    Feasible,
    /// Some row has a negative RHS and no negative entry in any
    /// non-artificial column: the system (with artificials pinned to
    /// zero) is infeasible.
    Infeasible,
    /// Exceeded the iteration budget — numerical trouble; the tableau
    /// is left in a valid but unfinished state.
    IterationLimit,
}

/// Run dual-simplex pivots until primal feasible (RHS ≥ 0) or provably
/// infeasible. `cost` must be a dual-feasible reduced-cost row for the
/// current basis (all entries ≥ 0 up to tolerance; a zero row always
/// qualifies) and is updated alongside the pivots.
///
/// Optimality: with a *zero* cost row every column is dual-degenerate,
/// so `Feasible` means the basis is trivially optimal for it. With a
/// nonzero cost row dual feasibility can be lost two ways — the
/// anti-cycling Bland fallback enters the smallest-index column
/// *without* the dual ratio test, and the caller's cost row may start
/// mildly infeasible — so before reporting `Feasible` the restore
/// re-prices: if any non-artificial column carries a negative reduced
/// cost, primal phase 2 runs from the (now feasible) basis until the
/// row is clean. `Feasible` therefore always means *feasible and
/// optimal for `cost`*; a phase-2 failure degrades to
/// [`DualOutcome::IterationLimit`] so callers fall back to a cold
/// solve rather than trusting a suboptimal basis.
pub(crate) fn dual_restore(t: &mut Tableau<'_>, cost: &mut [f64]) -> DualOutcome {
    let max_iter = 500 + 200 * (t.rows + t.ncols);
    let mut stall = 0usize;
    let mut last_worst = f64::NEG_INFINITY;
    let w = t.ncols + 1;
    for _ in 0..max_iter {
        // Leaving row: most negative RHS. The RHS column is strided, so
        // the chunked scan gathers 4 entries at a time and folds them in
        // row order — first-wins on exact ties, like the scalar sweep.
        let mut leave: Option<usize> = None;
        let mut worst = -TOL;
        let mut r = 0usize;
        while r < t.rows {
            let lanes = (t.rows - r).min(kernels::LANES);
            let mut rhs = [0.0f64; kernels::LANES];
            for l in 0..lanes {
                rhs[l] = t.a[(r + l) * w + t.ncols];
            }
            for (l, &v) in rhs.iter().enumerate().take(lanes) {
                if v < worst {
                    worst = v;
                    leave = Some(r + l);
                }
            }
            r += lanes;
        }
        let Some(row) = leave else {
            return finish_feasible(t, cost);
        };
        let bland = stall >= STALL_LIMIT;
        // Entering column: among non-artificial columns with a negative
        // entry in the leaving row, minimize the dual ratio
        // `cost[j] / −a_rj` (keeps the cost row dual feasible); ties
        // break to the largest |a_rj| for stability. In Bland mode take
        // the smallest eligible index (anti-cycling). The leaving row is
        // contiguous: Bland reduces to [`kernels::first_below`], and the
        // Dantzig scan batches the speculative ratio divides 4 lanes at
        // a time (ineligible lanes discarded) before folding candidates
        // in column order under the exact scalar tie-break rules — the
        // leader's `|a|` rides along so ties never re-read the tableau.
        let lrow = &t.a[row * w..row * w + t.first_artificial];
        let mut enter: Option<(usize, f64)> = None;
        if bland {
            enter = kernels::first_below(lrow, -TOL).map(|j| (j, lrow[j].abs()));
        } else {
            let mut best_ratio = f64::INFINITY;
            let mut j = 0usize;
            while j < lrow.len() {
                let lanes = (lrow.len() - j).min(kernels::LANES);
                let mut ratios = [0.0f64; kernels::LANES];
                for l in 0..lanes {
                    ratios[l] = cost[j + l].max(0.0) / -lrow[j + l];
                }
                for l in 0..lanes {
                    let a = lrow[j + l];
                    if a >= -TOL {
                        continue;
                    }
                    let ratio = ratios[l];
                    let better = if ratio < best_ratio - TOL {
                        true
                    } else if ratio < best_ratio + TOL {
                        match enter {
                            None => true,
                            Some((_, eabs)) => a.abs() > eabs,
                        }
                    } else {
                        false
                    };
                    if better {
                        best_ratio = ratio.min(best_ratio);
                        enter = Some((j + l, a.abs()));
                    }
                }
                j += lanes;
            }
        }
        let enter = enter.map(|(j, _)| j);
        let Some(col) = enter else {
            // No eligible negative entry: the row reads
            // `Σ (≥0)·(≥0) = rhs < 0` over the artificial-free space.
            // Declare infeasible only past the same [`FEAS_TOL`]
            // leniency the cold phase-1 exit uses — a region whose only
            // points sit exactly on a boundary hyperplane (the ε = 0
            // tie slivers branch-and-bound must not lose) may converge
            // to an RHS a few ulps below zero.
            return if worst >= -FEAS_TOL {
                finish_feasible(t, cost)
            } else {
                DualOutcome::Infeasible
            };
        };
        t.pivot(row, col, cost);
        // Progress = the most negative RHS moved toward zero.
        if worst > last_worst + 1e-12 {
            last_worst = worst;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    DualOutcome::IterationLimit
}

/// Primal feasibility is restored; re-price before reporting
/// [`DualOutcome::Feasible`]. With a zero cost row (the feasibility-only
/// callers) the scan finds nothing negative and this is a no-op; with a
/// nonzero row whose dual feasibility was lost (Bland fallback, or a
/// caller handing in a mildly infeasible row), primal phase 2 runs from
/// the feasible basis so `Feasible` can never mean
/// feasible-but-suboptimal.
fn finish_feasible(t: &mut Tableau<'_>, cost: &mut [f64]) -> DualOutcome {
    let first_art = t.first_artificial;
    if (0..first_art).all(|j| cost[j] >= -TOL) {
        return DualOutcome::Feasible;
    }
    match simplex::run_phase(t, cost, first_art) {
        PhaseOutcome::Done => DualOutcome::Feasible,
        // The callers' regions are bounded, so either failure mode means
        // numerical trouble: degrade to the retry path rather than
        // returning a basis that prices the objective wrong.
        PhaseOutcome::Unbounded | PhaseOutcome::IterationLimit => DualOutcome::IterationLimit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert the postcondition `Feasible` now guarantees: primal
    /// feasible (RHS ≥ −FEAS_TOL) *and* dual feasible over the
    /// non-artificial columns (no negative reduced cost).
    fn assert_feasible_and_optimal(t: &Tableau<'_>, cost: &[f64]) {
        for r in 0..t.rows {
            assert!(t.rhs(r) >= -FEAS_TOL, "row {r} rhs {} negative", t.rhs(r));
        }
        for (j, &c) in cost.iter().take(t.first_artificial).enumerate() {
            assert!(c >= -TOL, "column {j} reduced cost {c} negative");
        }
    }

    #[test]
    fn nonzero_cost_row_is_repriced_before_feasible() {
        // min −x0  s.t.  x0 + x1 + s = 1, all ≥ 0, basis {s}.
        // The RHS is already feasible, so the old code returned
        // `Feasible` immediately — with cost[0] = −1 still negative,
        // i.e. a feasible-but-suboptimal basis (x = 0, objective 0;
        // the optimum is x0 = 1, objective −1). The repaired restore
        // must run phase 2 and land on the optimum.
        let mut a = vec![1.0, 1.0, 1.0, 1.0];
        let mut basis = vec![2usize];
        let mut pivots = 0u64;
        let mut t = Tableau {
            a: &mut a,
            rows: 1,
            ncols: 3,
            basis: &mut basis,
            first_artificial: 3,
            pivots: &mut pivots,
        };
        let mut cost = vec![-1.0, 0.0, 0.0, 0.0];
        assert_eq!(dual_restore(&mut t, &mut cost), DualOutcome::Feasible);
        assert_feasible_and_optimal(&t, &cost);
        assert_eq!(t.basis[0], 0, "x0 must have entered the basis");
        assert!((t.rhs(0) - 1.0).abs() < 1e-9);
        // Objective tracking: the cost row's last entry is −objective.
        assert!((cost[3] - 1.0).abs() < 1e-9, "objective must be −1");
    }

    #[test]
    fn dual_pivot_with_nonzero_cost_stays_optimal() {
        // min x0  s.t.  x0 ≥ 0.5, slack basis primal infeasible
        // (−x0 + s = −0.5, s basic at −0.5) but dual feasible. One dual
        // pivot restores feasibility; the cost row must stay clean.
        let mut a = vec![-1.0, 1.0, -0.5];
        let mut basis = vec![1usize];
        let mut pivots = 0u64;
        let mut t = Tableau {
            a: &mut a,
            rows: 1,
            ncols: 2,
            basis: &mut basis,
            first_artificial: 2,
            pivots: &mut pivots,
        };
        let mut cost = vec![1.0, 0.0, 0.0];
        assert_eq!(dual_restore(&mut t, &mut cost), DualOutcome::Feasible);
        assert_feasible_and_optimal(&t, &cost);
        assert_eq!(t.basis[0], 0);
        assert!((t.rhs(0) - 0.5).abs() < 1e-9);
        assert!((cost[2] + 0.5).abs() < 1e-9, "objective must be 0.5");
    }

    #[test]
    fn zero_cost_row_restore_is_untouched_by_the_repair() {
        // The feasibility-only case every incremental-layer caller uses:
        // a zero cost row is trivially dual feasible, so the repair must
        // not pivot (the basis the dual restore found is kept as-is).
        let mut a = vec![-1.0, 1.0, -0.5];
        let mut basis = vec![1usize];
        let mut pivots = 0u64;
        let mut t = Tableau {
            a: &mut a,
            rows: 1,
            ncols: 2,
            basis: &mut basis,
            first_artificial: 2,
            pivots: &mut pivots,
        };
        let mut cost = vec![0.0, 0.0, 0.0];
        assert_eq!(dual_restore(&mut t, &mut cost), DualOutcome::Feasible);
        assert_feasible_and_optimal(&t, &cost);
        assert_eq!(pivots, 1, "exactly the one dual pivot, no phase-2 work");
        assert!(cost.iter().all(|&c| c == 0.0));
    }
}
