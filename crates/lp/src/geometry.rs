//! Geometric helpers over LP feasible regions.
//!
//! The TREE baseline must *sample a weight vector from each arrangement
//! cell* (paper Section VI-B notes it samples from partitions), and the
//! RankHow branch-and-bound samples interior points as incumbent
//! candidates. A point deep inside the cell is far more robust than a
//! vertex returned by plain phase-1 simplex — vertices sit exactly on the
//! indicator hyperplanes being branched on, where the indicator value is
//! ambiguous. The Chebyshev center (center of the largest inscribed ball)
//! is the canonical choice.

use crate::model::{Op, Problem, Sense, Status};
use crate::simplex::{SimplexWorkspace, SolveError};

/// Compute a Chebyshev-style interior point of the feasible region of
/// `problem` (its objective is ignored; only constraints/bounds are used).
///
/// Equality constraints are kept as equalities (the ball is inscribed
/// within the affine subspace they define — radius is measured only
/// against inequality constraints and bounds). Returns `None` if the
/// region is empty.
pub fn chebyshev_center(problem: &Problem) -> Result<Option<Vec<f64>>, SolveError> {
    chebyshev_center_with(problem, &mut SimplexWorkspace::new())
}

/// [`chebyshev_center`] with caller-owned simplex scratch buffers (the
/// incumbent-sampling path of the branch-and-bound engine calls this once
/// per node).
pub fn chebyshev_center_with(
    problem: &Problem,
    ws: &mut SimplexWorkspace,
) -> Result<Option<Vec<f64>>, SolveError> {
    let n = problem.num_vars();
    let mut p = Problem::new(Sense::Maximize);
    // Mirror the structural variables (bounds become inequality rows so
    // that the radius also pushes away from the bounds).
    for i in 0..n {
        p.add_var(problem.var_name(i), f64::NEG_INFINITY, f64::INFINITY, 0.0);
    }
    let radius = p.add_var("__radius", 0.0, f64::INFINITY, 1.0);

    // Bounds as ball-shifted inequalities: x_i − r ≥ lo, x_i + r ≤ hi.
    for i in 0..n {
        let (lo, hi) = problem.bounds(i);
        if lo.is_finite() {
            p.add_constraint(&[(i, 1.0), (radius, -1.0)], Op::Ge, lo);
        }
        if hi.is_finite() {
            p.add_constraint(&[(i, 1.0), (radius, 1.0)], Op::Le, hi);
        }
    }
    for c in constraints(problem) {
        let norm: f64 = c.terms.iter().map(|&(_, cf)| cf * cf).sum::<f64>().sqrt();
        let mut terms = c.terms.clone();
        match c.op {
            Op::Le => {
                terms.push((radius, norm));
                p.add_constraint(&terms, Op::Le, c.rhs);
            }
            Op::Ge => {
                terms.push((radius, -norm));
                p.add_constraint(&terms, Op::Ge, c.rhs);
            }
            Op::Eq => {
                p.add_constraint(&terms, Op::Eq, c.rhs);
            }
        }
    }
    // Keep the radius bounded so a full-dimensional unbounded region does
    // not make the LP unbounded.
    p.add_constraint(&[(radius, 1.0)], Op::Le, 1e6);

    let sol = p.solve_with(ws)?;
    match sol.status {
        Status::Optimal => Ok(Some(sol.x[..n].to_vec())),
        Status::Infeasible => Ok(None),
        Status::Unbounded => Ok(None),
    }
}

/// Tightest `[lo, hi]` interval of the linear form `Σ coef·x` over the
/// feasible region, obtained by minimizing and maximizing it. Returns
/// `None` if the region is empty.
pub fn box_range(
    problem: &Problem,
    terms: &[(usize, f64)],
) -> Result<Option<(f64, f64)>, SolveError> {
    let mut lo_p = problem.clone();
    for i in 0..lo_p.num_vars() {
        lo_p.set_objective(i, 0.0);
    }
    let mut hi_p = lo_p.clone();
    for &(v, c) in terms {
        lo_p.set_objective(v, c);
        hi_p.set_objective(v, c);
    }
    let lo_sol = with_sense(&lo_p, Sense::Minimize).solve()?;
    if lo_sol.status == Status::Infeasible {
        return Ok(None);
    }
    let hi_sol = with_sense(&hi_p, Sense::Maximize).solve()?;
    let lo = match lo_sol.status {
        Status::Optimal => lo_sol.objective,
        _ => f64::NEG_INFINITY,
    };
    let hi = match hi_sol.status {
        Status::Optimal => hi_sol.objective,
        Status::Infeasible => return Ok(None),
        Status::Unbounded => f64::INFINITY,
    };
    Ok(Some((lo, hi)))
}

fn with_sense(p: &Problem, sense: Sense) -> Problem {
    let mut q = p.clone();
    q.set_sense(sense);
    q
}

impl Problem {
    /// Change the optimization sense.
    pub fn set_sense(&mut self, sense: Sense) {
        self.sense = sense;
    }
}

fn constraints(p: &Problem) -> &[crate::model::Constraint] {
    &p.constraints
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_of_unit_square() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 0.0, 1.0, 0.0);
        p.add_var("y", 0.0, 1.0, 0.0);
        let c = chebyshev_center(&p).unwrap().unwrap();
        assert!((c[0] - 0.5).abs() < 1e-6, "{c:?}");
        assert!((c[1] - 0.5).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn center_respects_halfspace() {
        // Unit square cut by x + y ≤ 1: the inscribed ball center of the
        // triangle is at (1−1/√2, 1−1/√2) ≈ (0.2929, 0.2929).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        let y = p.add_var("y", 0.0, 1.0, 0.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Le, 1.0);
        let c = chebyshev_center(&p).unwrap().unwrap();
        let expect = 1.0 - 1.0 / 2f64.sqrt();
        assert!((c[0] - expect).abs() < 1e-6, "{c:?}");
        assert!((c[1] - expect).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn center_on_simplex_equality() {
        // Σw = 1 over 3 weights: center should be the barycenter-ish
        // interior point, strictly inside every bound.
        let mut p = Problem::new(Sense::Minimize);
        let w: Vec<_> = (0..3)
            .map(|i| p.add_var(&format!("w{i}"), 0.0, 1.0, 0.0))
            .collect();
        p.add_constraint(&[(w[0], 1.0), (w[1], 1.0), (w[2], 1.0)], Op::Eq, 1.0);
        let c = chebyshev_center(&p).unwrap().unwrap();
        let sum: f64 = c.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for v in &c {
            assert!(*v > 0.05, "interior: {c:?}");
        }
    }

    #[test]
    fn center_empty_region_is_none() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        p.add_constraint(&[(x, 1.0)], Op::Ge, 2.0);
        assert!(chebyshev_center(&p).unwrap().is_none());
    }

    #[test]
    fn box_range_of_linear_form() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        let y = p.add_var("y", 0.0, 2.0, 0.0);
        let (lo, hi) = box_range(&p, &[(x, 1.0), (y, 2.0)]).unwrap().unwrap();
        assert!((lo - 0.0).abs() < 1e-9);
        assert!((hi - 5.0).abs() < 1e-9);
    }

    #[test]
    fn box_range_empty() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        p.add_constraint(&[(x, 1.0)], Op::Ge, 3.0);
        assert!(box_range(&p, &[(x, 1.0)]).unwrap().is_none());
    }
}
