//! Two-phase dense primal simplex.
//!
//! Standard-form conversion: every structural variable is shifted/mirrored/
//! split so the internal variables satisfy `x ≥ 0`; finite upper bounds
//! become explicit rows; `≤` rows get slacks, `≥` rows surplus+artificial,
//! `=` rows artificials. Phase 1 minimizes the artificial sum; phase 2 the
//! (internally always minimized) objective.
//!
//! All scratch storage lives in a [`SimplexWorkspace`]: the branch-and-
//! bound node loop solves thousands of near-identical LPs, and rebuilding
//! the tableau in place (instead of allocating maps/rows/tableau/cost
//! vectors per solve) keeps that loop allocation-free after warm-up.

use crate::model::{Op, Problem, Sense, Solution, Status};
use rankhow_linalg::kernels;

/// Pivot tolerance: entries smaller than this are treated as zero.
pub(crate) const TOL: f64 = 1e-9;
/// Entering tolerance: reduced costs above `−ENTER_TOL` do not justify a
/// pivot (looser than `TOL` to stop numerical churn near the optimum).
pub(crate) const ENTER_TOL: f64 = 1e-8;
/// Phase-1 objective above this value means infeasible.
pub(crate) const FEAS_TOL: f64 = 1e-7;
/// Iterations with no objective improvement before switching to Bland.
pub(crate) const STALL_LIMIT: usize = 64;

/// Hard solver failures (distinct from Infeasible/Unbounded outcomes,
/// which are valid answers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// Exceeded the iteration budget — numerical trouble.
    IterationLimit,
    /// The model contains a variable with `lo = -inf, hi = -inf` etc.
    InvalidModel(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::InvalidModel(m) => write!(f, "invalid model: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// How a structural variable maps onto standard-form variables.
#[derive(Clone, Copy, Debug)]
pub(crate) enum VarMap {
    /// `x = x'_idx + shift` (lower bound shifted to zero).
    Shifted { idx: usize, shift: f64 },
    /// `x = mirror − x'_idx` (only an upper bound exists).
    Mirrored { idx: usize, mirror: f64 },
    /// `x = x'_pos − x'_neg` (free variable).
    Split { pos: usize, neg: usize },
}

/// Marker for "this row has no slack/artificial column".
pub(crate) const NO_COL: usize = usize::MAX;

/// Scatter a sparse linear form over structural variables into
/// standard-form columns (`out[col] ± sign·coef` per [`VarMap`]),
/// folding the Shifted/Mirrored offsets into `rhs` term by term — the
/// one copy of the variable-mapping arithmetic shared by the cold row
/// builder and the incremental layer's row pushes and objective swaps
/// (warm ≡ cold depends on these staying identical, down to the
/// per-term rounding order).
pub(crate) fn scatter_terms(
    maps: &[VarMap],
    terms: &[(usize, f64)],
    sign: f64,
    out: &mut [f64],
    rhs: &mut f64,
) {
    for &(var, coef) in terms {
        match maps[var] {
            VarMap::Shifted { idx, shift } => {
                out[idx] += sign * coef;
                *rhs -= coef * shift;
            }
            VarMap::Mirrored { idx, mirror } => {
                out[idx] -= sign * coef;
                *rhs -= coef * mirror;
            }
            VarMap::Split { pos, neg } => {
                out[pos] += sign * coef;
                out[neg] -= sign * coef;
            }
        }
    }
}

/// Shape of one standard-form build (see [`build_standard`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct StdForm {
    /// Standard (shifted/mirrored/split) structural variables.
    pub n_std: usize,
    /// Tableau rows: model constraints first, then upper-bound rows.
    pub rows: usize,
    /// Total columns excluding the RHS.
    pub ncols: usize,
    /// Columns ≥ this index are artificial.
    pub first_artificial: usize,
    /// Number of artificial columns.
    pub n_art: usize,
}

/// Reusable scratch buffers for [`Problem::solve_with`]. One workspace
/// serves any sequence of problems (buffers are cleared and regrown as
/// needed); it is `Send`, so parallel search engines keep one per worker.
#[derive(Default)]
pub struct SimplexWorkspace {
    pub(crate) maps: Vec<VarMap>,
    pub(crate) ub_rows: Vec<(usize, f64)>,
    /// Flattened standard-form rows: `n_rows × n_std` coefficients.
    row_coefs: Vec<f64>,
    row_meta: Vec<(Op, f64)>,
    /// Tableau storage: `n_rows × (ncols + 1)` (last column = RHS).
    pub(crate) tableau: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    /// Reduced-cost row (length `ncols + 1`).
    pub(crate) cost: Vec<f64>,
    /// Phase objective coefficients (length `ncols`).
    pub(crate) obj: Vec<f64>,
    /// Standard-variable values for extraction.
    pub(crate) std_vals: Vec<f64>,
    /// Per row: its slack/surplus column ([`NO_COL`] for `=` rows).
    pub(crate) row_slack: Vec<usize>,
    /// Per row: its artificial column ([`NO_COL`] for `≤` rows).
    pub(crate) row_art: Vec<usize>,
    /// Monotone count of Gauss-Jordan pivots performed on this
    /// workspace's tableau (simplex iterations + basis installs) — the
    /// LP-work meter behind `SolverStats::lp_pivots`.
    pub(crate) pivots: u64,
}

impl SimplexWorkspace {
    /// A fresh, empty workspace.
    ///
    /// One workspace outlives any sequence of differently shaped
    /// problems: `solve_with` rebuilds all state from scratch on each
    /// call, only the *capacity* persists. The scheduler's workers
    /// exploit this by keeping one workspace per thread across *jobs*,
    /// not just across the nodes of one search.
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }

    /// Total Gauss-Jordan pivots ever performed through this workspace.
    /// Monotone; never reset. Comparing the counter around a batch of
    /// solves measures the simplex work they cost.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }
}

pub(crate) struct Tableau<'w> {
    /// `rows × (ncols + 1)`; last column is the RHS.
    pub(crate) a: &'w mut [f64],
    pub(crate) rows: usize,
    pub(crate) ncols: usize,
    pub(crate) basis: &'w mut [usize],
    /// Index of the first artificial column (columns ≥ this are artificial).
    pub(crate) first_artificial: usize,
    /// Pivot counter (accumulates into the owning workspace).
    pub(crate) pivots: &'w mut u64,
}

impl Tableau<'_> {
    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.ncols + 1) + c]
    }
    #[inline]
    pub(crate) fn rhs(&self, r: usize) -> f64 {
        self.a[r * (self.ncols + 1) + self.ncols]
    }
    #[inline]
    pub(crate) fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * (self.ncols + 1) + c] = v;
    }

    /// Gauss-Jordan pivot at (row, col), updating a cost row alongside.
    ///
    /// The row sweeps run through the chunked [`kernels`]: `y −= f·p`
    /// is computed as `y += (−f)·p`, which IEEE 754 guarantees bitwise
    /// identical (subtraction is addition of the negation, and negating
    /// a product only flips its sign bit), so the vectorized pivot
    /// produces the exact tableau the scalar loop did.
    pub(crate) fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        *self.pivots += 1;
        let w = self.ncols + 1;
        let pivot = self.at(row, col);
        debug_assert!(pivot.abs() > TOL, "pivot too small");
        let inv = 1.0 / pivot;
        kernels::scale(&mut self.a[row * w..(row + 1) * w], inv);
        // Clean the pivot column exactly.
        self.set(row, col, 1.0);
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor.abs() <= TOL {
                self.set(r, col, 0.0);
                continue;
            }
            // Borrow the pivot row and target row disjointly.
            let (prow, trow) = if row < r {
                let (lo, hi) = self.a.split_at_mut(r * w);
                (&lo[row * w..(row + 1) * w], &mut hi[..w])
            } else {
                let (lo, hi) = self.a.split_at_mut(row * w);
                (&hi[..w], &mut lo[r * w..(r + 1) * w])
            };
            kernels::axpy(trow, -factor, prow);
            self.set(r, col, 0.0);
        }
        let factor = cost[col];
        if factor.abs() > 0.0 {
            kernels::axpy(cost, -factor, &self.a[row * w..(row + 1) * w]);
            cost[col] = 0.0;
        }
        self.basis[row] = col;
    }
}

/// Reduced-cost row for cost vector `c` (length ncols) under the current
/// basis, written into `out` (resized to `ncols + 1`; the last entry is
/// `−(current objective value)`).
pub(crate) fn reduced_costs_into(t: &Tableau<'_>, c: &[f64], out: &mut Vec<f64>) {
    let w = t.ncols + 1;
    out.clear();
    out.resize(w, 0.0);
    out[..t.ncols].copy_from_slice(c);
    for row in 0..t.rows {
        let cb = c[t.basis[row]];
        if cb != 0.0 {
            // `out −= cb·row` as `out += (−cb)·row`: bitwise identical
            // (see [`Tableau::pivot`]).
            kernels::axpy(out, -cb, &t.a[row * w..(row + 1) * w]);
        }
    }
}

pub(crate) enum PhaseOutcome {
    Done,
    Unbounded,
    IterationLimit,
}

/// Run simplex iterations until optimal for the given cost row. Columns
/// `< limit` may enter (both callers' eligibility sets are prefixes:
/// every column in phase 1, the non-artificial columns in phase 2), so
/// the entering scans run as chunked kernels over `cost[..limit]`.
///
/// Pivot selection is bit-for-bit the historical scalar scan:
/// [`kernels::argmin_first`] keeps the lowest-index minimum exactly like
/// the strict `rc < best` sweep did, [`kernels::first_below`] is Bland's
/// rule verbatim, and the ratio test batches only the *arithmetic*
/// (4 strided column entries and their speculative divides per chunk,
/// ineligible lanes discarded) while folding candidates in row order
/// under the original tolerance-band tie-breaks.
pub(crate) fn run_phase(t: &mut Tableau<'_>, cost: &mut [f64], limit: usize) -> PhaseOutcome {
    let max_iter = 500 + 200 * (t.rows + t.ncols);
    let mut stall = 0usize;
    let mut last_obj = f64::INFINITY;
    let w = t.ncols + 1;
    for _ in 0..max_iter {
        let bland = stall >= STALL_LIMIT;
        // Entering column.
        let enter = if bland {
            kernels::first_below(&cost[..limit], -ENTER_TOL)
        } else {
            match kernels::argmin_first(&cost[..limit]) {
                Some((j, rc)) if rc < -ENTER_TOL => Some(j),
                _ => None,
            }
        };
        let Some(col) = enter else {
            return PhaseOutcome::Done;
        };
        // Ratio test (leaving row). In Bland mode ties break by smallest
        // basis index (termination guarantee); in Dantzig mode prefer
        // the largest pivot element among ties (numerical stability).
        // The leader's column entry rides along in `leave` so the tie
        // comparison never re-reads the tableau.
        let mut leave: Option<(usize, f64)> = None;
        let mut best_ratio = f64::INFINITY;
        let mut r = 0usize;
        while r < t.rows {
            let lanes = (t.rows - r).min(kernels::LANES);
            let mut arcs = [0.0f64; kernels::LANES];
            let mut ratios = [0.0f64; kernels::LANES];
            for l in 0..lanes {
                let arc = t.a[(r + l) * w + col];
                arcs[l] = arc;
                ratios[l] = t.a[(r + l) * w + t.ncols] / arc;
            }
            for l in 0..lanes {
                let arc = arcs[l];
                if arc <= TOL {
                    continue;
                }
                let ratio = ratios[l];
                let better = if ratio < best_ratio - TOL {
                    true
                } else if ratio < best_ratio + TOL {
                    match leave {
                        None => true,
                        Some((lr, larc)) => {
                            if bland {
                                t.basis[r + l] < t.basis[lr]
                            } else {
                                arc > larc
                            }
                        }
                    }
                } else {
                    false
                };
                if better {
                    best_ratio = ratio.min(best_ratio);
                    leave = Some((r + l, arc));
                }
            }
            r += lanes;
        }
        let Some((row, _)) = leave else {
            return PhaseOutcome::Unbounded;
        };
        t.pivot(row, col, cost);
        let obj = -cost[t.ncols];
        if obj < last_obj - 1e-12 {
            last_obj = obj;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    PhaseOutcome::IterationLimit
}

/// Build the standard-form tableau for `problem` into `ws` and return
/// its shape. On return the tableau holds the raw rows with the initial
/// slack/artificial basis (`ws.basis`), and `ws.row_slack`/`ws.row_art`
/// record each row's slack and artificial columns — the layout tables
/// the incremental layer's basis snapshots are expressed against.
pub(crate) fn build_standard(
    problem: &Problem,
    ws: &mut SimplexWorkspace,
) -> Result<StdForm, SolveError> {
    // ---- 1. Map structural variables to standard-form variables. ----
    ws.maps.clear();
    ws.ub_rows.clear();
    let mut n_std = 0usize;
    for v in &problem.vars {
        if v.lo.is_infinite() && v.lo > 0.0 || v.hi.is_infinite() && v.hi < 0.0 {
            return Err(SolveError::InvalidModel(format!(
                "variable {} has inverted infinite bounds",
                v.name
            )));
        }
        if v.lo.is_finite() {
            let idx = n_std;
            n_std += 1;
            if v.hi.is_finite() {
                ws.ub_rows.push((idx, v.hi - v.lo));
            }
            ws.maps.push(VarMap::Shifted { idx, shift: v.lo });
        } else if v.hi.is_finite() {
            let idx = n_std;
            n_std += 1;
            ws.maps.push(VarMap::Mirrored { idx, mirror: v.hi });
        } else {
            let pos = n_std;
            let neg = n_std + 1;
            n_std += 2;
            ws.maps.push(VarMap::Split { pos, neg });
        }
    }

    // ---- 2. Build rows in standard variables with b on the right. ----
    // Flattened: row r occupies `row_coefs[r·n_std .. (r+1)·n_std]`.
    let m = problem.constraints.len() + ws.ub_rows.len();
    ws.row_coefs.clear();
    ws.row_coefs.resize(m * n_std, 0.0);
    ws.row_meta.clear();
    for (r, c) in problem.constraints.iter().enumerate() {
        let coefs = &mut ws.row_coefs[r * n_std..(r + 1) * n_std];
        let mut rhs = c.rhs;
        scatter_terms(&ws.maps, &c.terms, 1.0, coefs, &mut rhs);
        ws.row_meta.push((c.op, rhs));
    }
    for (u, &(idx, ub)) in ws.ub_rows.iter().enumerate() {
        let r = problem.constraints.len() + u;
        ws.row_coefs[r * n_std + idx] = 1.0;
        ws.row_meta.push((Op::Le, ub));
    }

    // Row equilibration: scale each row by its max |coef| for stability.
    for (r, (_, rhs)) in ws.row_meta.iter_mut().enumerate() {
        let coefs = &mut ws.row_coefs[r * n_std..(r + 1) * n_std];
        let scale = coefs.iter().fold(0.0f64, |mx, c| mx.max(c.abs()));
        if scale > 0.0 {
            let inv = 1.0 / scale;
            coefs.iter_mut().for_each(|c| *c *= inv);
            *rhs *= inv;
        }
    }

    // Normalize RHS ≥ 0.
    for (r, (op, rhs)) in ws.row_meta.iter_mut().enumerate() {
        if *rhs < 0.0 {
            let coefs = &mut ws.row_coefs[r * n_std..(r + 1) * n_std];
            coefs.iter_mut().for_each(|c| *c = -*c);
            *rhs = -*rhs;
            *op = match *op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
    }

    // ---- 3. Count slack/artificial columns and lay out the tableau. ----
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for (op, _) in &ws.row_meta {
        match op {
            Op::Le => n_slack += 1,
            Op::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Op::Eq => n_art += 1,
        }
    }
    let ncols = n_std + n_slack + n_art;
    let w = ncols + 1;
    ws.tableau.clear();
    ws.tableau.resize(m * w, 0.0);
    ws.basis.clear();
    ws.basis.resize(m, 0);
    ws.row_slack.clear();
    ws.row_slack.resize(m, NO_COL);
    ws.row_art.clear();
    ws.row_art.resize(m, NO_COL);
    let mut t = Tableau {
        a: &mut ws.tableau,
        rows: m,
        ncols,
        basis: &mut ws.basis,
        first_artificial: n_std + n_slack,
        pivots: &mut ws.pivots,
    };
    let mut slack_cursor = n_std;
    let mut art_cursor = n_std + n_slack;
    for (i, &(op, rhs)) in ws.row_meta.iter().enumerate() {
        let coefs = &ws.row_coefs[i * n_std..(i + 1) * n_std];
        for (j, &cf) in coefs.iter().enumerate() {
            t.set(i, j, cf);
        }
        t.set(i, ncols, rhs);
        match op {
            Op::Le => {
                t.set(i, slack_cursor, 1.0);
                t.basis[i] = slack_cursor;
                ws.row_slack[i] = slack_cursor;
                slack_cursor += 1;
            }
            Op::Ge => {
                t.set(i, slack_cursor, -1.0);
                ws.row_slack[i] = slack_cursor;
                slack_cursor += 1;
                t.set(i, art_cursor, 1.0);
                t.basis[i] = art_cursor;
                ws.row_art[i] = art_cursor;
                art_cursor += 1;
            }
            Op::Eq => {
                t.set(i, art_cursor, 1.0);
                t.basis[i] = art_cursor;
                ws.row_art[i] = art_cursor;
                art_cursor += 1;
            }
        }
    }
    Ok(StdForm {
        n_std,
        rows: m,
        ncols,
        first_artificial: n_std + n_slack,
        n_art,
    })
}

/// Phase 1 over a freshly built tableau: minimize the artificial sum,
/// then drive residual artificials out of the basis. Returns whether a
/// feasible basis was reached (`false` = the problem is infeasible).
pub(crate) fn phase1(ws: &mut SimplexWorkspace, form: StdForm) -> Result<bool, SolveError> {
    if form.n_art == 0 {
        return Ok(true);
    }
    let ncols = form.ncols;
    let w = ncols + 1;
    let mut t = Tableau {
        a: &mut ws.tableau,
        rows: form.rows,
        ncols,
        basis: &mut ws.basis,
        first_artificial: form.first_artificial,
        pivots: &mut ws.pivots,
    };
    ws.obj.clear();
    ws.obj.resize(ncols, 0.0);
    for j in t.first_artificial..ncols {
        ws.obj[j] = 1.0;
    }
    reduced_costs_into(&t, &ws.obj, &mut ws.cost);
    match run_phase(&mut t, &mut ws.cost, ncols) {
        PhaseOutcome::Done => {}
        // Phase 1 objective is bounded below by 0; unbounded = bug.
        PhaseOutcome::Unbounded => return Err(SolveError::IterationLimit),
        PhaseOutcome::IterationLimit => return Err(SolveError::IterationLimit),
    }
    let phase1_obj = -ws.cost[ncols];
    if phase1_obj > FEAS_TOL {
        return Ok(false);
    }
    // Drive artificials out of the basis (they are all at value 0).
    // Pick the largest-magnitude pivot for numerical stability.
    for row in 0..t.rows {
        if t.basis[row] >= t.first_artificial {
            let col = (0..t.first_artificial)
                .filter(|&j| t.at(row, j).abs() > 1e-7)
                .max_by(|&a, &b| t.at(row, a).abs().total_cmp(&t.at(row, b).abs()));
            if let Some(col) = col {
                ws.obj.clear();
                ws.obj.resize(w, 0.0);
                t.pivot(row, col, &mut ws.obj);
            }
            // else: redundant row; harmless to keep (all-zero in
            // non-artificial columns, rhs 0).
        }
    }
    Ok(true)
}

/// Solve `problem`; with `feasibility_only` stop after phase 1. All
/// scratch storage comes from (and stays in) `ws`.
pub(crate) fn solve(
    problem: &Problem,
    feasibility_only: bool,
    ws: &mut SimplexWorkspace,
) -> Result<Solution, SolveError> {
    let form = build_standard(problem, ws)?;
    let ncols = form.ncols;

    // ---- 4. Phase 1: minimize artificial sum. ----
    if !phase1(ws, form)? {
        return Ok(Solution {
            status: Status::Infeasible,
            x: vec![0.0; problem.vars.len()],
            objective: f64::NAN,
        });
    }
    let mut t = Tableau {
        a: &mut ws.tableau,
        rows: form.rows,
        ncols,
        basis: &mut ws.basis,
        first_artificial: form.first_artificial,
        pivots: &mut ws.pivots,
    };

    // ---- 5. Phase 2. ----
    ws.obj.clear();
    ws.obj.resize(ncols, 0.0);
    let obj_sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for (v, map) in problem.vars.iter().zip(&ws.maps) {
        match *map {
            VarMap::Shifted { idx, .. } => ws.obj[idx] += obj_sign * v.obj,
            VarMap::Mirrored { idx, .. } => ws.obj[idx] -= obj_sign * v.obj,
            VarMap::Split { pos, neg } => {
                ws.obj[pos] += obj_sign * v.obj;
                ws.obj[neg] -= obj_sign * v.obj;
            }
        }
    }
    if !feasibility_only {
        let first_art = t.first_artificial;
        reduced_costs_into(&t, &ws.obj, &mut ws.cost);
        match run_phase(&mut t, &mut ws.cost, first_art) {
            PhaseOutcome::Done => {}
            PhaseOutcome::Unbounded => {
                return Ok(Solution {
                    status: Status::Unbounded,
                    x: vec![0.0; problem.vars.len()],
                    objective: match problem.sense {
                        Sense::Minimize => f64::NEG_INFINITY,
                        Sense::Maximize => f64::INFINITY,
                    },
                });
            }
            PhaseOutcome::IterationLimit => return Err(SolveError::IterationLimit),
        }
    }

    // ---- 6. Extract the solution. ----
    let x = extract_x(ws, form.rows, ncols, problem.vars.len(), |v| {
        (problem.vars[v].lo, problem.vars[v].hi)
    });
    let objective = problem.objective_at(&x);
    Ok(Solution {
        status: Status::Optimal,
        x,
        objective,
    })
}

/// Read the structural-variable values out of the tableau's current
/// basis: basic values land in `ws.std_vals`, the [`VarMap`]s un-map
/// them, and tiny roundoff bound violations are clamped away. One
/// helper shared by the cold solve and the incremental layer, so warm
/// and cold extraction can never drift apart.
pub(crate) fn extract_x(
    ws: &mut SimplexWorkspace,
    rows: usize,
    ncols: usize,
    nvars: usize,
    bounds: impl Fn(usize) -> (f64, f64),
) -> Vec<f64> {
    ws.std_vals.clear();
    ws.std_vals.resize(ncols, 0.0);
    for row in 0..rows {
        ws.std_vals[ws.basis[row]] = ws.tableau[row * (ncols + 1) + ncols];
    }
    (0..nvars)
        .map(|v| {
            let raw = match ws.maps[v] {
                VarMap::Shifted { idx, shift } => ws.std_vals[idx] + shift,
                VarMap::Mirrored { idx, mirror } => mirror - ws.std_vals[idx],
                VarMap::Split { pos, neg } => ws.std_vals[pos] - ws.std_vals[neg],
            };
            let (lo, hi) = bounds(v);
            raw.clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::SimplexWorkspace;
    use crate::model::{Op, Problem, Sense, Status};

    #[test]
    fn textbook_maximization() {
        // Dantzig's classic: max 3x+5y, x≤4, 2y≤12, 3x+2y≤18.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint(&[(x, 1.0)], Op::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Op::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Op::Le, 18.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-9);
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 3y ≥ 6 → optimum at (3,1): 9.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Ge, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Op::Ge, 6.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 9.0).abs() < 1e-9, "obj {}", s.objective);
        assert!(p.violation_at(&s.x) < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 3, x,y ∈ [0, 10] → (0, 1.5): 1.5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        let y = p.add_var("y", 0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Op::Eq, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.5).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Op::Ge, 2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Op::Le, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn one_workspace_serves_interleaved_heterogeneous_problems() {
        // The scheduler keeps one workspace per worker for its whole
        // life, hopping between jobs whose LPs differ in variable and
        // constraint counts. Interleave three shapes repeatedly and
        // check every answer matches a fresh-workspace solve
        // bit-for-bit.
        let mut problems: Vec<Problem> = Vec::new();
        // Shape 1: 2 vars, 3 ≤-rows (needs no phase 1).
        let mut a = Problem::new(Sense::Maximize);
        let x = a.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = a.add_var("y", 0.0, f64::INFINITY, 5.0);
        a.add_constraint(&[(x, 1.0)], Op::Le, 4.0);
        a.add_constraint(&[(y, 2.0)], Op::Le, 12.0);
        a.add_constraint(&[(x, 3.0), (y, 2.0)], Op::Le, 18.0);
        problems.push(a);
        // Shape 2: 4 bounded vars on a simplex row (the node-LP shape).
        let mut b = Problem::new(Sense::Minimize);
        let w: Vec<usize> = (0..4)
            .map(|j| b.add_var(&format!("w{j}"), 0.0, 1.0, (j as f64) - 1.5))
            .collect();
        let row: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
        b.add_constraint(&row, Op::Eq, 1.0);
        b.add_constraint(&[(w[0], 1.0), (w[2], -1.0)], Op::Ge, 0.1);
        problems.push(b);
        // Shape 3: 1 var, infeasible (exercises the phase-1 exit).
        let mut c = Problem::new(Sense::Minimize);
        let z = c.add_var("z", 0.0, 1.0, 1.0);
        c.add_constraint(&[(z, 1.0)], Op::Ge, 2.0);
        problems.push(c);

        let fresh: Vec<_> = problems.iter().map(|p| p.solve().unwrap()).collect();
        let mut ws = SimplexWorkspace::new();
        for round in 0..3 {
            for (p, baseline) in problems.iter().zip(&fresh) {
                let got = p.solve_with(&mut ws).unwrap();
                assert_eq!(got.status, baseline.status);
                // Bitwise: non-optimal statuses report a NaN objective.
                assert_eq!(
                    got.objective.to_bits(),
                    baseline.objective.to_bits(),
                    "round {round}"
                );
                assert_eq!(got.x, baseline.x, "round {round}");
            }
        }
    }

    #[test]
    fn negative_lower_bounds_shifted() {
        // min x s.t. x ≥ -5 → -5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", -5.0, 5.0, 1.0);
        let s = p.solve().unwrap();
        assert!((s.x[x] + 5.0).abs() < 1e-9);
    }

    #[test]
    fn free_variables_split() {
        // min |style| free var via x ≥ constraint: min y s.t. y ≥ x − 2,
        // y ≥ 2 − x, x free → optimum y = 0 at x = 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(y, 1.0), (x, -1.0)], Op::Ge, -2.0);
        p.add_constraint(&[(y, 1.0), (x, 1.0)], Op::Ge, 2.0);
        let s = p.solve().unwrap();
        assert!((s.objective).abs() < 1e-9);
        assert!((s.x[x] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn upper_bounded_only_variable_mirrored() {
        // max x s.t. x ≤ 7 (no lower bound) → 7.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 7.0, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.x[x] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
        let u = p.add_var("u", 0.0, f64::INFINITY, -6.0);
        p.add_constraint(&[(x, 0.25), (y, -60.0), (z, -0.04), (u, 9.0)], Op::Le, 0.0);
        p.add_constraint(&[(x, 0.5), (y, -90.0), (z, -0.02), (u, 3.0)], Op::Le, 0.0);
        p.add_constraint(&[(z, 1.0)], Op::Le, 1.0);
        // Beale's cycling example — must terminate with optimum 0.05.
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 0.05).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn feasibility_only_returns_feasible_point() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Eq, 1.0);
        p.add_constraint(&[(x, 1.0)], Op::Ge, 0.25);
        let s = p.solve_feasibility().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(p.violation_at(&s.x) < 1e-8);
    }

    #[test]
    fn fixed_variable_lo_equals_hi() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 2.0, 2.0, 1.0);
        let y = p.add_var("y", 0.0, 3.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Le, 4.0);
        let s = p.solve().unwrap();
        assert!((s.x[x] - 2.0).abs() < 1e-9);
        assert!((s.x[y] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_weight_problem() {
        // The shape every RankHow LP has: weights on the simplex.
        // min w1 s.t. Σw=1, w1 ≥ 0.1, w2 ≤ 0.3.
        let mut p = Problem::new(Sense::Minimize);
        let w1 = p.add_var("w1", 0.0, 1.0, 1.0);
        let w2 = p.add_var("w2", 0.0, 1.0, 0.0);
        let w3 = p.add_var("w3", 0.0, 1.0, 0.0);
        p.add_constraint(&[(w1, 1.0), (w2, 1.0), (w3, 1.0)], Op::Eq, 1.0);
        p.add_constraint(&[(w1, 1.0)], Op::Ge, 0.1);
        p.add_constraint(&[(w2, 1.0)], Op::Le, 0.3);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.x[w1] - 0.1).abs() < 1e-9);
        assert!(p.violation_at(&s.x) < 1e-9);
    }

    #[test]
    fn shared_workspace_matches_fresh_solves() {
        // One workspace across heterogeneous problems (different shapes,
        // senses, and outcomes) must reproduce fresh-solve results bit
        // for bit — buffers fully reinitialize between calls.
        let mut ws = SimplexWorkspace::new();
        for trial in 0..3 {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
            p.add_constraint(&[(x, 1.0)], Op::Le, 4.0 + trial as f64);
            p.add_constraint(&[(y, 2.0)], Op::Le, 12.0);
            p.add_constraint(&[(x, 3.0), (y, 2.0)], Op::Le, 18.0);
            let fresh = p.solve().unwrap();
            let reused = p.solve_with(&mut ws).unwrap();
            assert_eq!(fresh.status, reused.status);
            assert_eq!(fresh.x, reused.x);
            assert_eq!(fresh.objective, reused.objective);

            // Interleave a different shape: infeasible + equality + free.
            let mut q = Problem::new(Sense::Minimize);
            let a = q.add_var("a", f64::NEG_INFINITY, f64::INFINITY, 1.0);
            let b = q.add_var("b", 0.0, 1.0, 0.0);
            q.add_constraint(&[(a, 1.0), (b, 1.0)], Op::Eq, 2.0);
            q.add_constraint(&[(b, 1.0)], Op::Ge, 0.5);
            let fresh = q.solve().unwrap();
            let reused = q.solve_with(&mut ws).unwrap();
            assert_eq!(fresh.status, reused.status);
            assert_eq!(fresh.x, reused.x);
        }
    }

    #[test]
    fn workspace_feasibility_matches() {
        let mut ws = SimplexWorkspace::new();
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Op::Ge, 2.0);
        let fresh = p.solve_feasibility().unwrap();
        let reused = p.solve_feasibility_with(&mut ws).unwrap();
        assert_eq!(fresh.status, Status::Infeasible);
        assert_eq!(fresh.status, reused.status);
    }
}
