//! Linear programming substrate: a two-phase dense primal simplex solver.
//!
//! The RankHow paper relies on an industrial LP/MILP stack (Gurobi). This
//! crate is the from-scratch replacement for the *LP* layer: it solves
//! `min/max c·x` subject to linear constraints and variable bounds, detects
//! infeasibility and unboundedness, and offers a feasibility-only mode plus
//! a Chebyshev-center helper used to sample representative interior points
//! of weight-space cells (needed by both the TREE baseline and the RankHow
//! branch-and-bound incumbent heuristic).
//!
//! Design notes:
//! - dense tableau, two-phase (artificial variables), Dantzig pricing with
//!   a Bland's-rule fallback after a stall is detected (anti-cycling);
//! - problem sizes in this workspace are small-by-construction (the paper's
//!   Section IV explains why: in w-space there are only `m − 1` free
//!   dimensions), so a dense tableau is the right simplicity/performance
//!   trade-off;
//! - all tolerances are explicit constants in the `simplex` module.
//!
//! # Example
//! ```
//! use rankhow_lp::{Problem, Sense, Op, Status};
//!
//! // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
//! p.add_constraint(&[(x, 1.0)], Op::Le, 4.0);
//! p.add_constraint(&[(y, 2.0)], Op::Le, 12.0);
//! p.add_constraint(&[(x, 3.0), (y, 2.0)], Op::Le, 18.0);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - 36.0).abs() < 1e-9);
//! assert!((sol.x[x] - 2.0).abs() < 1e-9 && (sol.x[y] - 6.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod dual;
mod geometry;
mod incremental;
mod model;
mod simplex;

pub use geometry::{box_range, chebyshev_center, chebyshev_center_with};
pub use incremental::{BasisSnapshot, IncrementalLp, LoadStatus, ProbeOutcome};
pub use model::{Constraint, Op, Problem, Sense, Solution, Status, VarId};
pub use simplex::{SimplexWorkspace, SolveError};
