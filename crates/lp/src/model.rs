//! LP model builder types.

use crate::simplex::{self, SimplexWorkspace, SolveError};

/// Index of a variable within a [`Problem`].
pub type VarId = usize;

/// Optimization direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint relation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// One linear constraint `Σ coef·x {≤,≥,=} rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Relation.
    pub op: Op,
    /// Right-hand side.
    pub rhs: f64,
}

/// Variable metadata.
#[derive(Clone, Debug)]
pub(crate) struct Variable {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub obj: f64,
}

/// Solver outcome classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Solution of an LP.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Outcome. `x` and `objective` are meaningful only for `Optimal`.
    pub status: Status,
    /// Values of the structural variables (indexed by [`VarId`]).
    pub x: Vec<f64>,
    /// Objective value `c·x` in the problem's own sense.
    pub objective: f64,
}

/// A linear program under construction.
#[derive(Clone, Debug)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// New empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Add a variable with bounds `[lo, hi]` (either may be infinite) and
    /// objective coefficient `obj`. Returns its [`VarId`].
    pub fn add_var(&mut self, name: &str, lo: f64, hi: f64, obj: f64) -> VarId {
        assert!(lo <= hi, "variable {name}: lo > hi ({lo} > {hi})");
        assert!(!lo.is_nan() && !hi.is_nan(), "variable {name}: NaN bound");
        self.vars.push(Variable {
            name: name.to_string(),
            lo,
            hi,
            obj,
        });
        self.vars.len() - 1
    }

    /// Add a constraint `Σ terms {op} rhs`.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: Op, rhs: f64) {
        for &(v, c) in terms {
            assert!(v < self.vars.len(), "constraint references unknown var");
            assert!(c.is_finite(), "non-finite constraint coefficient");
        }
        assert!(rhs.is_finite(), "non-finite rhs");
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            op,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Change a variable's objective coefficient.
    pub fn set_objective(&mut self, var: VarId, obj: f64) {
        self.vars[var].obj = obj;
    }

    /// Change a variable's bounds (used by branch-and-bound to tighten).
    pub fn set_bounds(&mut self, var: VarId, lo: f64, hi: f64) {
        assert!(lo <= hi, "set_bounds: lo > hi");
        self.vars[var].lo = lo;
        self.vars[var].hi = hi;
    }

    /// Variable bounds `(lo, hi)`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.vars[var].lo, self.vars[var].hi)
    }

    /// Variable name.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var].name
    }

    /// Solve to optimality (or detect infeasible/unbounded).
    pub fn solve(&self) -> Result<Solution, SolveError> {
        simplex::solve(self, false, &mut SimplexWorkspace::new())
    }

    /// Like [`Problem::solve`], but reusing the caller's scratch buffers —
    /// the allocation-free path for loops that solve many LPs.
    pub fn solve_with(&self, ws: &mut SimplexWorkspace) -> Result<Solution, SolveError> {
        simplex::solve(self, false, ws)
    }

    /// Feasibility check only (phase 1). Cheaper than a full solve; the
    /// returned solution carries *a* feasible point, not an optimal one.
    pub fn solve_feasibility(&self) -> Result<Solution, SolveError> {
        simplex::solve(self, true, &mut SimplexWorkspace::new())
    }

    /// Like [`Problem::solve_feasibility`], with caller-owned buffers.
    pub fn solve_feasibility_with(
        &self,
        ws: &mut SimplexWorkspace,
    ) -> Result<Solution, SolveError> {
        simplex::solve(self, true, ws)
    }

    /// Evaluate the objective at a point.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xi)| v.obj * xi).sum()
    }

    /// Maximum violation of constraints and bounds at `x` (0 = feasible).
    pub fn violation_at(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (v, &xi) in self.vars.iter().zip(x) {
            worst = worst.max(v.lo - xi).max(xi - v.hi);
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v]).sum();
            let viol = match c.op {
                Op::Le => lhs - c.rhs,
                Op::Ge => c.rhs - lhs,
                Op::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_bookkeeping() {
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_var("a", 0.0, 1.0, 2.0);
        let b = p.add_var("b", -1.0, f64::INFINITY, -1.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0)], Op::Eq, 1.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.bounds(a), (0.0, 1.0));
        assert_eq!(p.var_name(b), "b");
        assert_eq!(p.objective_at(&[1.0, 3.0]), -1.0);
    }

    #[test]
    fn violation_reports_worst_breach() {
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_var("a", 0.0, 1.0, 0.0);
        p.add_constraint(&[(a, 1.0)], Op::Ge, 0.5);
        assert_eq!(p.violation_at(&[0.75]), 0.0);
        assert!((p.violation_at(&[0.2]) - 0.3).abs() < 1e-12);
        assert!((p.violation_at(&[1.4]) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn bad_bounds_panic() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("bad", 1.0, 0.0, 0.0);
    }
}
