//! Property tests for the ranking domain model.

use proptest::prelude::*;
use rankhow_linalg::FeatureMatrix;
use rankhow_numeric::Rational;
use rankhow_ranking::{
    dominance_pairs, kendall_tau_distance, position_error, rank_of_in, score_ranks,
    score_ranks_exact, scores_exact, scores_f64, GivenRanking,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn from_scores_always_validates(scores in prop::collection::vec(-100.0..100.0f64, 1..30), k_frac in 0.0..1.0f64) {
        let k = ((scores.len() as f64 * k_frac) as usize).clamp(1, scores.len());
        let r = GivenRanking::from_scores(&scores, k, 0.0);
        prop_assert!(r.is_ok(), "{r:?}");
        let r = r.unwrap();
        prop_assert_eq!(r.k(), k);
    }

    #[test]
    fn score_ranks_fast_equals_naive(scores in prop::collection::vec(-10.0..10.0f64, 1..40), eps in 0.0..2.0f64) {
        let fast = score_ranks(&scores, eps);
        for (i, &rank) in fast.iter().enumerate() {
            prop_assert_eq!(rank, rank_of_in(&scores, i, eps));
        }
    }

    #[test]
    fn ranks_are_valid_competition_ranks(scores in prop::collection::vec(-10.0..10.0f64, 1..30)) {
        let ranks = score_ranks(&scores, 0.0);
        let n = scores.len() as u32;
        // Every rank in [1, n]; rank 1 exists; higher score → lower rank.
        prop_assert!(ranks.iter().all(|&r| 1 <= r && r <= n));
        prop_assert!(ranks.contains(&1));
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] > scores[j] {
                    prop_assert!(ranks[i] <= ranks[j]);
                }
            }
        }
    }

    #[test]
    fn position_error_zero_iff_faithful(scores in prop::collection::vec(-100.0..100.0f64, 2..20)) {
        // Ranking induced by the very same scores reproduces π exactly —
        // unless boundary ties forced an arbitrary top-k trim.
        let k = (scores.len() / 2).max(1);
        let given = GivenRanking::from_scores(&scores, k, 0.0);
        prop_assume!(given.is_ok());
        let given = given.unwrap();
        let ranks = score_ranks(&scores, 0.0);
        // With all-distinct scores the error must be exactly zero.
        let distinct = {
            let mut s = scores.clone();
            s.sort_by(|a, b| a.total_cmp(b));
            s.windows(2).all(|w| w[0] != w[1])
        };
        if distinct {
            prop_assert_eq!(position_error(&given, &ranks), 0);
        }
    }

    #[test]
    fn exact_and_f64_ranks_agree_on_separated_scores(
        rows in prop::collection::vec(prop::collection::vec(0.0..100.0f64, 3), 2..15),
        w0 in 0.01..1.0f64, w1 in 0.01..1.0f64, w2 in 0.01..1.0f64,
    ) {
        let total = w0 + w1 + w2;
        let w = [w0 / total, w1 / total, w2 / total];
        let features = FeatureMatrix::from_rows(&rows);
        let f = scores_f64(&features, &w);
        // Only claim agreement when scores are far apart relative to
        // f64 noise (the whole point of ε1/ε2 is the residual cases).
        let mut sorted = f.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min_gap = sorted.windows(2).map(|p| p[1] - p[0]).fold(f64::INFINITY, f64::min);
        prop_assume!(min_gap > 1e-6);
        let e = scores_exact(&features, &w).unwrap();
        let subset: Vec<usize> = (0..rows.len()).collect();
        let exact = score_ranks_exact(&e, &Rational::zero(), &subset);
        let fast = score_ranks(&f, 0.0);
        prop_assert_eq!(exact, fast);
    }

    #[test]
    fn kendall_bounded_by_pairs(pairs in prop::collection::vec((-10.0..10.0f64, 0.0..1.0f64), 2..15)) {
        let (scores, perm): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let k = scores.len();
        let given = GivenRanking::from_scores(&scores, k, 0.0).unwrap();
        let approx = score_ranks(&perm, 0.0);
        let tau = kendall_tau_distance(&given, &approx);
        let max_pairs = (k * (k - 1) / 2) as u64;
        prop_assert!(tau <= max_pairs);
    }

    #[test]
    fn dominance_pairs_are_sound(
        rows in prop::collection::vec(prop::collection::vec(0.0..10.0f64, 2), 2..12),
        w0 in 0.0..1.0f64,
    ) {
        let top: Vec<usize> = (0..rows.len().min(3)).collect();
        let pairs = dominance_pairs(&FeatureMatrix::from_rows(&rows), &top, 0.0);
        let w = [w0, 1.0 - w0];
        for p in &pairs {
            let fs: f64 = w.iter().zip(&rows[p.dominator]).map(|(a, b)| a * b).sum();
            let fr: f64 = w.iter().zip(&rows[p.dominatee]).map(|(a, b)| a * b).sum();
            prop_assert!(fs >= fr, "dominator must never score below dominatee");
        }
    }

    #[test]
    fn truncate_preserves_positions(scores in prop::collection::vec(-5.0..5.0f64, 6..20)) {
        let given = GivenRanking::from_scores(&scores, 3, 0.0).unwrap();
        let max_ranked = given.top_k().iter().max().copied().unwrap();
        let n = max_ranked + 1;
        if n < scores.len() {
            let t = given.truncate(n).unwrap();
            for &i in t.top_k() {
                prop_assert_eq!(t.position(i), given.position(i));
            }
        }
    }

    /// Any competition-ranked prefix is a valid Definition 1 ranking:
    /// generate one by sorting random scores with random tie collapsing,
    /// then check `from_positions` accepts it.
    #[test]
    fn generated_competition_rankings_validate(
        scores in prop::collection::vec(0u32..6, 3..15),
        k in 1usize..6,
    ) {
        let n = scores.len();
        let k = k.min(n);
        // Competition ranks of the integer scores (ties share a rank).
        let ranks: Vec<u32> = (0..n)
            .map(|i| 1 + scores.iter().filter(|&&s| s > scores[i]).count() as u32)
            .collect();
        let positions: Vec<Option<u32>> = ranks
            .iter()
            .map(|&r| if (r as usize) <= k { Some(r) } else { None })
            .collect();
        prop_assume!(positions.iter().any(|p| p.is_some()));
        // The prefix keeps only positions ≤ k, which cannot create gaps.
        let g = GivenRanking::from_positions(positions.clone());
        prop_assert!(g.is_ok(), "rejected {positions:?}: {g:?}");
        let g = g.unwrap();
        prop_assert_eq!(g.k(), positions.iter().flatten().count());
    }

    /// Shifting every position up by one (so nothing is ranked 1) must
    /// be rejected — Definition 1's "lowest integer position is 1".
    #[test]
    fn shifted_rankings_rejected(scores in prop::collection::vec(0.0..10.0f64, 3..10)) {
        let given = GivenRanking::from_scores(&scores, 2, 0.0).unwrap();
        let shifted: Vec<Option<u32>> = given
            .positions()
            .iter()
            .map(|p| p.map(|x| x + 1))
            .collect();
        prop_assert!(GivenRanking::from_positions(shifted).is_err());
    }

    /// Doubling a position to create a hole (e.g. [1, 2] → [1, 4]) must
    /// be rejected as an excessive gap whenever it exceeds k.
    #[test]
    fn hole_rankings_rejected(n in 3usize..10) {
        // [1, 2, …, k] over the first k tuples, then punch a hole.
        let k = n - 1;
        let mut positions: Vec<Option<u32>> = (0..n)
            .map(|i| if i < k { Some(i as u32 + 1) } else { None })
            .collect();
        positions[k - 1] = Some(k as u32 + 5); // beyond k: out of range / gap
        prop_assert!(GivenRanking::from_positions(positions).is_err());
    }

    /// Positions round-trip: feeding a valid ranking's raw `π` vector
    /// back through `from_positions` reconstructs the identical ranking
    /// (same `k`, same top-k set, same positions).
    #[test]
    fn positions_round_trip(
        scores in prop::collection::vec(-50.0..50.0f64, 2..25),
        k in 1usize..10,
        eps in 0.0..0.5f64,
    ) {
        let k = k.min(scores.len());
        let given = GivenRanking::from_scores(&scores, k, eps);
        prop_assume!(given.is_ok());
        let given = given.unwrap();
        let rebuilt = GivenRanking::from_positions(given.positions().to_vec());
        prop_assert!(rebuilt.is_ok(), "round-trip rejected: {rebuilt:?}");
        let rebuilt = rebuilt.unwrap();
        prop_assert_eq!(&rebuilt, &given);
        prop_assert_eq!(rebuilt.k(), given.k());
        prop_assert_eq!(rebuilt.top_k(), given.top_k());
    }

    /// Top-k monotonicity: growing `k` in `from_scores` only ever adds
    /// tuples to the ranked set — the smaller prefix is preserved, and
    /// positions of tuples already ranked never change.
    #[test]
    fn top_k_monotone_in_k(
        scores in prop::collection::vec(-50.0..50.0f64, 3..25),
        k1 in 1usize..8,
        extra in 1usize..8,
    ) {
        let k1 = k1.min(scores.len());
        let k2 = (k1 + extra).min(scores.len());
        let small = GivenRanking::from_scores(&scores, k1, 0.0).unwrap();
        let large = GivenRanking::from_scores(&scores, k2, 0.0).unwrap();
        prop_assert!(small.k() <= large.k());
        for &i in small.top_k() {
            prop_assert!(
                large.top_k().contains(&i),
                "tuple {i} ranked at k={k1} but dropped at k={k2}"
            );
            prop_assert_eq!(small.position(i), large.position(i));
        }
    }

    /// `project` keeps relative order and re-bases to a valid ranking.
    /// Its contract requires retaining *every* ranked tuple; unranked
    /// ones may be dropped freely.
    #[test]
    fn project_keeps_relative_order(scores in prop::collection::vec(0.0..10.0f64, 5..14)) {
        let given = GivenRanking::from_scores(&scores, 4, 0.0).unwrap();
        // All ranked tuples plus every other unranked one.
        let keep: Vec<usize> = (0..scores.len())
            .filter(|&i| given.position(i).is_some() || i % 2 == 0)
            .collect();
        if let Ok(p) = given.project(&keep) {
            for (a_new, &a_old) in keep.iter().enumerate() {
                for (b_new, &b_old) in keep.iter().enumerate() {
                    if let (Some(pa), Some(pb)) = (given.position(a_old), given.position(b_old)) {
                        if let (Some(qa), Some(qb)) = (p.position(a_new), p.position(b_new)) {
                            if pa < pb {
                                prop_assert!(qa < qb, "order flipped by projection");
                            }
                            if pa == pb {
                                prop_assert!(qa == qb, "tie broken by projection");
                            }
                        }
                    }
                }
            }
        }
    }
}
