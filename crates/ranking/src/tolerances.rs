//! Tie and precision tolerances (paper Section II and Section V-A).
//!
//! Four constants govern score comparison:
//! - `ε` (`eps`): the tie tolerance of Definition 2 — scores within `ε`
//!   are tied;
//! - `τ` (`tau`): the solver's precision tolerance — how far a
//!   floating-point solver may stray when it declares a constraint
//!   satisfied;
//! - `ε1`/`ε2`: the indicator thresholds of Equation (2). Lemmas 2–3
//!   prescribe `ε2 = ε − τ` and `ε1 = ε + τ⁺` (with `τ⁺` minimally above
//!   `τ`), which guarantees the solver can neither set an indicator to 0
//!   and 1 simultaneously nor accept a solution that fails exact
//!   verification.

/// The single checked constructor for tie tolerances: every entry point
/// that compares scores under Definition 2 — [`crate::score_ranks`],
/// [`crate::rank_of_in`], [`evaluate_weights`], and the [`Tolerances`]
/// builders — routes `ε` through this validation, so a negative or
/// non-finite tolerance is rejected identically everywhere instead of
/// silently producing nonsense ranks on some paths.
#[inline]
pub fn checked_tie_eps(eps: f64) -> f64 {
    assert!(
        eps.is_finite() && eps >= 0.0,
        "tie tolerance must be finite and non-negative (got {eps})"
    );
    eps
}

/// Comparison tolerances for one OPT instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerances {
    /// Tie tolerance `ε ≥ 0` (Definition 2).
    pub eps: f64,
    /// "Definitely beats" threshold `ε1` (indicator = 1 side).
    pub eps1: f64,
    /// "Definitely tied/behind" threshold `ε2` (indicator = 0 side).
    pub eps2: f64,
    /// Solver precision tolerance `τ`.
    pub tau: f64,
}

impl Tolerances {
    /// Construct from `ε` and `τ` via the Lemma 2/3 recipe:
    /// `ε2 = ε − τ`, `ε1 = ε + τ⁺` where `τ⁺` is minimally above `τ`.
    pub fn from_eps_tau(eps: f64, tau: f64) -> Self {
        let eps = checked_tie_eps(eps);
        assert!(
            tau.is_finite() && tau >= 0.0,
            "tolerances must be non-negative"
        );
        assert!(tau <= eps, "tau > eps would make eps2 negative");
        // τ⁺: the next representable step above τ at this magnitude,
        // bounded away from τ so the gap survives row scaling.
        let tau_plus = if tau == 0.0 {
            f64::MIN_POSITIVE.max(1e-12)
        } else {
            tau * (1.0 + 1e-9) + f64::MIN_POSITIVE
        };
        Tolerances {
            eps,
            eps1: eps + tau_plus,
            eps2: eps - tau,
            tau,
        }
    }

    /// Explicit values (the experiments set these per dataset).
    pub fn explicit(eps: f64, eps1: f64, eps2: f64) -> Self {
        let eps = checked_tie_eps(eps);
        assert!(eps1 > eps2, "need eps1 > eps2 (Lemma 2)");
        let tau = ((eps1 - eps2) / 2.0).max(0.0);
        Tolerances {
            eps,
            eps1,
            eps2,
            tau,
        }
    }

    /// Idealized exact environment: `ε = 0`, thresholds collapse to
    /// "strictly above 0" vs "at most 0" with a hair's width gap.
    pub fn exact() -> Self {
        Tolerances {
            eps: 0.0,
            eps1: 1e-12,
            eps2: 0.0,
            tau: 0.0,
        }
    }

    /// Paper setting for the NBA dataset:
    /// `ε = 5·10⁻⁵, ε1 = 10⁻⁴, ε2 = 0`.
    pub fn paper_nba() -> Self {
        Tolerances::explicit(5e-5, 1e-4, 0.0)
    }

    /// Paper setting for CSRankings: `ε = 5·10⁻³, ε1 = 10⁻², ε2 = 0`.
    pub fn paper_csrankings() -> Self {
        Tolerances::explicit(5e-3, 1e-2, 0.0)
    }

    /// Paper setting for synthetic data:
    /// `ε = 5·10⁻⁶, ε1 = 10⁻⁵, ε2 = 0`.
    pub fn paper_synthetic() -> Self {
        Tolerances::explicit(5e-6, 1e-5, 0.0)
    }

    /// A deliberately broken setting that ignores numerical imprecision
    /// (`ε1 = 10⁻¹⁰`) — the "−" configurations of Table III.
    pub fn numerically_naive() -> Self {
        Tolerances::explicit(5e-5, 1e-10, 0.0)
    }

    /// Check the Lemma 2 safety condition `ε1 > ε2 + 2τ'` for a solver
    /// whose actual precision is `solver_tau`.
    pub fn safe_for(&self, solver_tau: f64) -> bool {
        self.eps1 > self.eps2 + 2.0 * solver_tau
    }
}

/// Position error of a weight vector on an instance: scores every row
/// with `weights`, ranks with tolerance `eps`, sums top-k displacement.
///
/// The one-stop evaluation used by every baseline and by incumbent
/// checks in the exact solver.
pub fn evaluate_weights(
    features: &rankhow_linalg::FeatureMatrix,
    given: &crate::GivenRanking,
    weights: &[f64],
    eps: f64,
) -> u64 {
    let eps = checked_tie_eps(eps);
    let scores = crate::scores_f64(features, weights);
    // Only the ranks of the top-k tuples matter; computing just those is
    // O(k·n) instead of O(n log n) and avoids allocating the full vector
    // when k is small.
    let top = given.top_k();
    if top.len() * 8 < features.n() {
        top.iter()
            .map(|&i| {
                let rho = crate::rank_of_in(&scores, i, eps) as i64;
                let pi = given.position(i).unwrap() as i64;
                (pi - rho).unsigned_abs()
            })
            .sum()
    } else {
        let ranks = crate::score_ranks(&scores, eps);
        crate::position_error(given, &ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GivenRanking;

    #[test]
    fn lemma_recipe_produces_safe_gap() {
        let t = Tolerances::from_eps_tau(5e-5, 5e-5);
        assert!(t.eps1 > t.eps); // strictly above ε
        assert!((t.eps2 - 0.0).abs() < 1e-18); // ε − τ = 0 here
        assert!(t.safe_for(t.tau * 0.49)); // gap of τ+τ⁺ > 2·(τ/2)
    }

    #[test]
    fn paper_settings_match_section_vi() {
        let nba = Tolerances::paper_nba();
        assert_eq!(nba.eps, 5e-5);
        assert_eq!(nba.eps1, 1e-4);
        assert_eq!(nba.eps2, 0.0);
        let cs = Tolerances::paper_csrankings();
        assert_eq!((cs.eps, cs.eps1, cs.eps2), (5e-3, 1e-2, 0.0));
        let syn = Tolerances::paper_synthetic();
        assert_eq!((syn.eps, syn.eps1, syn.eps2), (5e-6, 1e-5, 0.0));
    }

    #[test]
    fn naive_setting_violates_safety() {
        let t = Tolerances::numerically_naive();
        // With a solver precision of 1e-6, the naive gap is unsafe while
        // the paper setting is safe.
        assert!(!t.safe_for(1e-6));
        assert!(Tolerances::paper_nba().safe_for(1e-6));
    }

    #[test]
    #[should_panic(expected = "eps1 > eps2")]
    fn inverted_thresholds_rejected() {
        Tolerances::explicit(0.0, 0.0, 1e-3);
    }

    #[test]
    fn evaluate_weights_small_and_large_paths_agree() {
        // Construct an instance where k·8 < n is false and true to hit
        // both code paths and cross-check them.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 37.0) % 11.0, (i as f64 * 17.0) % 7.0])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0] + 2.0 * r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 3, 0.0).unwrap();
        let w = [0.3, 0.7];
        let features = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let fast = evaluate_weights(&features, &given, &w, 0.0);
        // Force the full-vector path by projecting onto the top tuples +
        // enough padding that k·8 ≥ n.
        let keep: Vec<usize> = {
            let mut v: Vec<usize> = given.top_k().to_vec();
            v.extend((0..40).filter(|i| !given.top_k().contains(i)).take(21));
            v.sort_unstable();
            v
        };
        let sub_features = features.select_rows(&keep);
        let sub_given = given.project(&keep).unwrap();
        let slow = evaluate_weights(&sub_features, &sub_given, &w, 0.0);
        assert_eq!(fast, slow, "both evaluation paths agree");
    }

    #[test]
    fn evaluate_weights_perfect_function_zero_error() {
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&[
            vec![3.0, 1.0],
            vec![2.0, 1.0],
            vec![1.0, 1.0],
        ]);
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
        assert_eq!(evaluate_weights(&rows, &given, &[1.0, 0.0], 0.0), 0);
        // Inverting weights ranks tuple 0 last among distinct scores? All
        // scores equal under [0,1] weights → everyone rank 1 → error =
        // |1-1| + |2-1| = 1.
        assert_eq!(evaluate_weights(&rows, &given, &[0.0, 1.0], 0.0), 1);
    }

    #[test]
    fn checked_tie_eps_accepts_valid() {
        assert_eq!(checked_tie_eps(0.0), 0.0);
        assert_eq!(checked_tie_eps(5e-5), 5e-5);
    }

    #[test]
    #[should_panic(expected = "tie tolerance")]
    fn checked_tie_eps_rejects_negative() {
        checked_tie_eps(-1e-9);
    }

    #[test]
    #[should_panic(expected = "tie tolerance")]
    fn checked_tie_eps_rejects_infinite() {
        checked_tie_eps(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "tie tolerance")]
    fn tolerances_constructors_share_the_check() {
        Tolerances::explicit(-1.0, 1.0, 0.0);
    }
}
