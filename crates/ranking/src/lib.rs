//! Ranking domain model for RankHow.
//!
//! Implements the paper's Definitions 1–3 and the dominance pre-filter of
//! Section V-B:
//! - [`GivenRanking`] — a ranking `π : R → [1..k, ⊥]` with ties and the
//!   `⊥` "don't care" tail, validated against all five conditions of
//!   Definition 1;
//! - [`score_ranks`] / [`score_ranks_exact`] — the score-based ranking
//!   `ρ_W` of Definition 2, with the tie tolerance `ε`, in fast `f64` and
//!   exact [`Rational`](rankhow_numeric::Rational) arithmetic. Scoring
//!   consumes the columnar
//!   [`FeatureMatrix`](rankhow_linalg::FeatureMatrix) and runs batched
//!   per-attribute kernels; every tie tolerance is validated by the one
//!   [`checked_tie_eps`] constructor;
//! - [`position_error`] — Definition 3, plus Kendall-tau and top-weighted
//!   error variants the paper mentions as supported generalizations;
//! - [`dominance_pairs`] — sound dominator/dominatee detection.

#![warn(missing_docs)]

mod dominance;
mod error;
mod given;
mod score;
mod tolerances;

pub use dominance::{dominance_pairs, dominates, DominancePair};
pub use error::{
    error_by_measure, kendall_tau_distance, position_error, position_error_weighted, ErrorMeasure,
};
pub use given::{GivenRanking, RankingError};
pub use score::{
    rank_of_in, score_ranks, score_ranks_exact, scores_exact, scores_f64, scores_f64_into,
};
pub use tolerances::{checked_tie_eps, evaluate_weights, Tolerances};
