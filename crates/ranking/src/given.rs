//! The given ranking `π` (paper Definition 1).

use std::fmt;

/// Validation failures for [`GivenRanking::from_positions`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankingError {
    /// A ranked position lies outside `[1, k]`.
    PositionOutOfRange {
        /// Offending tuple index.
        tuple: usize,
        /// Its declared position.
        position: u32,
        /// Number of ranked tuples.
        k: usize,
    },
    /// No tuple occupies position 1.
    MissingPositionOne,
    /// A position `p` has fewer than `p − 1` tuples ranked above it
    /// ("excessive gap", e.g. `[1, 1, 4, 4]`).
    ExcessiveGap {
        /// The position with too few tuples ranked above it.
        position: u32,
    },
    /// The ranking has no ranked tuple at all.
    Empty,
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::PositionOutOfRange { tuple, position, k } => {
                write!(f, "tuple {tuple} has position {position} outside [1, {k}]")
            }
            RankingError::MissingPositionOne => write!(f, "no tuple is ranked at position 1"),
            RankingError::ExcessiveGap { position } => {
                write!(f, "excessive gap before position {position}")
            }
            RankingError::Empty => write!(f, "ranking has no ranked tuples"),
        }
    }
}

impl std::error::Error for RankingError {}

/// A given ranking `π : R → [1, …, k, ⊥]` over tuples identified by index.
///
/// `positions[i] = Some(p)` means tuple `i` is ranked at position `p`;
/// `None` is the paper's `⊥` (the tuple is known not to outrank any ranked
/// tuple, but its exact order does not matter).
///
/// Ties are allowed: `[1, 1, 3, 3, ⊥]` is a valid ranking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GivenRanking {
    positions: Vec<Option<u32>>,
    k: usize,
    top: Vec<usize>,
}

impl GivenRanking {
    /// Build and validate a ranking from per-tuple positions.
    ///
    /// Checks every condition of Definition 1:
    /// 1. `k = |{i : π(i) ≠ ⊥}| ≥ 1`,
    /// 2. every ranked position lies in `[1, k]`,
    /// 3. some tuple has position 1,
    /// 4. a tuple at position `p` has at least `p − 1` tuples ranked
    ///    strictly above it (no excessive gaps),
    /// 5. (trivially by encoding) unranked tuples are `⊥`.
    pub fn from_positions(positions: Vec<Option<u32>>) -> Result<Self, RankingError> {
        let top: Vec<usize> = positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|_| i))
            .collect();
        let k = top.len();
        if k == 0 {
            return Err(RankingError::Empty);
        }
        for &i in &top {
            let p = positions[i].unwrap();
            if p < 1 || p as usize > k {
                return Err(RankingError::PositionOutOfRange {
                    tuple: i,
                    position: p,
                    k,
                });
            }
        }
        // Count tuples at each position to check conditions 3 and 4.
        let mut count = vec![0usize; k + 1];
        for &i in &top {
            count[positions[i].unwrap() as usize] += 1;
        }
        if count[1] == 0 {
            return Err(RankingError::MissingPositionOne);
        }
        let mut cumulative = 0usize;
        for p in 1..=k {
            if count[p] > 0 && cumulative < p - 1 {
                return Err(RankingError::ExcessiveGap { position: p as u32 });
            }
            cumulative += count[p];
        }
        Ok(GivenRanking { positions, k, top })
    }

    /// Build from ground-truth scores: the `k` best-scoring tuples get
    /// competition ranks (ties within `eps` share a rank), the rest `⊥`.
    ///
    /// This is how the evaluation section constructs "given" rankings from
    /// hidden (often non-linear) ranking functions.
    pub fn from_scores(scores: &[f64], k: usize, eps: f64) -> Result<Self, RankingError> {
        assert!(k >= 1 && k <= scores.len(), "k out of range");
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        let mut positions = vec![None; scores.len()];
        // Competition ranking among the selected top-k, computed against
        // the selected set only so positions stay within [1, k].
        for (slot, &idx) in order.iter().take(k).enumerate() {
            let rank = order[..k]
                .iter()
                .filter(|&&j| scores[j] > scores[idx] + eps)
                .count()
                + 1;
            let _ = slot;
            positions[idx] = Some(rank as u32);
        }
        GivenRanking::from_positions(positions)
    }

    /// Number of tuples (ranked + `⊥`).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the ranking covers zero tuples (never true post-validation).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// `k`: the number of ranked tuples.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Position of tuple `i` (`None` = `⊥`).
    pub fn position(&self, i: usize) -> Option<u32> {
        self.positions[i]
    }

    /// Indices of the ranked tuples (the paper's `R_π(k)`), ascending.
    pub fn top_k(&self) -> &[usize] {
        &self.top
    }

    /// All positions (the raw `π` vector).
    pub fn positions(&self) -> &[Option<u32>] {
        &self.positions
    }

    /// Restrict to a prefix of the dataset: keep tuples `0..n`, which must
    /// contain all ranked tuples. Used by the "varying n" experiments,
    /// which add/remove only `⊥` tuples.
    pub fn truncate(&self, n: usize) -> Result<Self, RankingError> {
        assert!(
            self.top.iter().all(|&i| i < n),
            "truncation would drop ranked tuples"
        );
        GivenRanking::from_positions(self.positions[..n].to_vec())
    }

    /// Re-index the ranking onto a sub-dataset given by `keep` (tuple ids
    /// into the original dataset). All ranked tuples must be kept.
    pub fn project(&self, keep: &[usize]) -> Result<Self, RankingError> {
        let positions: Vec<Option<u32>> = keep.iter().map(|&i| self.positions[i]).collect();
        let kept_ranked = positions.iter().filter(|p| p.is_some()).count();
        assert_eq!(
            kept_ranked, self.k,
            "projection must preserve all ranked tuples"
        );
        GivenRanking::from_positions(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(v: &[i64]) -> Vec<Option<u32>> {
        v.iter()
            .map(|&x| if x < 0 { None } else { Some(x as u32) })
            .collect()
    }

    #[test]
    fn paper_examples_validity_matrix() {
        // From Section II: valid [1,2,3,4,⊥,⊥] and [1,1,3,3,⊥,⊥];
        // invalid [2,3,4,5,⊥,⊥] and [1,1,4,4,⊥,⊥].
        assert!(GivenRanking::from_positions(pos(&[1, 2, 3, 4, -1, -1])).is_ok());
        assert!(GivenRanking::from_positions(pos(&[1, 1, 3, 3, -1, -1])).is_ok());
        assert_eq!(
            GivenRanking::from_positions(pos(&[2, 3, 4, 5, -1, -1])),
            Err(RankingError::PositionOutOfRange {
                tuple: 3,
                position: 5,
                k: 4
            })
        );
        assert_eq!(
            GivenRanking::from_positions(pos(&[1, 1, 4, 4, -1, -1])),
            Err(RankingError::ExcessiveGap { position: 4 })
        );
    }

    #[test]
    fn missing_position_one_rejected() {
        assert_eq!(
            GivenRanking::from_positions(pos(&[2, 2, -1])),
            Err(RankingError::MissingPositionOne)
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            GivenRanking::from_positions(pos(&[-1, -1])),
            Err(RankingError::Empty)
        );
    }

    #[test]
    fn accessors() {
        let r = GivenRanking::from_positions(pos(&[2, 1, -1, 2])).unwrap();
        assert_eq!(r.k(), 3);
        assert_eq!(r.len(), 4);
        assert_eq!(r.position(0), Some(2));
        assert_eq!(r.position(2), None);
        assert_eq!(r.top_k(), &[0, 1, 3]);
    }

    #[test]
    fn from_scores_no_ties() {
        // scores: 10, 30, 20, 5 with k=3 → positions [3, 1, 2, ⊥].
        let r = GivenRanking::from_scores(&[10.0, 30.0, 20.0, 5.0], 3, 0.0).unwrap();
        assert_eq!(r.positions(), &[Some(3), Some(1), Some(2), None]);
    }

    #[test]
    fn from_scores_with_ties() {
        // Paper Definition 2 example: scores [9, 6, 6, 5] → ranks
        // [1, 2, 2, 4]; with k = 4 all ranked.
        let r = GivenRanking::from_scores(&[9.0, 6.0, 6.0, 5.0], 4, 0.0).unwrap();
        assert_eq!(r.positions(), &[Some(1), Some(2), Some(2), Some(4)]);
    }

    #[test]
    fn from_scores_eps_merges_near_ties() {
        // Paper example: [2.2, 2.1, 2.0, 1.5] with ε = 0.3 → [1, 1, 1, 4].
        let r = GivenRanking::from_scores(&[2.2, 2.1, 2.0, 1.5], 4, 0.3).unwrap();
        assert_eq!(r.positions(), &[Some(1), Some(1), Some(1), Some(4)]);
    }

    #[test]
    fn from_scores_boundary_tie_trimmed_deterministically() {
        // Two tuples tied at the k-th position: lower index wins the slot.
        let r = GivenRanking::from_scores(&[5.0, 3.0, 3.0], 2, 0.0).unwrap();
        assert_eq!(r.positions(), &[Some(1), Some(2), None]);
    }

    #[test]
    fn truncate_keeps_ranked() {
        let r = GivenRanking::from_scores(&[5.0, 4.0, 3.0, 2.0, 1.0], 2, 0.0).unwrap();
        let t = r.truncate(3).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.k(), 2);
    }

    #[test]
    #[should_panic(expected = "drop ranked")]
    fn truncate_dropping_ranked_panics() {
        let r = GivenRanking::from_scores(&[1.0, 2.0, 5.0], 2, 0.0).unwrap();
        let _ = r.truncate(2); // tuple 2 is ranked #1 and would be dropped
    }

    #[test]
    fn project_reindexes() {
        let r = GivenRanking::from_scores(&[5.0, 1.0, 4.0, 0.5], 2, 0.0).unwrap();
        let p = r.project(&[0, 2]).unwrap();
        assert_eq!(p.positions(), &[Some(1), Some(2)]);
    }
}
