//! Ranking error measures.
//!
//! [`position_error`] is the paper's Definition 3 and the objective of
//! OPT. The Kendall-tau and weighted variants implement the Section I /
//! Section II remark that RankHow "supports Kendall's Tau and other
//! measures that are based on inversions, including variations that
//! assign a greater penalty to errors higher in the ranking".

use crate::GivenRanking;

/// Which error measure an algorithm optimizes / reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ErrorMeasure {
    /// Total position displacement over the top-k (Definition 3).
    #[default]
    Position,
    /// Number of inverted top-k pairs (Kendall tau distance).
    KendallTau,
    /// Position displacement weighted by `k − π(r) + 1` (top-heavy).
    TopWeighted,
}

/// Position-based error (Definition 3):
/// `Σ_{r ∈ R_π(k)} |ρ(r) − π(r)|`, where `approx_ranks[i]` is `ρ` for
/// tuple `i` (all tuples; only ranked ones contribute).
pub fn position_error(given: &GivenRanking, approx_ranks: &[u32]) -> u64 {
    assert_eq!(given.len(), approx_ranks.len(), "rank vector length");
    given
        .top_k()
        .iter()
        .map(|&i| {
            let pi = given.position(i).unwrap() as i64;
            let rho = approx_ranks[i] as i64;
            (pi - rho).unsigned_abs()
        })
        .sum()
}

/// Position error with per-tuple importance weights `k − π(r) + 1`:
/// a displacement at the very top costs `k`, at the bottom costs 1.
pub fn position_error_weighted(given: &GivenRanking, approx_ranks: &[u32]) -> u64 {
    assert_eq!(given.len(), approx_ranks.len(), "rank vector length");
    let k = given.k() as u64;
    given
        .top_k()
        .iter()
        .map(|&i| {
            let pi = given.position(i).unwrap() as i64;
            let rho = approx_ranks[i] as i64;
            let weight = k - (pi as u64) + 1;
            weight * (pi - rho).unsigned_abs()
        })
        .sum()
}

/// Kendall tau distance restricted to ranked tuples: the number of pairs
/// `(r, r')` with `π(r) < π(r')` but `ρ(r) ≥ ρ(r')` where the approx
/// ranking inverts or merges a strictly-ordered given pair. Ties in the
/// given ranking impose no order, so they never count.
pub fn kendall_tau_distance(given: &GivenRanking, approx_ranks: &[u32]) -> u64 {
    assert_eq!(given.len(), approx_ranks.len(), "rank vector length");
    let top = given.top_k();
    let mut inversions = 0u64;
    for (a_idx, &a) in top.iter().enumerate() {
        for &b in &top[a_idx + 1..] {
            let pa = given.position(a).unwrap();
            let pb = given.position(b).unwrap();
            if pa == pb {
                continue;
            }
            let (hi, lo) = if pa < pb { (a, b) } else { (b, a) };
            if approx_ranks[hi] >= approx_ranks[lo] {
                // Inverted or collapsed: the given strict order is lost.
                if approx_ranks[hi] > approx_ranks[lo] {
                    inversions += 1;
                }
            }
        }
    }
    inversions
}

/// Dispatch on [`ErrorMeasure`].
pub fn error_by_measure(measure: ErrorMeasure, given: &GivenRanking, approx_ranks: &[u32]) -> u64 {
    match measure {
        ErrorMeasure::Position => position_error(given, approx_ranks),
        ErrorMeasure::KendallTau => kendall_tau_distance(given, approx_ranks),
        ErrorMeasure::TopWeighted => position_error_weighted(given, approx_ranks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(v: &[i64]) -> GivenRanking {
        GivenRanking::from_positions(
            v.iter()
                .map(|&x| if x < 0 { None } else { Some(x as u32) })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zero_error_when_identical() {
        let g = ranking(&[1, 2, 3, -1]);
        assert_eq!(position_error(&g, &[1, 2, 3, 4]), 0);
    }

    #[test]
    fn example2_prediction_vs_ranking() {
        // Paper Example 2: labels [4,3,2,1]; the second model's scores
        // [3,2,4,1] put r3 on top → rank vector [2,3,1,4]: total error 4.
        let g = ranking(&[1, 2, 3, 4]);
        let approx = crate::score_ranks(&[3.0, 2.0, 4.0, 1.0], 0.0);
        assert_eq!(position_error(&g, &approx), 4);
        // And the first model's scores [8,6,2,0] are a perfect ranking.
        let perfect = crate::score_ranks(&[8.0, 6.0, 2.0, 0.0], 0.0);
        assert_eq!(position_error(&g, &perfect), 0);
    }

    #[test]
    fn bottom_tuples_do_not_contribute() {
        let g = ranking(&[1, 2, -1, -1]);
        // The ⊥ tuples land anywhere — error counts only ranked ones.
        assert_eq!(position_error(&g, &[1, 2, 1, 1]), 0);
        assert_eq!(position_error(&g, &[3, 4, 1, 2]), 4);
    }

    #[test]
    fn weighted_error_top_heavy() {
        let g = ranking(&[1, 2, 3]);
        // Swap top two: displacement 1 each; weights 3 and 2 → 5.
        assert_eq!(position_error_weighted(&g, &[2, 1, 3]), 5);
        // Swap bottom two: weights 2 and 1 → 3.
        assert_eq!(position_error_weighted(&g, &[1, 3, 2]), 3);
        // Plain position error cannot tell these apart:
        assert_eq!(
            position_error(&g, &[2, 1, 3]),
            position_error(&g, &[1, 3, 2])
        );
    }

    #[test]
    fn kendall_counts_strict_inversions_only() {
        let g = ranking(&[1, 2, 3]);
        assert_eq!(kendall_tau_distance(&g, &[1, 2, 3]), 0);
        assert_eq!(kendall_tau_distance(&g, &[3, 2, 1]), 3);
        // Collapsing two tuples to the same rank is not a strict inversion.
        assert_eq!(kendall_tau_distance(&g, &[1, 1, 2]), 0);
    }

    #[test]
    fn kendall_ignores_given_ties() {
        let g = ranking(&[1, 1, 3]);
        // Tuples 0 and 1 are tied in π: any relative order is fine.
        assert_eq!(kendall_tau_distance(&g, &[2, 1, 3]), 0);
        assert_eq!(kendall_tau_distance(&g, &[1, 2, 3]), 0);
        // But inverting tuple 2 above either of them counts.
        assert_eq!(kendall_tau_distance(&g, &[2, 3, 1]), 2);
    }

    #[test]
    fn measure_dispatch() {
        let g = ranking(&[1, 2]);
        let approx = [2u32, 1];
        assert_eq!(error_by_measure(ErrorMeasure::Position, &g, &approx), 2);
        assert_eq!(error_by_measure(ErrorMeasure::KendallTau, &g, &approx), 1);
        assert_eq!(error_by_measure(ErrorMeasure::TopWeighted, &g, &approx), 3);
    }
}
