//! Dominator/dominatee detection (paper Section V-B).
//!
//! For a pair where `s` dominates `r`, the indicator `δ_sr` is a foregone
//! conclusion under *any* weight vector on the simplex, so RankHow fixes
//! it before solving: `δ_sr = 1`, `δ_rs = 0`.
//!
//! Soundness nuance: the paper defines dominance as strictly greater on
//! every attribute. With weights `w ≥ 0, Σw = 1`, strict dominance gives
//! `f(s) − f(r) > 0`, but the MILP's indicator semantics require
//! `f(s) − f(r) > ε`. We therefore accept a `margin` and require
//! `s.A_i − r.A_i > margin` on every attribute, which implies
//! `f(s) − f(r) > margin` on the whole simplex. Passing `margin = ε`
//! keeps the pruning exactly as strong as the paper's while remaining
//! provably safe for tie semantics.

use rankhow_linalg::FeatureMatrix;

/// A resolved pair: `dominator` beats `dominatee` under every feasible
/// weight vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DominancePair {
    /// Index of the dominating tuple (`δ_{dominator,dominatee} = 1`).
    pub dominator: usize,
    /// Index of the dominated tuple.
    pub dominatee: usize,
}

/// Whether `s` dominates `r` with the given margin: every attribute of
/// `s` exceeds the corresponding attribute of `r` by more than `margin`.
pub fn dominates(s: &[f64], r: &[f64], margin: f64) -> bool {
    debug_assert_eq!(s.len(), r.len());
    s.iter().zip(r).all(|(a, b)| a - b > margin)
}

/// All dominance-resolved pairs `(s, r)` with `r` ranked (in `top_k`) and
/// `s` any other tuple — exactly the pairs whose indicators appear in
/// Equation (2). Runs in `O(k·n·m)` as the paper notes (Section V-B),
/// sweeping each feature column contiguously: per ranked tuple, two flag
/// vectors (`s` above `r` everywhere / `r` above `s` everywhere) are
/// AND-refined one column at a time.
pub fn dominance_pairs(
    features: &FeatureMatrix,
    top_k: &[usize],
    margin: f64,
) -> Vec<DominancePair> {
    let n = features.n();
    let mut out = Vec::new();
    let mut s_wins = vec![false; n];
    let mut r_wins = vec![false; n];
    for &r in top_k {
        s_wins.fill(true);
        r_wins.fill(true);
        for j in 0..features.m() {
            let col = features.col(j);
            let base = col[r];
            for (s, &v) in col.iter().enumerate() {
                s_wins[s] = s_wins[s] && v - base > margin;
                r_wins[s] = r_wins[s] && base - v > margin;
            }
        }
        for s in 0..n {
            if s == r {
                continue;
            }
            if s_wins[s] {
                out.push(DominancePair {
                    dominator: s,
                    dominatee: r,
                });
            } else if r_wins[s] {
                out.push(DominancePair {
                    dominator: r,
                    dominatee: s,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm(rows: &[Vec<f64>]) -> FeatureMatrix {
        FeatureMatrix::from_rows(rows)
    }

    #[test]
    fn strict_dominance() {
        assert!(dominates(&[2.0, 3.0], &[1.0, 2.0], 0.0));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0], 0.0)); // equal attr
        assert!(!dominates(&[2.0, 1.0], &[1.0, 2.0], 0.0)); // incomparable
    }

    #[test]
    fn margin_tightens_dominance() {
        assert!(dominates(&[2.0, 3.0], &[1.0, 2.0], 0.5));
        assert!(!dominates(&[2.0, 3.0], &[1.0, 2.0], 1.0)); // diff not > 1
    }

    #[test]
    fn pairs_cover_both_directions() {
        let rows = fm(&[
            vec![5.0, 5.0], // 0: dominates everything
            vec![1.0, 1.0], // 1: dominated by 0 and 2
            vec![3.0, 3.0], // 2
        ]);
        // Only tuple 1 is ranked: pairs restricted to (·, 1) and (1, ·).
        let pairs = dominance_pairs(&rows, &[1], 0.0);
        assert!(pairs.contains(&DominancePair {
            dominator: 0,
            dominatee: 1
        }));
        assert!(pairs.contains(&DominancePair {
            dominator: 2,
            dominatee: 1
        }));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn ranked_tuple_as_dominator() {
        let rows = fm(&[vec![5.0, 5.0], vec![1.0, 1.0]]);
        let pairs = dominance_pairs(&rows, &[0], 0.0);
        assert_eq!(
            pairs,
            vec![DominancePair {
                dominator: 0,
                dominatee: 1
            }]
        );
    }

    #[test]
    fn incomparable_tuples_produce_no_pairs() {
        let rows = fm(&[vec![5.0, 1.0], vec![1.0, 5.0]]);
        assert!(dominance_pairs(&rows, &[0, 1], 0.0).is_empty());
    }

    #[test]
    fn columnar_sweep_matches_rowwise_definition() {
        // Pseudo-random grid data: the columnar AND-refinement must agree
        // with the direct per-pair `dominates` check in both directions.
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| {
                vec![
                    ((i * 7) % 13) as f64,
                    ((i * 5) % 11) as f64,
                    ((i * 3) % 7) as f64,
                ]
            })
            .collect();
        let features = fm(&rows);
        let top = [0usize, 4, 9];
        for margin in [0.0, 0.5] {
            let fast = dominance_pairs(&features, &top, margin);
            let mut slow = Vec::new();
            for &r in &top {
                for s in 0..rows.len() {
                    if s == r {
                        continue;
                    }
                    if dominates(&rows[s], &rows[r], margin) {
                        slow.push(DominancePair {
                            dominator: s,
                            dominatee: r,
                        });
                    } else if dominates(&rows[r], &rows[s], margin) {
                        slow.push(DominancePair {
                            dominator: r,
                            dominatee: s,
                        });
                    }
                }
            }
            assert_eq!(fast, slow, "margin {margin}");
        }
    }

    #[test]
    fn dominance_implies_score_order_on_simplex() {
        // Spot-check the soundness argument: sample simplex weights and
        // confirm the dominator always scores strictly higher.
        let s = [2.0, 3.0, 4.0];
        let r = [1.5, 2.5, 3.0];
        assert!(dominates(&s, &r, 0.4));
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            let mut w = [0.0f64; 3];
            let mut total = 0.0;
            for wi in w.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *wi = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-9);
                total += *wi;
            }
            for wi in w.iter_mut() {
                *wi /= total;
            }
            let fs: f64 = w.iter().zip(&s).map(|(a, b)| a * b).sum();
            let fr: f64 = w.iter().zip(&r).map(|(a, b)| a * b).sum();
            assert!(fs - fr > 0.4, "margin must hold across the simplex");
        }
    }
}
