//! Score-based rankings `ρ_W` (paper Definition 2).

use crate::tolerances::checked_tie_eps;
use rankhow_linalg::FeatureMatrix;
use rankhow_numeric::Rational;

/// Scores `f_W(r) = Σ w_i · r.A_i` for every row, in f64 arithmetic.
///
/// Runs the columnar batched kernel: one contiguous axpy pass per
/// attribute ([`FeatureMatrix::scores_into`]).
pub fn scores_f64(features: &FeatureMatrix, weights: &[f64]) -> Vec<f64> {
    features.scores(weights)
}

/// Batched variant writing into a caller-provided buffer (length `n`) —
/// the allocation-free path for tight solver loops.
pub fn scores_f64_into(features: &FeatureMatrix, weights: &[f64], out: &mut [f64]) {
    features.scores_into(weights, out);
}

/// Exact scores as rationals (lossless over the f64 inputs).
/// Returns `None` if any input is NaN/infinite.
pub fn scores_exact(features: &FeatureMatrix, weights: &[f64]) -> Option<Vec<Rational>> {
    let mut row = vec![0.0; features.m()];
    (0..features.n())
        .map(|i| {
            features.copy_row_into(i, &mut row);
            Rational::dot(weights, &row)
        })
        .collect()
}

/// Competition ranks under Definition 2 for every tuple:
/// `ρ(r) = |{s : score(s) − score(r) > ε}| + 1`.
///
/// O(n log n): sort scores descending, then binary-search the strict
/// `> score + ε` boundary for each tuple.
pub fn score_ranks(scores: &[f64], eps: f64) -> Vec<u32> {
    let eps = checked_tie_eps(eps);
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a)); // descending
    scores
        .iter()
        .map(|&sc| {
            // Definition 2 predicate is `v − sc > ε` (not `v > sc + ε`,
            // which differs under f64 rounding). f64 subtraction with a
            // fixed subtrahend is monotone, so the predicate is a prefix
            // of the descending order and partition_point applies.
            let beaten = sorted.partition_point(|&v| v - sc > eps);
            beaten as u32 + 1
        })
        .collect()
}

/// Rank (Definition 2) of one tuple `r` among all tuples, given all
/// scores. O(n) — useful when only a handful of ranks are needed.
pub fn rank_of_in(scores: &[f64], r: usize, eps: f64) -> u32 {
    let eps = checked_tie_eps(eps);
    let sr = scores[r];
    scores.iter().filter(|&&s| s - sr > eps).count() as u32 + 1
}

/// Exact competition ranks for the tuples in `subset`, computed with
/// rational arithmetic: `ρ(r) = |{s : score(s) − score(r) > ε}| + 1`.
///
/// This is the verification primitive of Section V-A: ranks computed
/// here cannot be corrupted by floating-point imprecision.
pub fn score_ranks_exact(scores: &[Rational], eps: &Rational, subset: &[usize]) -> Vec<u32> {
    assert!(
        *eps >= Rational::zero(),
        "tie tolerance must be non-negative"
    );
    subset
        .iter()
        .map(|&r| {
            let threshold = &scores[r] + eps;
            scores.iter().filter(|s| **s > threshold).count() as u32 + 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition2_tie_example() {
        // Scores 9, 6, 6, 5 → ranks 1, 2, 2, 4 (paper Section II).
        assert_eq!(score_ranks(&[9.0, 6.0, 6.0, 5.0], 0.0), vec![1, 2, 2, 4]);
    }

    #[test]
    fn definition2_eps_example() {
        // Scores [2.2, 2.1, 2.0, 1.5] with ε = 0.3 → [1, 1, 1, 4].
        assert_eq!(score_ranks(&[2.2, 2.1, 2.0, 1.5], 0.3), vec![1, 1, 1, 4]);
    }

    #[test]
    fn zero_eps_requires_exact_equality_for_ties() {
        assert_eq!(score_ranks(&[1.0, 1.0, 0.5], 0.0), vec![1, 1, 3]);
        // Distinct scores, however close, are not tied at ε = 0.
        assert_eq!(score_ranks(&[1.0, 1.0 - 1e-12, 0.5], 0.0), vec![1, 2, 3]);
    }

    #[test]
    fn ranks_agree_with_naive_quadratic() {
        let scores = [3.4, 1.2, 3.4, 0.9, 2.2, 2.2000001, -1.0, 3.39];
        for eps in [0.0, 1e-6, 0.05, 1.0] {
            let fast = score_ranks(&scores, eps);
            let naive: Vec<u32> = (0..scores.len())
                .map(|r| rank_of_in(&scores, r, eps))
                .collect();
            assert_eq!(fast, naive, "eps={eps}");
        }
    }

    #[test]
    fn scores_f64_dot_products() {
        let rows = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let s = scores_f64(&rows, &[0.5, 0.5]);
        assert_eq!(s, vec![1.5, 3.5]);
        let mut buf = vec![0.0; 2];
        scores_f64_into(&rows, &[0.5, 0.5], &mut buf);
        assert_eq!(buf, s);
    }

    #[test]
    fn exact_ranks_match_f64_when_well_separated() {
        let rows = FeatureMatrix::from_rows(&[
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ]);
        let w = [0.1, 0.8, 0.1];
        let f = scores_f64(&rows, &w);
        let e = scores_exact(&rows, &w).unwrap();
        let subset = [0, 1, 2];
        let exact = score_ranks_exact(&e, &Rational::zero(), &subset);
        let fast: Vec<u32> = subset.iter().map(|&r| rank_of_in(&f, r, 0.0)).collect();
        assert_eq!(exact, fast);
    }

    #[test]
    fn exact_ranks_catch_f64_blindspots() {
        // Two scores that collide in f64 but differ exactly: w·x with
        // catastrophic cancellation.
        let rows = FeatureMatrix::from_rows(&[vec![1e16, 1.0], vec![1e16, 2.0]]);
        // Weights chosen so f64 scores are equal (absorption) but exact
        // scores differ by 0.25.
        let w = [1.0, 0.25];
        let f = scores_f64(&rows, &w);
        assert_eq!(f[0], f[1], "f64 absorbs the small component");
        let e = scores_exact(&rows, &w).unwrap();
        let exact = score_ranks_exact(&e, &Rational::zero(), &[0, 1]);
        assert_eq!(exact, vec![2, 1], "exact arithmetic separates them");
    }

    #[test]
    fn subset_ranks_only_for_requested() {
        let fm = FeatureMatrix::from_rows(&[vec![1.0], vec![3.0], vec![2.0]]);
        let e = scores_exact(&fm, &[1.0]).unwrap();
        let got = score_ranks_exact(&e, &Rational::zero(), &[1]);
        assert_eq!(got, vec![1]);
    }

    #[test]
    #[should_panic(expected = "tie tolerance")]
    fn negative_eps_rejected_by_rank_of_in() {
        rank_of_in(&[1.0, 2.0], 0, -0.1);
    }

    #[test]
    #[should_panic(expected = "tie tolerance")]
    fn nan_eps_rejected_by_score_ranks() {
        score_ranks(&[1.0, 2.0], f64::NAN);
    }
}
