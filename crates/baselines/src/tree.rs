//! The TREE baseline: the arrangement-tree PTIME algorithm of Theorem 1
//! (an extension of Asudeh et al. \[31\], as evaluated in Section VI-B).
//!
//! The algorithm enumerates every cell of the hyperplane arrangement that
//! the `k·n` indicator hyperplanes induce on the weight simplex, using
//! BFS: a node at depth `d` has decided the side of the first `d`
//! hyperplanes; a child is added for each side that is LP-feasible
//! together with the decisions so far. Leaves are complete assignments —
//! arrangement cells — whose error is fully determined; the algorithm
//! samples a representative weight vector per surviving cell and reports
//! the best *verified* error.
//!
//! This is deliberately the "naive evaluation strategy for the MILP
//! program" (Section III-B): no bounding, no incumbents, no cross-branch
//! pruning. Its slowness relative to RankHow is a headline result of the
//! paper (35,000× on the MVP case study), so this implementation keeps
//! the structure honest and instead offers node/time limits so the
//! benches can report progress-at-timeout.
//!
//! Two threshold configurations matter (Section VI-B):
//! - **original TREE**: hairline separation (`ε1 ≈ 0⁺`, `ε2 = 0`) — huge
//!   tree, and sampled points often fail to realize the cell's indicator
//!   values under the tie tolerance `ε`;
//! - **TREE + ε1** : the paper's gap construction shrinks the tree
//!   (many cells become infeasible) and makes cells trustworthy.

use crate::{indicator_pairs, Fitted, Instance};
use rankhow_lp::{chebyshev_center, Op, Problem, Sense};
use rankhow_ranking::dominance_pairs;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// TREE configuration.
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// "Definitely beats" side threshold (`δ = 1` region boundary).
    pub eps1: f64,
    /// "Tied/behind" side threshold (`δ = 0` region boundary).
    pub eps2: f64,
    /// Apply the Section V-B dominance pre-filter.
    pub use_dominance: bool,
    /// Abort after this many LP feasibility checks (0 = unlimited).
    pub node_limit: usize,
    /// Abort after this much wall-clock time.
    pub time_limit: Option<Duration>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            eps1: 1e-12,
            eps2: 0.0,
            use_dominance: true,
            node_limit: 200_000,
            time_limit: None,
        }
    }
}

impl TreeConfig {
    /// The "TREE + ε1" variant from the case study.
    pub fn with_gap(tol: rankhow_ranking::Tolerances) -> Self {
        TreeConfig {
            eps1: tol.eps1,
            eps2: tol.eps2,
            ..TreeConfig::default()
        }
    }
}

/// Outcome of a TREE run.
#[derive(Clone, Debug)]
pub struct TreeResult {
    /// Best verified function found (None if no leaf was reached).
    pub fitted: Option<Fitted>,
    /// LP feasibility checks performed.
    pub lp_checks: usize,
    /// Arrangement cells (leaves) fully enumerated.
    pub leaves: usize,
    /// Whether the search enumerated the entire arrangement.
    pub completed: bool,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One branch decision: pair index and chosen side.
type Assignment = Vec<bool>;

/// Run the arrangement-tree search.
pub fn fit(inst: &Instance<'_>, cfg: &TreeConfig) -> TreeResult {
    let start = Instant::now();
    let m = inst.m();
    let all_pairs = indicator_pairs(inst.given);

    // Dominance pre-filter: fixed indicator values removed from branching.
    let mut fixed: Vec<Option<bool>> = vec![None; all_pairs.len()];
    if cfg.use_dominance {
        let dom = dominance_pairs(inst.features, inst.given.top_k(), inst.tol.eps);
        for d in &dom {
            for (idx, &(s, r)) in all_pairs.iter().enumerate() {
                if s == d.dominator && r == d.dominatee {
                    fixed[idx] = Some(true);
                } else if s == d.dominatee && r == d.dominator {
                    fixed[idx] = Some(false);
                }
            }
        }
    }
    let free_pairs: Vec<usize> = (0..all_pairs.len())
        .filter(|&i| fixed[i].is_none())
        .collect();

    let mut best: Option<Fitted> = None;
    let mut lp_checks = 0usize;
    let mut leaves = 0usize;
    let mut completed = true;
    let mut deepest_sampled = 0usize;

    // BFS over partial assignments of the free pairs.
    let mut queue: VecDeque<Assignment> = VecDeque::new();
    queue.push_back(Vec::new());
    'search: while let Some(assign) = queue.pop_front() {
        if let Some(tl) = cfg.time_limit {
            if start.elapsed() >= tl {
                completed = false;
                break;
            }
        }
        // Anytime answer: when BFS reaches a new depth for the first
        // time, sample that partial region once so a timeout still
        // returns *some* verified function. (Pure reporting aid — it
        // adds one LP per depth level and no pruning, so the
        // enumeration behaviour the paper measures is unchanged.)
        if !assign.is_empty() && assign.len() > deepest_sampled && assign.len() < free_pairs.len() {
            deepest_sampled = assign.len();
            let region = region_lp(inst, m, &all_pairs, &free_pairs, &assign, cfg);
            if let Ok(Some(center)) = chebyshev_center(&region) {
                let error = inst.evaluate(&center);
                if best.as_ref().map_or(true, |b| error < b.error) {
                    best = Some(Fitted {
                        weights: center,
                        error,
                    });
                }
            }
        }
        if assign.len() == free_pairs.len() {
            // Leaf: a full arrangement cell.
            leaves += 1;
            let region = region_lp(inst, m, &all_pairs, &free_pairs, &assign, cfg);
            if let Ok(Some(center)) = chebyshev_center(&region) {
                let error = inst.evaluate(&center);
                if best.as_ref().map_or(true, |b| error < b.error) {
                    best = Some(Fitted {
                        weights: center,
                        error,
                    });
                    if error == 0 {
                        break 'search;
                    }
                }
            }
            continue;
        }
        // Expand: try both sides of the next hyperplane.
        for side in [false, true] {
            if cfg.node_limit > 0 && lp_checks >= cfg.node_limit {
                completed = false;
                break 'search;
            }
            let mut child = assign.clone();
            child.push(side);
            let region = region_lp(inst, m, &all_pairs, &free_pairs, &child, cfg);
            lp_checks += 1;
            match region.solve_feasibility() {
                Ok(sol) if sol.status == rankhow_lp::Status::Optimal => {
                    queue.push_back(child);
                }
                _ => {}
            }
        }
    }

    TreeResult {
        fitted: best,
        lp_checks,
        leaves,
        completed,
        elapsed: start.elapsed(),
    }
}

/// Build the weight-space LP region for a partial assignment.
fn region_lp(
    inst: &Instance<'_>,
    m: usize,
    all_pairs: &[(usize, usize)],
    free_pairs: &[usize],
    assign: &[bool],
    cfg: &TreeConfig,
) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let w: Vec<_> = (0..m)
        .map(|j| p.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
        .collect();
    let simplex: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&simplex, Op::Eq, 1.0);
    for (depth, &side) in assign.iter().enumerate() {
        let (s, r) = all_pairs[free_pairs[depth]];
        let terms: Vec<(usize, f64)> = (0..m).map(|j| (w[j], inst.attr_diff(s, r, j))).collect();
        if side {
            p.add_constraint(&terms, Op::Ge, cfg.eps1);
        } else {
            p.add_constraint(&terms, Op::Le, cfg.eps2);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_ranking::{GivenRanking, Tolerances};

    /// Example 4's three tuples: a perfect linear function exists.
    fn example4() -> (Vec<Vec<f64>>, GivenRanking) {
        let rows = vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ];
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
        (rows, given)
    }

    #[test]
    fn finds_perfect_function_on_example4() {
        let (rows, given) = example4();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let res = fit(&inst, &TreeConfig::default());
        let f = res.fitted.expect("tree finds a cell");
        assert_eq!(f.error, 0, "weights {:?}", f.weights);
    }

    #[test]
    fn enumerates_all_cells_on_tiny_instance() {
        let (rows, given) = example4();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let res = fit(
            &inst,
            &TreeConfig {
                use_dominance: false,
                ..TreeConfig::default()
            },
        );
        // It may stop early on error 0; rerun on an instance with no
        // perfect function to check full enumeration.
        assert!(res.leaves >= 1);
        assert!(res.lp_checks >= 2);
    }

    #[test]
    fn dominance_reduces_lp_checks() {
        // Strongly correlated data → many dominance pairs → smaller tree.
        let rows: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64, i as f64 + 0.5]).collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let given = GivenRanking::from_scores(&scores, 3, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let with = fit(&inst, &TreeConfig::default());
        let without = fit(
            &inst,
            &TreeConfig {
                use_dominance: false,
                ..TreeConfig::default()
            },
        );
        assert!(with.lp_checks < without.lp_checks);
        // Same answer either way.
        assert_eq!(with.fitted.unwrap().error, without.fitted.unwrap().error);
    }

    #[test]
    fn node_limit_aborts_cleanly() {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                vec![
                    ((i * 3) % 8) as f64,
                    ((i * 5) % 8) as f64,
                    ((i * 7) % 8) as f64,
                ]
            })
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0] + r[1] + r[2]).collect();
        let given = GivenRanking::from_scores(&scores, 4, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let res = fit(
            &inst,
            &TreeConfig {
                node_limit: 10,
                use_dominance: false,
                ..TreeConfig::default()
            },
        );
        assert!(!res.completed);
        assert!(res.lp_checks <= 10);
    }

    #[test]
    fn gap_variant_produces_no_worse_tree() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![((i * 3) % 6) as f64 + 1.0, ((i * 5) % 6) as f64 + 1.0])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 3, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::paper_nba());
        let naive = fit(&inst, &TreeConfig::default());
        let gapped = fit(&inst, &TreeConfig::with_gap(inst.tol));
        // The ε1 gap eliminates slivers: never more LP checks.
        assert!(gapped.lp_checks <= naive.lp_checks);
    }
}
