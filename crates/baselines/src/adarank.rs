//! The ADARANK baseline: Xu & Li's boosting algorithm \[40\] adapted to
//! OPT as the paper describes (Section VI-A).
//!
//! Weak rankers are single attributes. Each round selects the attribute
//! with the best distribution-weighted performance, adds it with weight
//! `α_t`, and re-weights tuples toward those the current combination
//! ranks badly. Performance of a ranker on tuple `r` is
//! `1 − |ρ(r) − π(r)| / (n − 1)` — the position-error-based measure the
//! paper substitutes for IR metrics.
//!
//! The paper observes a characteristic failure mode on NBA data: one
//! attribute correlates so strongly with the given ranking that it is
//! selected in every round, so boosting degenerates to a single weak
//! ranker. The implementation deliberately reproduces this (no forced
//! diversity), because the evaluation depends on it.

use crate::{Fitted, Instance};

/// AdaRank configuration.
#[derive(Clone, Debug)]
pub struct AdaRankConfig {
    /// Boosting rounds.
    pub rounds: usize,
}

impl Default for AdaRankConfig {
    fn default() -> Self {
        AdaRankConfig { rounds: 10 }
    }
}

/// Per-attribute min/max spans used to put weak rankers on a common
/// scale; the returned weight vector is mapped back to raw-attribute
/// space (ranking-equivalent).
struct Scaling {
    lo: Vec<f64>,
    span: Vec<f64>,
}

fn scaling(inst: &Instance<'_>) -> Scaling {
    let mut ranges = Vec::new();
    inst.features.column_ranges_into(&mut ranges);
    let lo = ranges.iter().map(|&(l, _)| l).collect();
    let span = ranges
        .iter()
        .map(|&(l, h)| if h - l > 0.0 { h - l } else { 1.0 })
        .collect();
    Scaling { lo, span }
}

/// Performance ∈ [0, 1] of scoring function `scores` on ranked tuple `r`.
fn tuple_performance(inst: &Instance<'_>, scores: &[f64], r: usize) -> f64 {
    let rho = rankhow_ranking::rank_of_in(scores, r, inst.tol.eps) as i64;
    let pi = inst.given.position(r).unwrap() as i64;
    let denom = (inst.n() as f64 - 1.0).max(1.0);
    1.0 - (rho - pi).unsigned_abs() as f64 / denom
}

/// Run AdaRank and return the boosted linear scoring function.
pub fn fit(inst: &Instance<'_>, cfg: &AdaRankConfig) -> Fitted {
    let m = inst.m();
    let top = inst.given.top_k();
    let k = top.len();
    let scale = scaling(inst);

    // Normalized per-attribute score columns (weak rankers) — each is a
    // contiguous feature column shifted and scaled.
    let weak_scores: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            inst.features
                .col(j)
                .iter()
                .map(|v| (v - scale.lo[j]) / scale.span[j])
                .collect()
        })
        .collect();

    // Distribution over ranked tuples.
    let mut dist = vec![1.0 / k as f64; k];
    // Accumulated α per attribute (normalized space).
    let mut alpha = vec![0.0f64; m];

    for _round in 0..cfg.rounds {
        // Select the weak ranker with max weighted performance.
        let (best_attr, _) = (0..m)
            .map(|j| {
                let perf: f64 = top
                    .iter()
                    .zip(&dist)
                    .map(|(&r, &p)| p * tuple_performance(inst, &weak_scores[j], r))
                    .sum();
                (j, perf)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();

        // α_t from the weighted performance of the chosen ranker.
        let num: f64 = top
            .iter()
            .zip(&dist)
            .map(|(&r, &p)| p * (1.0 + tuple_performance(inst, &weak_scores[best_attr], r)))
            .sum();
        let den: f64 = top
            .iter()
            .zip(&dist)
            .map(|(&r, &p)| p * (1.0 - tuple_performance(inst, &weak_scores[best_attr], r)))
            .sum();
        let a_t = 0.5 * ((num.max(1e-12)) / (den.max(1e-12))).ln();
        if !a_t.is_finite() || a_t <= 0.0 {
            break;
        }
        alpha[best_attr] += a_t;

        // Combined scores so far (normalized space) drive re-weighting.
        let combined: Vec<f64> = (0..inst.n())
            .map(|i| (0..m).map(|j| alpha[j] * weak_scores[j][i]).sum())
            .collect();
        let mut z = 0.0;
        for (slot, &r) in top.iter().enumerate() {
            let perf = tuple_performance(inst, &combined, r);
            dist[slot] = (-perf).exp();
            z += dist[slot];
        }
        dist.iter_mut().for_each(|d| *d /= z);
    }

    // Map the normalized-space weights back to raw attributes: scoring
    // Σ α_j (x_j − lo_j)/span_j equals Σ (α_j/span_j) x_j + const.
    let mut weights: Vec<f64> = alpha.iter().zip(&scale.span).map(|(a, s)| a / s).collect();
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        weights.iter_mut().for_each(|w| *w /= total);
    } else {
        weights = vec![1.0 / m as f64; m];
    }
    let error = inst.evaluate(&weights);
    Fitted { weights, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_ranking::{GivenRanking, Tolerances};

    #[test]
    fn single_informative_attribute_dominates() {
        // Attribute 0 generates the ranking exactly; attribute 1 is
        // noise. AdaRank should pick attribute 0 (repeatedly) and achieve
        // zero error — the paper's degenerate-selection behaviour.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, ((i * 31) % 20) as f64])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let given = GivenRanking::from_scores(&scores, 20, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let f = fit(&inst, &AdaRankConfig::default());
        assert_eq!(f.error, 0);
        assert!(
            f.weights[0] > 0.9,
            "informative attribute should dominate: {:?}",
            f.weights
        );
    }

    #[test]
    fn weights_normalized_and_nonnegative() {
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![(i % 5) as f64, (i % 3) as f64, (i % 7) as f64])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0] + r[1] + r[2]).collect();
        let given = GivenRanking::from_scores(&scores, 6, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let f = fit(&inst, &AdaRankConfig::default());
        let sum: f64 = f.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(f.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn more_rounds_never_catastrophic() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![((i * 7) % 30) as f64, ((i * 11) % 30) as f64])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| 0.6 * r[0] + 0.4 * r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 10, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let short = fit(&inst, &AdaRankConfig { rounds: 2 });
        let long = fit(&inst, &AdaRankConfig { rounds: 25 });
        // Boosting is a heuristic — no guarantee of improvement — but it
        // must stay bounded and produce valid output.
        assert!(long.error <= short.error + 10);
    }

    #[test]
    fn scale_invariance_of_returned_ranking() {
        // Multiplying an attribute by 1000 must not change the *ranking*
        // produced by the fitted function (internal normalization).
        let rows_a: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64, ((i * 5) % 12) as f64])
            .collect();
        let rows_b: Vec<Vec<f64>> = rows_a.iter().map(|r| vec![r[0] * 1000.0, r[1]]).collect();
        let scores: Vec<f64> = rows_a.iter().map(|r| r[0] + r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 12, 0.0).unwrap();
        let rows_a = rankhow_linalg::FeatureMatrix::from_rows(&rows_a);
        let ia = Instance::new(&rows_a, &given, Tolerances::exact());
        let rows_b = rankhow_linalg::FeatureMatrix::from_rows(&rows_b);
        let ib = Instance::new(&rows_b, &given, Tolerances::exact());
        let fa = fit(&ia, &AdaRankConfig::default());
        let fb = fit(&ib, &AdaRankConfig::default());
        assert_eq!(fa.error, fb.error);
    }
}
