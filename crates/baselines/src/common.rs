//! Shared problem view and helpers for all baselines.

use rankhow_linalg::FeatureMatrix;
use rankhow_ranking::{evaluate_weights, GivenRanking, Tolerances};

/// A borrowed view of one OPT instance: the columnar relation, the given
/// ranking, and the comparison tolerances.
#[derive(Clone, Copy, Debug)]
pub struct Instance<'a> {
    /// The `n × m` feature store (column-major).
    pub features: &'a FeatureMatrix,
    /// The given ranking `π`.
    pub given: &'a GivenRanking,
    /// Tie/precision tolerances.
    pub tol: Tolerances,
}

impl<'a> Instance<'a> {
    /// Construct, validating shape.
    pub fn new(features: &'a FeatureMatrix, given: &'a GivenRanking, tol: Tolerances) -> Self {
        assert_eq!(features.n(), given.len(), "rows vs ranking length");
        assert!(features.n() > 0);
        Instance {
            features,
            given,
            tol,
        }
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.features.n()
    }

    /// Number of attributes.
    pub fn m(&self) -> usize {
        self.features.m()
    }

    /// Position error (Definition 3) of a weight vector under `ε`.
    pub fn evaluate(&self, weights: &[f64]) -> u64 {
        evaluate_weights(self.features, self.given, weights, self.tol.eps)
    }

    /// Difference of rows `a` and `b` on attribute `j`
    /// (`A_j[a] − A_j[b]` — one indicator-hyperplane coefficient).
    #[inline]
    pub fn attr_diff(&self, a: usize, b: usize, j: usize) -> f64 {
        let col = self.features.col(j);
        col[a] - col[b]
    }
}

/// A fitted linear scoring function with its measured error.
#[derive(Clone, Debug, PartialEq)]
pub struct Fitted {
    /// Weight vector (length `m`). Baselines may return weights off the
    /// probability simplex (e.g. plain regression with negatives); the
    /// error is measured on the function as returned.
    pub weights: Vec<f64>,
    /// Position error of `weights` on the instance it was fitted to.
    pub error: u64,
}

/// The indicator pair list of Equation (2): one `(s, r)` pair for every
/// ranked tuple `r` and every other tuple `s`.
pub fn indicator_pairs(given: &GivenRanking) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(given.k() * (given.len() - 1));
    for &r in given.top_k() {
        for s in 0..given.len() {
            if s != r {
                pairs.push((s, r));
            }
        }
    }
    pairs
}

/// Euclidean projection of a vector onto the probability simplex
/// `{w : w ≥ 0, Σw = 1}` (Duchi et al.'s O(n log n) algorithm). Used by
/// the subgradient path of ordinal regression and by seed cleanup.
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    assert!(n > 0);
    let mut u: Vec<f64> = v.to_vec();
    u.sort_by(|a, b| b.total_cmp(a));
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i + 1) as f64;
        if ui - t > 0.0 {
            rho = i;
            theta = t;
        }
    }
    let _ = rho;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_ranking::GivenRanking;

    #[test]
    fn instance_shape_checks() {
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&[vec![1.0], vec![2.0]]);
        let given = GivenRanking::from_positions(vec![Some(1), None]).unwrap();
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.m(), 1);
        assert_eq!(inst.evaluate(&[1.0]), 1); // tuple 1 outscores tuple 0
        assert_eq!(inst.attr_diff(1, 0, 0), 1.0);
    }

    #[test]
    fn pair_enumeration_counts() {
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), None, None]).unwrap();
        let pairs = indicator_pairs(&given);
        // k·(n−1) = 2·3 = 6 pairs.
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(1, 0)) && pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 0)) && pairs.contains(&(3, 1)));
        // No self pairs.
        assert!(pairs.iter().all(|&(s, r)| s != r));
    }

    #[test]
    fn simplex_projection_properties() {
        for v in [
            vec![0.2, 0.3, 0.5],
            vec![1.0, 1.0, 1.0],
            vec![-1.0, 2.0, 0.5],
            vec![0.0, 0.0],
            vec![10.0],
        ] {
            let p = project_to_simplex(&v);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{v:?} -> {p:?}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
        // Already on the simplex: unchanged.
        let p = project_to_simplex(&[0.25, 0.75]);
        assert!((p[0] - 0.25).abs() < 1e-12 && (p[1] - 0.75).abs() < 1e-12);
        // Dominated by one huge coordinate: becomes a vertex.
        let p = project_to_simplex(&[100.0, 0.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }
}
