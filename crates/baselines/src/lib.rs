//! Competitor algorithms from the RankHow paper's evaluation (Section VI):
//!
//! | Baseline | Paper description | Module |
//! |---|---|---|
//! | TREE | arrangement-tree PTIME algorithm (Theorem 1, after Asudeh et al.) | [`tree`] |
//! | ORDINAL REGRESSION | Srinivasan's LP, extended with ties + ε-gap | [`ordinal_regression`] |
//! | LINEAR REGRESSION | ranks-as-labels least squares (default + non-negative) | [`linear_regression`] |
//! | ADARANK | boosting with single-attribute weak rankers | [`adarank`] |
//! | SAMPLING | random simplex search under a time budget | [`sampling`] |
//!
//! All baselines consume an [`Instance`] (rows + given ranking +
//! tolerances) and produce a [`Fitted`] scoring function whose error is
//! measured with the same Definition 3 evaluator the core solver uses.

#![warn(missing_docs)]

pub mod adarank;
mod common;
pub mod linear_regression;
pub mod ordinal_regression;
pub mod sampling;
pub mod tree;

pub use common::{indicator_pairs, project_to_simplex, Fitted, Instance};
