//! The SAMPLING baseline: random search over the weight simplex under a
//! time budget (Section VI-C sets its budget to RankHow's runtime).

use crate::{Fitted, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Sampling configuration.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Wall-clock budget.
    pub budget: Duration,
    /// Hard cap on samples (guards tests against clock granularity).
    pub max_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            budget: Duration::from_secs(1),
            max_samples: 1_000_000,
            seed: 13,
        }
    }
}

/// Result of a sampling run: the best function plus the improvement
/// trace used by the paper's time-series plot (Fig. 3a).
#[derive(Clone, Debug)]
pub struct SamplingResult {
    /// Best function found.
    pub fitted: Fitted,
    /// `(elapsed, error)` at every improvement.
    pub trace: Vec<(Duration, u64)>,
    /// Total samples drawn.
    pub samples: usize,
}

/// Draw a uniform point on the probability simplex (normalized
/// exponentials — the Dirichlet(1,…,1) construction).
pub fn sample_simplex(rng: &mut StdRng, m: usize) -> Vec<f64> {
    let mut w: Vec<f64> = (0..m)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            -u.ln()
        })
        .collect();
    let total: f64 = w.iter().sum();
    w.iter_mut().for_each(|x| *x /= total);
    w
}

/// Random search; `accept` filters candidate weights (weight-constraint
/// support by rejection — `None` accepts everything).
pub fn fit(
    inst: &Instance<'_>,
    cfg: &SamplingConfig,
    accept: Option<&dyn Fn(&[f64]) -> bool>,
) -> SamplingResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = inst.m();
    let mut best = Fitted {
        weights: vec![1.0 / m as f64; m],
        error: u64::MAX,
    };
    let mut trace = Vec::new();
    let mut samples = 0usize;
    while start.elapsed() < cfg.budget && samples < cfg.max_samples {
        samples += 1;
        let w = sample_simplex(&mut rng, m);
        if let Some(f) = accept {
            if !f(&w) {
                continue;
            }
        }
        let err = inst.evaluate(&w);
        if err < best.error {
            best = Fitted {
                weights: w,
                error: err,
            };
            trace.push((start.elapsed(), err));
            if err == 0 {
                break;
            }
        }
    }
    SamplingResult {
        fitted: best,
        trace,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_ranking::{GivenRanking, Tolerances};

    fn instance_data() -> (Vec<Vec<f64>>, GivenRanking) {
        // Scores w0·i + w1·(12−i) order by i whenever w0 > w1, so half
        // the simplex achieves zero error — easy but not trivial.
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, (12 - i) as f64]).collect();
        let scores: Vec<f64> = rows.iter().map(|r| 0.7 * r[0] + 0.3 * r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 5, 0.0).unwrap();
        (rows, given)
    }

    #[test]
    fn simplex_samples_are_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = sample_simplex(&mut rng, 6);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn finds_easy_solutions() {
        let (rows, given) = instance_data();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let res = fit(
            &inst,
            &SamplingConfig {
                budget: Duration::from_millis(200),
                max_samples: 20_000,
                seed: 1,
            },
            None,
        );
        // The generating weights are interior; random search finds a
        // zero-error function quickly.
        assert_eq!(res.fitted.error, 0, "samples: {}", res.samples);
    }

    #[test]
    fn trace_is_monotone_decreasing() {
        let (rows, given) = instance_data();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let res = fit(
            &inst,
            &SamplingConfig {
                budget: Duration::from_millis(100),
                max_samples: 5_000,
                seed: 2,
            },
            None,
        );
        for w in res.trace.windows(2) {
            assert!(w[1].1 < w[0].1, "strict improvements only");
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn rejection_respects_constraints() {
        let (rows, given) = instance_data();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        // Require w0 ≥ 0.6: accepted best must satisfy it.
        let accept = |w: &[f64]| w[0] >= 0.6;
        let res = fit(
            &inst,
            &SamplingConfig {
                budget: Duration::from_millis(100),
                max_samples: 5_000,
                seed: 3,
            },
            Some(&accept),
        );
        assert!(res.fitted.weights[0] >= 0.6 || res.fitted.error == u64::MAX);
    }

    #[test]
    fn sample_cap_respected() {
        let (rows, given) = instance_data();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let res = fit(
            &inst,
            &SamplingConfig {
                budget: Duration::from_secs(10),
                max_samples: 50,
                seed: 4,
            },
            None,
        );
        assert!(res.samples <= 50);
    }
}
