//! The ORDINAL REGRESSION baseline: Srinivasan's LP \[41\], extended per
//! the paper with tie support and numerical-imprecision gaps.
//!
//! The original formulation: for consecutive tuples `a ≻ b` of the given
//! ordering, require `f(a) − f(b) + s_ab ≥ gap` with slack `s_ab ≥ 0`,
//! and minimize `Σ s_ab` — a *score-based* penalty, not position-based
//! (the paper's Section VII example shows why that distinction matters).
//!
//! Extensions (Section VI-A, Table III):
//! - **ties**: tuples sharing a given position get a two-sided band
//!   `|f(a) − f(b)| ≤ tie_band + s`,
//! - **ε-gap** (the OR+ configuration): `gap = ε1` so the fitted function
//!   survives exact verification; OR− uses a naive `gap = 10⁻¹⁰`.
//!
//! Scalability: the LP has one slack per pair. Past `max_lp_pairs` the
//! solver switches to projected subgradient descent on the equivalent
//! hinge loss `Σ max(0, gap − w·d)` over the simplex — the LP and the
//! hinge objective have identical minimizers; the iterative path trades
//! exactness for O(pairs) memory. The paper only uses OR as a seed
//! heuristic at scale, where approximate minimization is sufficient.

use crate::{project_to_simplex, Fitted, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankhow_lp::{Op, Problem, Sense, Status};

/// Configuration for ordinal regression.
#[derive(Clone, Debug)]
pub struct OrdinalConfig {
    /// Required score gap between consecutive distinct positions
    /// (the "+" variant passes `ε1`; the "−" variant something tiny).
    pub gap: f64,
    /// Two-sided band for tied tuples (usually `ε2`).
    pub tie_band: f64,
    /// Whether to emit tie constraints at all (the original Srinivasan
    /// formulation does not allow ties).
    pub support_ties: bool,
    /// How many `⊥` tuples to anchor below the last ranked tuple.
    pub bottom_anchors: usize,
    /// Switch from exact LP to subgradient descent above this many pairs.
    pub max_lp_pairs: usize,
    /// RNG seed for anchor sampling / subgradient shuffling.
    pub seed: u64,
}

impl Default for OrdinalConfig {
    fn default() -> Self {
        OrdinalConfig {
            gap: 1e-4,
            tie_band: 0.0,
            support_ties: true,
            bottom_anchors: 64,
            max_lp_pairs: 400,
            seed: 7,
        }
    }
}

/// One ordering constraint between two tuples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pair {
    /// `first` must outscore `second` by `gap`.
    Order(usize, usize),
    /// The two tuples must score within `tie_band`.
    Tie(usize, usize),
}

/// Build the pair list: consecutive ranked tuples (order or tie), plus
/// sampled `⊥` anchors below the lowest-ranked tuple.
fn build_pairs(inst: &Instance<'_>, cfg: &OrdinalConfig) -> Vec<Pair> {
    let given = inst.given;
    let mut ranked: Vec<usize> = given.top_k().to_vec();
    ranked.sort_by_key(|&i| given.position(i).unwrap());
    let mut pairs = Vec::new();
    for w in ranked.windows(2) {
        let (a, b) = (w[0], w[1]);
        if given.position(a) == given.position(b) {
            if cfg.support_ties {
                pairs.push(Pair::Tie(a, b));
            }
        } else {
            pairs.push(Pair::Order(a, b));
        }
    }
    // Anchor a sample of ⊥ tuples below the last ranked tuple.
    if let Some(&last) = ranked.last() {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let bottom: Vec<usize> = (0..inst.n())
            .filter(|&i| given.position(i).is_none())
            .collect();
        let take = cfg.bottom_anchors.min(bottom.len());
        if take > 0 {
            let stride = (bottom.len() / take).max(1);
            let mut anchors = 0usize;
            for chunk in bottom.chunks(stride) {
                if anchors >= take {
                    break;
                }
                let pick = chunk[rng.gen_range(0..chunk.len())];
                pairs.push(Pair::Order(last, pick));
                anchors += 1;
            }
        }
    }
    pairs
}

/// Fit by exact LP (small pair counts).
fn fit_lp(inst: &Instance<'_>, cfg: &OrdinalConfig, pairs: &[Pair]) -> Option<Vec<f64>> {
    let m = inst.m();
    let mut p = Problem::new(Sense::Minimize);
    let w: Vec<_> = (0..m)
        .map(|j| p.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
        .collect();
    let simplex: Vec<(usize, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&simplex, Op::Eq, 1.0);
    for (idx, pair) in pairs.iter().enumerate() {
        let slack = p.add_var(&format!("s{idx}"), 0.0, f64::INFINITY, 1.0);
        match *pair {
            Pair::Order(a, b) => {
                let mut terms: Vec<(usize, f64)> =
                    (0..m).map(|j| (w[j], inst.attr_diff(a, b, j))).collect();
                terms.push((slack, 1.0));
                p.add_constraint(&terms, Op::Ge, cfg.gap);
            }
            Pair::Tie(a, b) => {
                let diff: Vec<(usize, f64)> =
                    (0..m).map(|j| (w[j], inst.attr_diff(a, b, j))).collect();
                let mut up = diff.clone();
                up.push((slack, -1.0));
                p.add_constraint(&up, Op::Le, cfg.tie_band);
                let mut down = diff;
                down.push((slack, 1.0));
                p.add_constraint(&down, Op::Ge, -cfg.tie_band);
            }
        }
    }
    let sol = p.solve().ok()?;
    if sol.status != Status::Optimal {
        return None;
    }
    Some(sol.x[..m].to_vec())
}

/// Fit by projected subgradient on the hinge loss (large pair counts).
fn fit_subgradient(inst: &Instance<'_>, cfg: &OrdinalConfig, pairs: &[Pair]) -> Vec<f64> {
    let m = inst.m();
    let mut w = vec![1.0 / m as f64; m];
    let mut best = w.clone();
    let mut best_loss = f64::INFINITY;
    let iters = 300;
    for t in 0..iters {
        let step = 0.5 / (1.0 + t as f64).sqrt();
        let mut grad = vec![0.0; m];
        let mut loss = 0.0;
        for pair in pairs {
            match *pair {
                Pair::Order(a, b) => {
                    let mut diff_dot = 0.0;
                    for j in 0..m {
                        diff_dot += w[j] * inst.attr_diff(a, b, j);
                    }
                    if diff_dot < cfg.gap {
                        loss += cfg.gap - diff_dot;
                        for j in 0..m {
                            grad[j] -= inst.attr_diff(a, b, j);
                        }
                    }
                }
                Pair::Tie(a, b) => {
                    let mut diff_dot = 0.0;
                    for j in 0..m {
                        diff_dot += w[j] * inst.attr_diff(a, b, j);
                    }
                    if diff_dot.abs() > cfg.tie_band {
                        loss += diff_dot.abs() - cfg.tie_band;
                        let sign = diff_dot.signum();
                        for j in 0..m {
                            grad[j] += sign * inst.attr_diff(a, b, j);
                        }
                    }
                }
            }
        }
        if loss < best_loss {
            best_loss = loss;
            best = w.clone();
            if loss == 0.0 {
                break;
            }
        }
        // Normalize gradient scale against attribute magnitudes.
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1e-12);
        for j in 0..m {
            w[j] -= step * grad[j] / gnorm;
        }
        w = project_to_simplex(&w);
    }
    best
}

/// Fit ordinal regression on an instance.
pub fn fit(inst: &Instance<'_>, cfg: &OrdinalConfig) -> Fitted {
    let pairs = build_pairs(inst, cfg);
    let weights = if pairs.len() <= cfg.max_lp_pairs {
        fit_lp(inst, cfg, &pairs).unwrap_or_else(|| fit_subgradient(inst, cfg, &pairs))
    } else {
        fit_subgradient(inst, cfg, &pairs)
    };
    let error = inst.evaluate(&weights);
    Fitted { weights, error }
}

/// The paper's OR+ configuration: gap = `ε1`, ties in a `ε2` band.
pub fn config_plus(tol: rankhow_ranking::Tolerances) -> OrdinalConfig {
    OrdinalConfig {
        gap: tol.eps1,
        tie_band: tol.eps2.max(0.0),
        ..OrdinalConfig::default()
    }
}

/// The OR− configuration: numerically naive gap.
pub fn config_minus() -> OrdinalConfig {
    OrdinalConfig {
        gap: 1e-10,
        tie_band: 0.0,
        ..OrdinalConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_ranking::{GivenRanking, Tolerances};

    #[test]
    fn recovers_linear_ordering_exactly() {
        // Ranking generated by w = (0.7, 0.3): OR should find weights
        // with zero position error (any function preserving the order).
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![((i * 7) % 10) as f64, ((i * 3) % 10) as f64])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| 0.7 * r[0] + 0.3 * r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 10, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let f = fit(&inst, &OrdinalConfig::default());
        assert_eq!(f.error, 0, "weights {:?}", f.weights);
    }

    #[test]
    fn weights_live_on_simplex() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (8 - i) as f64]).collect();
        let given =
            GivenRanking::from_scores(&rows.iter().map(|r| r[0]).collect::<Vec<_>>(), 8, 0.0)
                .unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let f = fit(&inst, &OrdinalConfig::default());
        let sum: f64 = f.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(f.weights.iter().all(|&w| w >= -1e-9));
    }

    #[test]
    fn tie_support_can_be_disabled() {
        // Two tied tuples: with ties enabled the band constraint exists;
        // disabled, the pair is skipped (original Srinivasan).
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]];
        let given = GivenRanking::from_positions(vec![Some(1), Some(1), Some(3)]).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let with_ties = fit(
            &inst,
            &OrdinalConfig {
                support_ties: true,
                ..Default::default()
            },
        );
        let without = fit(
            &inst,
            &OrdinalConfig {
                support_ties: false,
                ..Default::default()
            },
        );
        // Both must produce valid functions; the tie-aware one should
        // score the tied pair closer together.
        let closeness = |w: &[f64]| {
            let f0 = w[0] * rows.get(0, 0) + w[1] * rows.get(0, 1);
            let f1 = w[0] * rows.get(1, 0) + w[1] * rows.get(1, 1);
            (f0 - f1).abs()
        };
        assert!(closeness(&with_ties.weights) <= closeness(&without.weights) + 1e-9);
    }

    #[test]
    fn subgradient_path_used_above_threshold() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i * 13) % 60) as f64, ((i * 29) % 60) as f64])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| 0.9 * r[0] + 0.1 * r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 60, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let cfg = OrdinalConfig {
            max_lp_pairs: 5, // force subgradient
            ..OrdinalConfig::default()
        };
        let f = fit(&inst, &cfg);
        // Approximate path: still a decent seed (low error).
        assert!(f.error <= 40, "subgradient error {}", f.error);
    }

    #[test]
    fn plus_and_minus_configs_differ_in_gap() {
        let plus = config_plus(Tolerances::paper_nba());
        let minus = config_minus();
        assert_eq!(plus.gap, 1e-4);
        assert_eq!(minus.gap, 1e-10);
    }

    #[test]
    fn bottom_anchors_limit_respected() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let scores: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let given = GivenRanking::from_scores(&scores, 3, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let cfg = OrdinalConfig {
            bottom_anchors: 4,
            ..OrdinalConfig::default()
        };
        let pairs = build_pairs(&inst, &cfg);
        // 2 consecutive pairs + at most 4 anchors.
        assert!(pairs.len() <= 6, "{}", pairs.len());
        let f = fit(&inst, &cfg);
        assert_eq!(f.error, 0);
    }
}
