//! The LINEAR REGRESSION baseline (paper Sections I, VI-A; Examples 2–3).
//!
//! Ranks are converted to numeric labels (the tuple at position `p` gets
//! `k − p + 1`; `⊥` tuples get 0) and a least-squares model is fitted.
//! Example 3 shows both the *default* fit (which may produce negative
//! weights) and the *non-negative* fit; both are provided.

use crate::{Fitted, Instance};
use rankhow_linalg::{lstsq, nnls, Matrix};

/// Which least-squares variant to fit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Variant {
    /// Ordinary least squares with intercept (sklearn defaults).
    #[default]
    Default,
    /// Non-negative coefficients (`positive=True`), no intercept.
    NonNegative,
}

/// Labels `k − p + 1` for ranked tuples, `0` for `⊥` (higher = better).
pub fn labels(inst: &Instance<'_>) -> Vec<f64> {
    let k = inst.given.k() as f64;
    (0..inst.n())
        .map(|i| match inst.given.position(i) {
            Some(p) => k - p as f64 + 1.0,
            None => 0.0,
        })
        .collect()
}

/// Fit a linear scoring function by least squares on rank labels.
pub fn fit(inst: &Instance<'_>, variant: Variant) -> Fitted {
    let y = labels(inst);
    let m = inst.m();
    let weights = match variant {
        Variant::Default => {
            // Design matrix with intercept column (the intercept does not
            // affect the induced ranking but improves the fit, matching
            // library defaults). Filled column-by-column straight from
            // the feature store.
            let mut design = Matrix::zeros(inst.n(), m + 1);
            for i in 0..inst.n() {
                design[(i, 0)] = 1.0;
            }
            for j in 0..m {
                for (i, &v) in inst.features.col(j).iter().enumerate() {
                    design[(i, j + 1)] = v;
                }
            }
            match lstsq(&design, &y) {
                Ok(coef) => coef[1..].to_vec(),
                Err(_) => vec![1.0 / m as f64; m],
            }
        }
        Variant::NonNegative => {
            // sklearn's `positive=True` constrains only the coefficients;
            // the intercept stays free. NNLS constrains every column, so
            // the free intercept is encoded as a +1/−1 column pair.
            let mut design = Matrix::zeros(inst.n(), m + 2);
            for i in 0..inst.n() {
                design[(i, 0)] = 1.0;
                design[(i, 1)] = -1.0;
            }
            for j in 0..m {
                for (i, &v) in inst.features.col(j).iter().enumerate() {
                    design[(i, j + 2)] = v;
                }
            }
            match nnls(&design, &y) {
                Ok(coef) => coef[2..].to_vec(),
                Err(_) => vec![1.0 / m as f64; m],
            }
        }
    };
    let error = inst.evaluate(&weights);
    Fitted { weights, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_ranking::{GivenRanking, Tolerances};

    /// Paper Example 3: R = {(1,10000), (2,1000), (5,1), (4,10), (3,100)}
    /// ranked [1,2,3,4,5]. Linear regression swaps tuples 3 and 5,
    /// introducing error 4, while a perfect linear function exists.
    fn example3() -> (Vec<Vec<f64>>, GivenRanking) {
        let rows = vec![
            vec![1.0, 10000.0],
            vec![2.0, 1000.0],
            vec![5.0, 1.0],
            vec![4.0, 10.0],
            vec![3.0, 100.0],
        ];
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), Some(3), Some(4), Some(5)])
            .unwrap();
        (rows, given)
    }

    #[test]
    fn example3_regression_fails_where_opt_succeeds() {
        let (rows, given) = example3();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let default = fit(&inst, Variant::Default);
        let nonneg = fit(&inst, Variant::NonNegative);
        // The paper reports both variants produce ranking [1,2,5,4,3]
        // with error 4.
        assert_eq!(default.error, 4, "default LR error");
        assert_eq!(nonneg.error, 4, "non-negative LR error");
        // And the weight vector 0.99·A1 + 0.01·A2 achieves error 0.
        assert_eq!(inst.evaluate(&[0.99, 0.01]), 0);
    }

    #[test]
    fn recovers_simple_linear_ground_truth() {
        // Scores y = 2a + b, labels faithfully ordered, distinct rows:
        // regression should reproduce the ranking exactly.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64 * 1.5])
            .collect();
        let scores: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + r[1]).collect();
        let given = GivenRanking::from_scores(&scores, 12, 0.0).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let f = fit(&inst, Variant::Default);
        // Linear labels are a monotone transform of a linear score only
        // approximately, but with distinct ranks and exact linear
        // structure the ordering is typically preserved.
        assert!(f.error <= 2, "error {}", f.error);
    }

    #[test]
    fn nonnegative_weights_are_nonnegative() {
        let (rows, given) = example3();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        let f = fit(&inst, Variant::NonNegative);
        assert!(f.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn labels_match_definition() {
        let rows = vec![vec![0.0], vec![0.0], vec![0.0]];
        let given = GivenRanking::from_positions(vec![Some(2), Some(1), None]).unwrap();
        let rows = rankhow_linalg::FeatureMatrix::from_rows(&rows);
        let inst = Instance::new(&rows, &given, Tolerances::exact());
        assert_eq!(labels(&inst), vec![1.0, 2.0, 0.0]);
    }
}
