//! Ranking-function library: the hidden functions that produce "given"
//! rankings in the evaluation (Section VI-A, Table II).

use crate::Dataset;
use rankhow_ranking::GivenRanking;

/// Score every tuple by `Σ_i A_i^p` (the paper's synthetic ranking
/// functions use `p ∈ {2, 3, 4, 5}`).
pub fn sum_pow_scores(data: &Dataset, p: u32) -> Vec<f64> {
    // Columnar accumulation: one contiguous pass per attribute.
    let mut scores = vec![0.0; data.n()];
    for j in 0..data.m() {
        for (s, &a) in scores.iter_mut().zip(data.col(j)) {
            *s += a.powi(p as i32);
        }
    }
    scores
}

/// Score every tuple by a linear function (sanity baseline: OPT must then
/// achieve error 0 with unconstrained weights).
pub fn linear_scores(data: &Dataset, weights: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), data.m());
    data.features().scores(weights)
}

/// Given ranking from `Σ A_i^p` scores: top-`k` ranked, rest `⊥`.
pub fn sum_pow_ranking(data: &Dataset, p: u32, k: usize) -> GivenRanking {
    GivenRanking::from_scores(&sum_pow_scores(data, p), k, 0.0).expect("valid scores")
}

/// Given ranking from a linear function.
pub fn linear_ranking(data: &Dataset, weights: &[f64], k: usize) -> GivenRanking {
    GivenRanking::from_scores(&linear_scores(data, weights), k, 0.0).expect("valid scores")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Distribution};

    #[test]
    fn sum_pow_matches_manual() {
        let d = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 0.5]],
        )
        .unwrap();
        assert_eq!(sum_pow_scores(&d, 2), vec![5.0, 9.25]);
        assert_eq!(sum_pow_scores(&d, 3), vec![9.0, 27.125]);
    }

    #[test]
    fn linear_scores_match_dot() {
        let d = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 0.5]],
        )
        .unwrap();
        assert_eq!(linear_scores(&d, &[0.5, 0.5]), vec![1.5, 1.75]);
    }

    #[test]
    fn rankings_are_valid_for_all_exponents() {
        let d = generate(Distribution::Uniform, 200, 5, 11);
        for p in 2..=5 {
            let r = sum_pow_ranking(&d, p, 10);
            assert_eq!(r.k(), 10);
        }
    }

    #[test]
    fn higher_exponent_changes_order() {
        // A tuple with one large coordinate overtakes a balanced tuple as
        // p grows: [0.8, 0.0] (p=2: 0.64) vs [0.6, 0.6] (p=2: 0.72), but
        // at p=5: 0.328 vs 0.156.
        let d = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![0.8, 0.0], vec![0.6, 0.6]],
        )
        .unwrap();
        let s2 = sum_pow_scores(&d, 2);
        let s5 = sum_pow_scores(&d, 5);
        assert!(s2[1] > s2[0], "balanced wins at p=2");
        assert!(s5[0] > s5[1], "spiky wins at p=5");
    }
}
