//! NBA-like player-season data with hidden ranking processes.
//!
//! Substitution for the real basketball-reference dataset (22,840 player
//! seasons, 1979/80–2022/23). The generator reproduces the statistical
//! structure the experiments depend on:
//!
//! - the **8 default ranking attributes** — PTS, REB, AST, STL, BLK, FG%,
//!   3P%, FT% (per-game averages) — with role-driven correlations (bigs
//!   rebound and block, guards assist and shoot threes, stars score);
//! - a hidden **PER-like efficiency** formula over auxiliary attributes
//!   (attempt counts) that are *not* among the ranking attributes, plus
//!   minutes played (MP), so the `MP·PER` given ranking is realistically
//!   non-linear and partially out-of-scope — exactly the paper's setup;
//! - a simulated **MVP vote**: a 100-member panel ranks its noisy top-5
//!   with 10/7/5/3/1 points; the given ranking is by total points among
//!   players with ≥1 vote, ties included (Section VI-B: 13 players voted,
//!   the last two tied).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankhow_ranking::GivenRanking;

/// The eight default ranking attributes, in paper order.
pub const RANKING_ATTRS: [&str; 8] = ["PTS", "REB", "AST", "STL", "BLK", "FG%", "3P%", "FT%"];

/// A generated NBA-like dataset plus its hidden ranking processes.
#[derive(Clone, Debug)]
pub struct NbaData {
    /// The visible relation: one row per player-season over
    /// [`RANKING_ATTRS`].
    pub dataset: Dataset,
    /// Hidden minutes-played per tuple.
    pub minutes: Vec<f64>,
    /// Hidden PER-like efficiency per tuple.
    pub per: Vec<f64>,
    /// Hidden `MP · PER` scores (the Section VI-C given-ranking source).
    pub mp_per: Vec<f64>,
}

impl NbaData {
    /// Given ranking by the hidden `MP · PER` score (top-`k`).
    pub fn mp_per_ranking(&self, k: usize) -> GivenRanking {
        GivenRanking::from_scores(&self.mp_per, k, 0.0).expect("valid scores")
    }
}

/// Player archetypes driving attribute correlations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Guard,
    Wing,
    Big,
}

/// Generate `n` player-season tuples.
pub fn generate(n: usize, seed: u64) -> NbaData {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut minutes = Vec::with_capacity(n);
    let mut per = Vec::with_capacity(n);

    for _ in 0..n {
        let role = match rng.gen_range(0..3) {
            0 => Role::Guard,
            1 => Role::Wing,
            _ => Role::Big,
        };
        // Latent talent: right-skewed so stars are rare (power of a
        // uniform gives a Beta-like shape).
        let talent: f64 = rng.gen::<f64>().powf(2.0);
        // Minutes follow talent: benchwarmers ~8 mpg, stars ~38.
        let mp = (8.0 + 30.0 * talent + rng.gen_range(-4.0..4.0)).clamp(2.0, 42.0);
        let usage = mp / 36.0;

        let noise = |rng: &mut StdRng, s: f64| rng.gen_range(-s..s);
        let (reb_base, ast_base, stl_base, blk_base, tp_base) = match role {
            Role::Guard => (2.5, 6.0, 1.3, 0.2, 0.36),
            Role::Wing => (5.0, 3.0, 1.0, 0.5, 0.35),
            Role::Big => (9.0, 1.5, 0.7, 1.6, 0.20),
        };
        let pts = (4.0 + 24.0 * talent * usage + noise(&mut rng, 3.0)).max(0.0);
        let reb = (reb_base * (0.5 + talent) * usage + noise(&mut rng, 1.0)).max(0.0);
        let ast = (ast_base * (0.4 + talent) * usage + noise(&mut rng, 0.8)).max(0.0);
        let stl = (stl_base * (0.5 + talent) * usage + noise(&mut rng, 0.3)).max(0.0);
        let blk = (blk_base * (0.5 + talent) * usage + noise(&mut rng, 0.25)).max(0.0);
        let fg = (0.42
            + 0.08 * talent
            + if role == Role::Big { 0.06 } else { 0.0 }
            + noise(&mut rng, 0.03))
        .clamp(0.30, 0.70);
        let tp = (tp_base + 0.05 * talent + noise(&mut rng, 0.06)).clamp(0.0, 0.50);
        let ft = (0.70 + 0.12 * talent - if role == Role::Big { 0.08 } else { 0.0 }
            + noise(&mut rng, 0.05))
        .clamp(0.40, 0.95);

        // Hidden auxiliary attributes for the PER-like formula: shot
        // volume implied by scoring.
        let fga = pts / (2.0 * fg.max(0.05));
        let fta = pts * 0.25 / ft.max(0.05);
        // Linear-weights efficiency per minute, scaled like real PER
        // (league average ≈ 15).
        let u_per = pts + 0.7 * reb + 1.2 * ast + 2.2 * stl + 2.0 * blk
            - 0.8 * fga * (1.0 - fg)
            - 0.4 * fta * (1.0 - ft);
        let per_val = (u_per / mp.max(1.0)) * 36.0 * 0.55 + rng.gen_range(-0.4..0.4);

        rows.push(vec![pts, reb, ast, stl, blk, fg, tp, ft]);
        minutes.push(mp);
        per.push(per_val);
    }

    let mp_per: Vec<f64> = minutes.iter().zip(&per).map(|(m, p)| m * p).collect();
    let names = RANKING_ATTRS.iter().map(|s| s.to_string()).collect();
    NbaData {
        dataset: Dataset::from_rows(names, rows).expect("valid generated data"),
        minutes,
        per,
        mp_per,
    }
}

/// Outcome of the MVP vote simulation.
#[derive(Clone, Debug)]
pub struct MvpVote {
    /// Indices (into the full dataset) of players receiving ≥ 1 vote,
    /// ordered by descending point total.
    pub voted_players: Vec<usize>,
    /// Total award points per voted player (parallel to `voted_players`).
    pub points: Vec<u32>,
    /// Given ranking over the *voted players subset* (competition ranks;
    /// ties share a position).
    pub ranking: GivenRanking,
}

/// Simulate the MVP panel vote (Example 1): `panel_size` voters each rank
/// their perceived top-5 by `MP·PER` plus perception noise, awarding
/// 10/7/5/3/1 points.
pub fn mvp_vote(data: &NbaData, panel_size: usize, seed: u64) -> MvpVote {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.mp_per.len();
    // Panelists only seriously consider the analytic top ~20.
    let mut candidates: Vec<usize> = (0..n).collect();
    candidates.sort_by(|&a, &b| data.mp_per[b].total_cmp(&data.mp_per[a]));
    candidates.truncate(20.min(n));
    // Perception noise large enough that ballots disagree: historically
    // 10–15 players receive votes in a season.
    let spread = {
        let top = data.mp_per[candidates[0]];
        let last = data.mp_per[*candidates.last().unwrap()];
        ((top - last) / 3.0).max(1.0)
    };

    let mut points = vec![0u32; n];
    let award = [10u32, 7, 5, 3, 1];
    for _ in 0..panel_size {
        let mut perceived: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&i| (i, data.mp_per[i] + rng.gen_range(-spread..spread)))
            .collect();
        perceived.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (slot, &(player, _)) in perceived.iter().take(5).enumerate() {
            points[player] += award[slot];
        }
    }

    let mut voted_players: Vec<usize> = (0..n).filter(|&i| points[i] > 0).collect();
    voted_players.sort_by(|&a, &b| points[b].cmp(&points[a]).then(a.cmp(&b)));
    let totals: Vec<u32> = voted_players.iter().map(|&i| points[i]).collect();
    // Competition ranking over the voted subset with exact point ties.
    let scores: Vec<f64> = totals.iter().map(|&p| p as f64).collect();
    let ranking =
        GivenRanking::from_scores(&scores, scores.len(), 0.0).expect("votes form valid ranking");
    MvpVote {
        voted_players,
        points: totals,
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::pearson;

    fn column(d: &Dataset, name: &str) -> Vec<f64> {
        let j = d.attr_index(name).unwrap();
        d.col(j).to_vec()
    }

    #[test]
    fn shape_and_names() {
        let d = generate(300, 1);
        assert_eq!(d.dataset.n(), 300);
        assert_eq!(d.dataset.m(), 8);
        assert_eq!(d.dataset.names()[0], "PTS");
        assert_eq!(d.minutes.len(), 300);
        assert_eq!(d.mp_per.len(), 300);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(50, 9).dataset, generate(50, 9).dataset);
    }

    #[test]
    fn attribute_ranges_plausible() {
        let d = generate(2000, 2);
        for i in 0..d.dataset.n() {
            let row = d.dataset.row(i);
            let (pts, reb, ast, fg, tp, ft) = (row[0], row[1], row[2], row[5], row[6], row[7]);
            assert!((0.0..60.0).contains(&pts), "PTS {pts}");
            assert!((0.0..25.0).contains(&reb), "REB {reb}");
            assert!((0.0..20.0).contains(&ast), "AST {ast}");
            assert!((0.30..=0.70).contains(&fg));
            assert!((0.0..=0.50).contains(&tp));
            assert!((0.40..=0.95).contains(&ft));
        }
    }

    #[test]
    fn scoring_correlates_with_mp_per() {
        // One attribute should strongly correlate with the given ranking
        // score — the property Section VI-C blames for AdaRank's failure.
        let d = generate(3000, 3);
        let pts = column(&d.dataset, "PTS");
        let r = pearson(&pts, &d.mp_per);
        assert!(r > 0.75, "PTS vs MP*PER corr = {r}");
    }

    #[test]
    fn role_structure_visible() {
        // REB and AST should be negatively correlated across the league
        // (bigs vs guards), unlike PTS which everyone accumulates.
        let d = generate(3000, 4);
        let reb = column(&d.dataset, "REB");
        let ast = column(&d.dataset, "AST");
        let blk = column(&d.dataset, "BLK");
        assert!(pearson(&reb, &blk) > 0.3, "bigs rebound and block");
        assert!(
            pearson(&reb, &ast) < pearson(&reb, &blk),
            "REB-AST weaker than REB-BLK"
        );
    }

    #[test]
    fn mvp_vote_has_realistic_shape() {
        let d = generate(2000, 5);
        let vote = mvp_vote(&d, 100, 5);
        // A typical vote concentrates on 8–25 players.
        assert!(
            (5..=25).contains(&vote.voted_players.len()),
            "{} voted",
            vote.voted_players.len()
        );
        // Points descending.
        for w in vote.points.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Total points conserved: 100 voters × 26 points.
        let sum: u32 = vote.points.iter().sum();
        assert_eq!(sum, 100 * 26);
        // Ranking is over exactly the voted subset.
        assert_eq!(vote.ranking.len(), vote.voted_players.len());
        assert_eq!(vote.ranking.position(0), Some(1));
    }

    #[test]
    fn mvp_ranking_positions_follow_points() {
        let d = generate(2000, 6);
        let vote = mvp_vote(&d, 100, 7);
        for i in 1..vote.points.len() {
            let prev = vote.ranking.position(i - 1).unwrap();
            let cur = vote.ranking.position(i).unwrap();
            if vote.points[i - 1] == vote.points[i] {
                assert_eq!(prev, cur, "equal points tie");
            } else {
                assert!(prev < cur);
            }
        }
    }

    #[test]
    fn mp_per_ranking_valid() {
        let d = generate(500, 8);
        let r = d.mp_per_ranking(6);
        assert_eq!(r.k(), 6);
        assert_eq!(r.len(), 500);
    }
}
