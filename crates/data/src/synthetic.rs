//! Synthetic data distributions (uniform / correlated / anti-correlated).
//!
//! These replicate the generators of Börzsönyi et al.'s skyline paper,
//! which the RankHow evaluation cites as the pattern source for its nine
//! 1M-tuple synthetic datasets (three per distribution). All generators
//! are deterministic in their seed.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which correlation structure to generate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Distribution {
    /// Attributes i.i.d. uniform on `[0, 1]`.
    Uniform,
    /// All attributes positively correlated with a shared latent value.
    Correlated,
    /// Half the attributes track the latent value, half track its
    /// complement.
    AntiCorrelated,
}

impl Distribution {
    /// All three, in the paper's presentation order.
    pub fn all() -> [Distribution; 3] {
        [
            Distribution::Uniform,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
        }
    }
}

/// Generate `n` tuples over `m` attributes with the given distribution.
pub fn generate(dist: Distribution, n: usize, m: usize, seed: u64) -> Dataset {
    assert!(n >= 1 && m >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let names = (0..m).map(|i| format!("A{}", i + 1)).collect();
    let rows = (0..n)
        .map(|_| match dist {
            Distribution::Uniform => (0..m).map(|_| rng.gen::<f64>()).collect(),
            Distribution::Correlated => {
                let latent: f64 = rng.gen();
                (0..m)
                    .map(|_| {
                        let noise: f64 = rng.gen_range(-0.15..0.15);
                        (latent + noise).clamp(0.0, 1.0)
                    })
                    .collect()
            }
            Distribution::AntiCorrelated => {
                let latent: f64 = rng.gen();
                (0..m)
                    .map(|j| {
                        let base = if j < m / 2 { latent } else { 1.0 - latent };
                        let noise: f64 = rng.gen_range(-0.15..0.15);
                        (base + noise).clamp(0.0, 1.0)
                    })
                    .collect()
            }
        })
        .collect();
    Dataset::from_rows(names, rows).expect("generator produces valid data")
}

/// Pearson correlation between two equally-long samples (test helper and
/// generator-quality probe).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(d: &Dataset, j: usize) -> Vec<f64> {
        d.col(j).to_vec()
    }

    #[test]
    fn shapes_and_ranges() {
        for dist in Distribution::all() {
            let d = generate(dist, 500, 5, 42);
            assert_eq!(d.n(), 500);
            assert_eq!(d.m(), 5);
            for j in 0..d.m() {
                assert!(d.col(j).iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(Distribution::Uniform, 100, 3, 7);
        let b = generate(Distribution::Uniform, 100, 3, 7);
        let c = generate(Distribution::Uniform, 100, 3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_is_roughly_uncorrelated() {
        let d = generate(Distribution::Uniform, 4000, 2, 1);
        let r = pearson(&column(&d, 0), &column(&d, 1));
        assert!(r.abs() < 0.08, "uniform corr {r}");
    }

    #[test]
    fn correlated_attributes_strongly_positive() {
        let d = generate(Distribution::Correlated, 4000, 4, 2);
        for j in 1..4 {
            let r = pearson(&column(&d, 0), &column(&d, j));
            assert!(r > 0.7, "corr A1-A{} = {r}", j + 1);
        }
    }

    #[test]
    fn anti_correlated_halves_oppose() {
        let d = generate(Distribution::AntiCorrelated, 4000, 4, 3);
        // Within the first half: positive; across halves: negative.
        let same = pearson(&column(&d, 0), &column(&d, 1));
        let cross = pearson(&column(&d, 0), &column(&d, 2));
        assert!(same > 0.6, "same-half corr {same}");
        assert!(cross < -0.6, "cross-half corr {cross}");
    }

    #[test]
    fn pearson_degenerate_constant() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }
}
