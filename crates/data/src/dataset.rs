//! The relation `R`: a rectangular table of named numeric attributes.

use std::fmt;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors constructing or loading a [`Dataset`].
#[derive(Debug)]
pub enum DatasetError {
    /// Rows have differing arity.
    Ragged {
        /// First offending row index.
        row: usize,
        /// Expected arity (from the first row / header).
        expected: usize,
        /// Actual arity found.
        got: usize,
    },
    /// A value is NaN or infinite.
    NonFinite {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// No attributes or no rows.
    Empty,
    /// CSV parse failure.
    Parse {
        /// 1-based line number in the CSV file.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Ragged { row, expected, got } => {
                write!(f, "row {row} has {got} values, expected {expected}")
            }
            DatasetError::NonFinite { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            DatasetError::Empty => write!(f, "dataset must have at least one row and column"),
            DatasetError::Parse { line, message } => write!(f, "line {line}: {message}"),
            DatasetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// A relation with `n` tuples over `m` named numeric ranking attributes.
///
/// Attribute semantics follow the paper: *larger is better* for every
/// attribute (undesirable attributes are negated before loading —
/// Section I: "the column is simply converted to negative values").
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    names: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Dataset {
    /// Build from attribute names and row-major values, validating shape
    /// and finiteness.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self, DatasetError> {
        if names.is_empty() || rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        let m = names.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(DatasetError::Ragged {
                    row: i,
                    expected: m,
                    got: row.len(),
                });
            }
            for (j, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFinite { row: i, col: j });
                }
            }
        }
        Ok(Dataset { names, rows })
    }

    /// Number of tuples `n`.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// Number of attributes `m`.
    pub fn m(&self) -> usize {
        self.names.len()
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// One row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Project onto a subset of attributes (by index, in the given order).
    pub fn select_attrs(&self, attrs: &[usize]) -> Dataset {
        let names = attrs.iter().map(|&a| self.names[a].clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| attrs.iter().map(|&a| r[a]).collect())
            .collect();
        Dataset { names, rows }
    }

    /// Keep only the first `n` tuples (the "varying n" experiments).
    pub fn take_rows(&self, n: usize) -> Dataset {
        Dataset {
            names: self.names.clone(),
            rows: self.rows[..n.min(self.rows.len())].to_vec(),
        }
    }

    /// Keep the tuples at the given indices, in order.
    pub fn select_rows(&self, idx: &[usize]) -> Dataset {
        Dataset {
            names: self.names.clone(),
            rows: idx.iter().map(|&i| self.rows[i].clone()).collect(),
        }
    }

    /// Min-max normalize every attribute to `[0, 1]` (constant columns
    /// become all-zero). Keeps ranking semantics: normalization is a
    /// positive affine map per attribute.
    pub fn min_max_normalized(&self) -> Dataset {
        let m = self.m();
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![f64::NEG_INFINITY; m];
        for row in &self.rows {
            for j in 0..m {
                lo[j] = lo[j].min(row[j]);
                hi[j] = hi[j].max(row[j]);
            }
        }
        let rows = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let span = hi[j] - lo[j];
                        if span > 0.0 {
                            (v - lo[j]) / span
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        Dataset {
            names: self.names.clone(),
            rows,
        }
    }

    /// Append squared copies `A_i²` of every attribute (Section VI-F:
    /// derived attributes make linear functions express quadratics).
    pub fn with_squared_attrs(&self) -> Dataset {
        let mut names = self.names.clone();
        names.extend(self.names.iter().map(|n| format!("{n}^2")));
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut row = r.clone();
                row.extend(r.iter().map(|v| v * v));
                row
            })
            .collect();
        Dataset { names, rows }
    }

    /// Append an arbitrary derived attribute computed from each row.
    pub fn with_derived(&self, name: &str, f: impl Fn(&[f64]) -> f64) -> Dataset {
        let mut names = self.names.clone();
        names.push(name.to_string());
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut row = r.clone();
                row.push(f(r));
                row
            })
            .collect();
        Dataset { names, rows }
    }

    /// Write as CSV (header + rows).
    pub fn to_csv(&self, path: &Path) -> Result<(), DatasetError> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{}", self.names.join(","))?;
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            writeln!(w, "{}", line.join(","))?;
        }
        w.flush()?;
        Ok(())
    }

    /// Read from CSV (header + numeric rows).
    pub fn from_csv(path: &Path) -> Result<Self, DatasetError> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or(DatasetError::Empty)?
            .map_err(DatasetError::Io)?;
        let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        let mut rows = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line.map_err(DatasetError::Io)?;
            if line.trim().is_empty() {
                continue;
            }
            let row: Result<Vec<f64>, _> = line
                .split(',')
                .map(|tok| tok.trim().parse::<f64>())
                .collect();
            match row {
                Ok(r) => rows.push(r),
                Err(e) => {
                    return Err(DatasetError::Parse {
                        line: lineno + 2,
                        message: e.to_string(),
                    })
                }
            }
        }
        Dataset::from_rows(names, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 15.0]],
        )
        .unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            Dataset::from_rows(vec!["a".into()], vec![vec![1.0], vec![1.0, 2.0]]),
            Err(DatasetError::Ragged { row: 1, .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec!["a".into()], vec![vec![f64::NAN]]),
            Err(DatasetError::NonFinite { .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![], vec![]),
            Err(DatasetError::Empty)
        ));
    }

    #[test]
    fn accessors() {
        let d = small();
        assert_eq!(d.n(), 3);
        assert_eq!(d.m(), 2);
        assert_eq!(d.attr_index("b"), Some(1));
        assert_eq!(d.attr_index("z"), None);
        assert_eq!(d.row(2), &[3.0, 15.0]);
    }

    #[test]
    fn select_and_take() {
        let d = small();
        let p = d.select_attrs(&[1]);
        assert_eq!(p.m(), 1);
        assert_eq!(p.row(0), &[10.0]);
        let t = d.take_rows(2);
        assert_eq!(t.n(), 2);
        let s = d.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 15.0]);
        assert_eq!(s.row(1), &[1.0, 10.0]);
    }

    #[test]
    fn normalization_to_unit_interval() {
        let d = small().min_max_normalized();
        assert_eq!(d.row(0), &[0.0, 0.0]);
        assert_eq!(d.row(1), &[0.5, 1.0]);
        assert_eq!(d.row(2), &[1.0, 0.5]);
    }

    #[test]
    fn normalization_constant_column() {
        let d = Dataset::from_rows(vec!["c".into()], vec![vec![7.0], vec![7.0]])
            .unwrap()
            .min_max_normalized();
        assert_eq!(d.row(0), &[0.0]);
        assert_eq!(d.row(1), &[0.0]);
    }

    #[test]
    fn normalization_preserves_order() {
        let d = small();
        let n = d.min_max_normalized();
        for j in 0..d.m() {
            for i1 in 0..d.n() {
                for i2 in 0..d.n() {
                    let before = d.row(i1)[j].partial_cmp(&d.row(i2)[j]).unwrap();
                    let after = n.row(i1)[j].partial_cmp(&n.row(i2)[j]).unwrap();
                    assert_eq!(before, after);
                }
            }
        }
    }

    #[test]
    fn squared_attributes() {
        let d = small().with_squared_attrs();
        assert_eq!(d.m(), 4);
        assert_eq!(d.names()[2], "a^2");
        assert_eq!(d.row(1), &[2.0, 20.0, 4.0, 400.0]);
    }

    #[test]
    fn derived_attribute() {
        let d = small().with_derived("sum", |r| r.iter().sum());
        assert_eq!(d.m(), 3);
        assert_eq!(d.row(0)[2], 11.0);
    }

    #[test]
    fn csv_roundtrip() {
        let d = small();
        let dir = std::env::temp_dir().join("rankhow_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        d.to_csv(&path).unwrap();
        let back = Dataset::from_csv(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_parse_error_reports_line() {
        let dir = std::env::temp_dir().join("rankhow_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1,2\nx,3\n").unwrap();
        match Dataset::from_csv(&path) {
            Err(DatasetError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
