//! The relation `R`: a rectangular table of named numeric attributes.

use rankhow_linalg::FeatureMatrix;
use std::fmt;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors constructing or loading a [`Dataset`].
#[derive(Debug)]
pub enum DatasetError {
    /// Rows have differing arity.
    Ragged {
        /// First offending row index.
        row: usize,
        /// Expected arity (from the first row / header).
        expected: usize,
        /// Actual arity found.
        got: usize,
    },
    /// A value is NaN or infinite.
    NonFinite {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// No attributes or no rows.
    Empty,
    /// CSV parse failure.
    Parse {
        /// 1-based line number in the CSV file.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Ragged { row, expected, got } => {
                write!(f, "row {row} has {got} values, expected {expected}")
            }
            DatasetError::NonFinite { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            DatasetError::Empty => write!(f, "dataset must have at least one row and column"),
            DatasetError::Parse { line, message } => write!(f, "line {line}: {message}"),
            DatasetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// A relation with `n` tuples over `m` named numeric ranking attributes,
/// stored columnar ([`FeatureMatrix`]) so score sweeps and per-attribute
/// statistics stream contiguous memory.
///
/// Attribute semantics follow the paper: *larger is better* for every
/// attribute (undesirable attributes are negated before loading —
/// Section I: "the column is simply converted to negative values").
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    names: Vec<String>,
    features: FeatureMatrix,
}

impl Dataset {
    /// Build from attribute names and row-major values, validating shape
    /// and finiteness. Storage is transposed to columnar.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self, DatasetError> {
        if names.is_empty() || rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        let m = names.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(DatasetError::Ragged {
                    row: i,
                    expected: m,
                    got: row.len(),
                });
            }
            for (j, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFinite { row: i, col: j });
                }
            }
        }
        Ok(Dataset {
            names,
            features: FeatureMatrix::from_rows(&rows),
        })
    }

    /// Build directly from columnar storage, validating shape and
    /// finiteness.
    pub fn from_features(
        names: Vec<String>,
        features: FeatureMatrix,
    ) -> Result<Self, DatasetError> {
        if names.is_empty() || features.n() == 0 {
            return Err(DatasetError::Empty);
        }
        if names.len() != features.m() {
            return Err(DatasetError::Ragged {
                row: 0,
                expected: names.len(),
                got: features.m(),
            });
        }
        for j in 0..features.m() {
            if let Some(i) = features.col(j).iter().position(|v| !v.is_finite()) {
                return Err(DatasetError::NonFinite { row: i, col: j });
            }
        }
        Ok(Dataset { names, features })
    }

    /// Number of tuples `n`.
    pub fn n(&self) -> usize {
        self.features.n()
    }

    /// Number of attributes `m`.
    pub fn m(&self) -> usize {
        self.features.m()
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The columnar feature store — what every scoring and solver layer
    /// consumes.
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// Attribute column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        self.features.col(j)
    }

    /// One value.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.features.get(i, j)
    }

    /// One row, gathered from the columns.
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.features.row_vec(i)
    }

    /// All rows, row-major (export/interop path — prefer
    /// [`Dataset::features`] for computation).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.features.to_rows()
    }

    /// Project onto a subset of attributes (by index, in the given order).
    pub fn select_attrs(&self, attrs: &[usize]) -> Dataset {
        Dataset {
            names: attrs.iter().map(|&a| self.names[a].clone()).collect(),
            features: self.features.select_columns(attrs),
        }
    }

    /// Keep only the first `n` tuples (the "varying n" experiments).
    pub fn take_rows(&self, n: usize) -> Dataset {
        Dataset {
            names: self.names.clone(),
            features: self.features.take_rows(n),
        }
    }

    /// Keep the tuples at the given indices, in order.
    pub fn select_rows(&self, idx: &[usize]) -> Dataset {
        Dataset {
            names: self.names.clone(),
            features: self.features.select_rows(idx),
        }
    }

    /// Min-max normalize every attribute to `[0, 1]` (constant columns
    /// become all-zero). Keeps ranking semantics: normalization is a
    /// positive affine map per attribute.
    pub fn min_max_normalized(&self) -> Dataset {
        Dataset {
            names: self.names.clone(),
            features: self.features.min_max_normalized(),
        }
    }

    /// Append squared copies `A_i²` of every attribute (Section VI-F:
    /// derived attributes make linear functions express quadratics).
    pub fn with_squared_attrs(&self) -> Dataset {
        let mut names = self.names.clone();
        names.extend(self.names.iter().map(|n| format!("{n}^2")));
        let mut features = self.features.clone();
        for j in 0..self.m() {
            features.push_column(self.features.col(j).iter().map(|v| v * v).collect());
        }
        Dataset { names, features }
    }

    /// Append an arbitrary derived attribute computed from each row.
    pub fn with_derived(&self, name: &str, f: impl Fn(&[f64]) -> f64) -> Dataset {
        let mut names = self.names.clone();
        names.push(name.to_string());
        let mut row = vec![0.0; self.m()];
        let col = (0..self.n())
            .map(|i| {
                self.features.copy_row_into(i, &mut row);
                f(&row)
            })
            .collect();
        let mut features = self.features.clone();
        features.push_column(col);
        Dataset { names, features }
    }

    /// Write as CSV (header + rows).
    pub fn to_csv(&self, path: &Path) -> Result<(), DatasetError> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{}", self.names.join(","))?;
        for i in 0..self.n() {
            let line: Vec<String> = self.features.row_iter(i).map(|v| format!("{v}")).collect();
            writeln!(w, "{}", line.join(","))?;
        }
        w.flush()?;
        Ok(())
    }

    /// Read from CSV (header + numeric rows).
    pub fn from_csv(path: &Path) -> Result<Self, DatasetError> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or(DatasetError::Empty)?
            .map_err(DatasetError::Io)?;
        let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        let mut rows = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line.map_err(DatasetError::Io)?;
            if line.trim().is_empty() {
                continue;
            }
            let row: Result<Vec<f64>, _> = line
                .split(',')
                .map(|tok| tok.trim().parse::<f64>())
                .collect();
            match row {
                Ok(r) => rows.push(r),
                Err(e) => {
                    return Err(DatasetError::Parse {
                        line: lineno + 2,
                        message: e.to_string(),
                    })
                }
            }
        }
        Dataset::from_rows(names, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 15.0]],
        )
        .unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            Dataset::from_rows(vec!["a".into()], vec![vec![1.0], vec![1.0, 2.0]]),
            Err(DatasetError::Ragged { row: 1, .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec!["a".into()], vec![vec![f64::NAN]]),
            Err(DatasetError::NonFinite { .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![], vec![]),
            Err(DatasetError::Empty)
        ));
    }

    #[test]
    fn from_features_validates_like_from_rows() {
        let fm = FeatureMatrix::from_columns(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let d = Dataset::from_features(vec!["a".into(), "b".into()], fm).unwrap();
        assert_eq!(d.row(1), vec![2.0, 4.0]);
        let bad = FeatureMatrix::from_columns(vec![vec![1.0, f64::NAN]]);
        assert!(matches!(
            Dataset::from_features(vec!["a".into()], bad),
            Err(DatasetError::NonFinite { row: 1, col: 0 })
        ));
        let mismatched = FeatureMatrix::from_columns(vec![vec![1.0]]);
        assert!(matches!(
            Dataset::from_features(vec!["a".into(), "b".into()], mismatched),
            Err(DatasetError::Ragged { .. })
        ));
    }

    #[test]
    fn accessors() {
        let d = small();
        assert_eq!(d.n(), 3);
        assert_eq!(d.m(), 2);
        assert_eq!(d.attr_index("b"), Some(1));
        assert_eq!(d.attr_index("z"), None);
        assert_eq!(d.row(2), &[3.0, 15.0]);
        assert_eq!(d.col(1), &[10.0, 20.0, 15.0]);
        assert_eq!(d.value(1, 0), 2.0);
    }

    #[test]
    fn storage_is_columnar() {
        let d = small();
        assert_eq!(d.features().stride(), d.n());
        assert_eq!(d.features().col(0), &[1.0, 2.0, 3.0]);
        assert_eq!(
            d.to_rows(),
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 15.0]]
        );
    }

    #[test]
    fn select_and_take() {
        let d = small();
        let p = d.select_attrs(&[1]);
        assert_eq!(p.m(), 1);
        assert_eq!(p.row(0), &[10.0]);
        let t = d.take_rows(2);
        assert_eq!(t.n(), 2);
        let s = d.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 15.0]);
        assert_eq!(s.row(1), &[1.0, 10.0]);
    }

    #[test]
    fn normalization_to_unit_interval() {
        let d = small().min_max_normalized();
        assert_eq!(d.row(0), &[0.0, 0.0]);
        assert_eq!(d.row(1), &[0.5, 1.0]);
        assert_eq!(d.row(2), &[1.0, 0.5]);
    }

    #[test]
    fn normalization_constant_column() {
        let d = Dataset::from_rows(vec!["c".into()], vec![vec![7.0], vec![7.0]])
            .unwrap()
            .min_max_normalized();
        assert_eq!(d.row(0), &[0.0]);
        assert_eq!(d.row(1), &[0.0]);
    }

    #[test]
    fn normalization_preserves_order() {
        let d = small();
        let n = d.min_max_normalized();
        for j in 0..d.m() {
            for i1 in 0..d.n() {
                for i2 in 0..d.n() {
                    let before = d.value(i1, j).partial_cmp(&d.value(i2, j)).unwrap();
                    let after = n.value(i1, j).partial_cmp(&n.value(i2, j)).unwrap();
                    assert_eq!(before, after);
                }
            }
        }
    }

    #[test]
    fn squared_attributes() {
        let d = small().with_squared_attrs();
        assert_eq!(d.m(), 4);
        assert_eq!(d.names()[2], "a^2");
        assert_eq!(d.row(1), &[2.0, 20.0, 4.0, 400.0]);
    }

    #[test]
    fn derived_attribute() {
        let d = small().with_derived("sum", |r| r.iter().sum());
        assert_eq!(d.m(), 3);
        assert_eq!(d.row(0)[2], 11.0);
    }

    #[test]
    fn csv_roundtrip() {
        let d = small();
        let dir = std::env::temp_dir().join("rankhow_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        d.to_csv(&path).unwrap();
        let back = Dataset::from_csv(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_parse_error_reports_line() {
        let dir = std::env::temp_dir().join("rankhow_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1,2\nx,3\n").unwrap();
        match Dataset::from_csv(&path) {
            Err(DatasetError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
