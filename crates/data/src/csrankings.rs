//! CSRankings-like institution data.
//!
//! Substitution for the real CSRankings dataset (628 institutions × 27
//! computer-science areas of publication counts). The generator keeps
//! the properties the experiments exercise:
//!
//! - few tuples, **many attributes** (the m-sweep of Fig. 3g goes to 27);
//! - heavy-tailed counts (a handful of institutions dominate);
//! - correlated area strengths (strong schools are strong broadly, with
//!   per-area specialization);
//! - a **geometric-mean default ranking** — CSRankings ranks by the
//!   geometric mean of adjusted per-area counts, which is a realistic
//!   non-linear given ranking for OPT.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankhow_ranking::GivenRanking;

/// The 27 CSRankings areas (used as attribute names).
pub const AREAS: [&str; 27] = [
    "AI", "Vision", "ML", "NLP", "Web+IR", "Arch", "Networks", "Security", "DB", "EDA", "HPC",
    "Mobile", "Metrics", "OS", "PL", "SE", "Theory", "Crypto", "Logic", "Graphics", "HCI",
    "Robotics", "Bio", "Viz", "ECom", "CompSci", "CSEd",
];

/// Generated CSRankings-like data.
#[derive(Clone, Debug)]
pub struct CsRankingsData {
    /// One row per institution over the 27 area publication counts.
    pub dataset: Dataset,
    /// Hidden geometric-mean scores (the default-ranking source).
    pub geo_mean: Vec<f64>,
}

impl CsRankingsData {
    /// The default given ranking (top-`k` by geometric-mean score).
    pub fn default_ranking(&self, k: usize) -> GivenRanking {
        GivenRanking::from_scores(&self.geo_mean, k, 0.0).expect("valid scores")
    }
}

/// Generate `n` institutions over all 27 areas.
pub fn generate(n: usize, seed: u64) -> CsRankingsData {
    assert!(n >= 1);
    let m = AREAS.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        // Institution strength: Pareto-ish heavy tail.
        let u: f64 = rng.gen_range(0.0001..1.0f64);
        let strength = 3.0 / u.powf(0.65); // few very large values

        // Area profile: gamma-like weights (specialization).
        let mut profile: Vec<f64> = (0..m)
            .map(|_| {
                let g: f64 = rng.gen_range(0.0001..1.0f64);
                -g.ln() // Exp(1) sample: sparse-ish profile
            })
            .collect();
        let total: f64 = profile.iter().sum();
        profile.iter_mut().for_each(|p| *p /= total);
        let row: Vec<f64> = profile
            .iter()
            .map(|p| (strength * p * m as f64).round().max(0.0))
            .collect();
        rows.push(row);
    }
    let geo_mean = rows
        .iter()
        .map(|r| {
            let log_sum: f64 = r.iter().map(|c| (c + 1.0).ln()).sum();
            (log_sum / m as f64).exp()
        })
        .collect();
    let names = AREAS.iter().map(|s| s.to_string()).collect();
    CsRankingsData {
        dataset: Dataset::from_rows(names, rows).expect("valid generated data"),
        geo_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let d = generate(628, 1);
        assert_eq!(d.dataset.n(), 628);
        assert_eq!(d.dataset.m(), 27);
        assert_eq!(d.dataset.names()[8], "DB");
    }

    #[test]
    fn counts_are_nonnegative_integers() {
        let d = generate(200, 2);
        for j in 0..d.dataset.m() {
            for &v in d.dataset.col(j) {
                assert!(v >= 0.0 && v.fract() == 0.0);
            }
        }
    }

    #[test]
    fn heavy_tail_present() {
        let d = generate(628, 3);
        let mut totals: Vec<f64> = (0..d.dataset.n())
            .map(|i| d.dataset.features().row_iter(i).sum())
            .collect();
        totals.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = totals[..10].iter().sum();
        let all: f64 = totals.iter().sum();
        // Top decile institutions should hold a disproportionate share.
        assert!(top10 / all > 0.10, "top-10 share {}", top10 / all);
    }

    #[test]
    fn geo_mean_ranking_valid_and_nontrivial() {
        let d = generate(628, 4);
        let r = d.default_ranking(25);
        assert_eq!(r.k(), 25);
        // The #1 institution by geo-mean must also be the argmax score.
        let best = (0..d.geo_mean.len())
            .max_by(|&a, &b| d.geo_mean[a].total_cmp(&d.geo_mean[b]))
            .unwrap();
        assert_eq!(r.position(best), Some(1));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(100, 7).dataset, generate(100, 7).dataset);
    }
}
