//! Datasets for RankHow: the relation `R`, synthetic generators, and the
//! ranking functions that produce "given" rankings.
//!
//! The paper evaluates on two real datasets (NBA player-seasons from
//! basketball-reference.com, CSRankings institution/area publication
//! counts) plus nine synthetic datasets (uniform / correlated /
//! anti-correlated à la the skyline-operator paper). The real datasets
//! are not redistributable, so this crate ships *statistically faithful
//! simulacra* (see DESIGN.md §2 for the substitution argument):
//!
//! - [`nba::generate`] — player-season stats with realistic role-based
//!   correlations, a hidden PER-like efficiency formula, minutes played,
//!   and a simulated MVP voting panel (Example 1 / Section VI-B);
//! - [`csrankings::generate`] — heavy-tailed publication counts over 27
//!   areas with a geometric-mean default ranking;
//! - [`synthetic`] — the three classic distributions at any `n`, `m`.
//!
//! [`Dataset`] is the shared table type: named `f64` columns, min-max
//! normalization, derived-attribute augmentation (Section VI-F), CSV IO.

#![warn(missing_docs)]

pub mod csrankings;
mod dataset;
pub mod nba;
pub mod rankfns;
pub mod synthetic;

pub use dataset::{Dataset, DatasetError};
