//! Property tests for the `Dataset` invariants: shape validation,
//! finiteness, projection/selection consistency, normalization bounds,
//! and the CSV round-trip.

use proptest::prelude::*;
use rankhow_data::{Dataset, DatasetError};

/// Names + rectangular finite rows for a random small dataset.
fn table() -> impl Strategy<Value = (Vec<String>, Vec<Vec<f64>>)> {
    (1usize..5, 1usize..16).prop_flat_map(|(m, n)| {
        let names: Vec<String> = (0..m).map(|j| format!("a{j}")).collect();
        prop::collection::vec(prop::collection::vec(-1e6..1e6f64, m), n)
            .prop_map(move |rows| (names.clone(), rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every rectangular finite table is accepted, and the accessors
    /// reflect the construction inputs exactly.
    #[test]
    fn rectangular_tables_accepted((names, rows) in table()) {
        let (m, n) = (names.len(), rows.len());
        let d = Dataset::from_rows(names.clone(), rows.clone());
        prop_assert!(d.is_ok(), "{d:?}");
        let d = d.unwrap();
        prop_assert_eq!(d.n(), n);
        prop_assert_eq!(d.m(), m);
        prop_assert_eq!(d.names(), &names[..]);
        prop_assert_eq!(d.to_rows(), rows);
    }

    /// Changing any single row's arity must be rejected as `Ragged`,
    /// pointing at the first offending row.
    #[test]
    fn ragged_rows_rejected(
        (names, mut rows) in table(),
        victim_frac in 0.0..1.0f64,
        grow in any::<bool>(),
    ) {
        let m = names.len();
        let victim = ((rows.len() as f64 * victim_frac) as usize).min(rows.len() - 1);
        if grow {
            rows[victim].push(0.0);
        } else {
            rows[victim].pop();
        }
        // Popping the only column of a 1-attribute row leaves an empty
        // row, which is still a shape error.
        let expected_first = rows.iter().position(|r| r.len() != m).unwrap();
        match Dataset::from_rows(names, rows) {
            Err(DatasetError::Ragged { row, expected, got }) => {
                prop_assert_eq!(row, expected_first);
                prop_assert_eq!(expected, m);
                prop_assert_ne!(got, m);
            }
            other => return Err(TestCaseError::fail(format!("expected Ragged, got {other:?}"))),
        }
    }

    /// Any non-finite cell is rejected with its exact coordinates.
    #[test]
    fn non_finite_rejected(
        (names, mut rows) in table(),
        ri_frac in 0.0..1.0f64,
        cj_frac in 0.0..1.0f64,
        poison_nan in any::<bool>(),
    ) {
        let ri = ((rows.len() as f64 * ri_frac) as usize).min(rows.len() - 1);
        let cj = ((names.len() as f64 * cj_frac) as usize).min(names.len() - 1);
        rows[ri][cj] = if poison_nan { f64::NAN } else { f64::INFINITY };
        match Dataset::from_rows(names, rows) {
            Err(DatasetError::NonFinite { row, col }) => {
                prop_assert_eq!((row, col), (ri, cj));
            }
            other => return Err(TestCaseError::fail(format!("expected NonFinite, got {other:?}"))),
        }
    }

    /// Min-max normalization stays inside [0, 1] and preserves the
    /// per-attribute order of every pair of tuples.
    #[test]
    fn normalization_bounded_and_monotone((names, rows) in table()) {
        let d = Dataset::from_rows(names, rows).unwrap();
        let norm = d.min_max_normalized();
        prop_assert_eq!(norm.n(), d.n());
        prop_assert_eq!(norm.m(), d.m());
        for j in 0..norm.m() {
            for &v in norm.col(j) {
                prop_assert!((0.0..=1.0).contains(&v), "normalized value {v} out of [0,1]");
            }
        }
        for j in 0..d.m() {
            for i1 in 0..d.n() {
                for i2 in 0..d.n() {
                    if d.row(i1)[j] < d.row(i2)[j] {
                        prop_assert!(norm.row(i1)[j] <= norm.row(i2)[j]);
                    }
                }
            }
        }
    }

    /// `select_attrs` + `select_rows` commute with direct indexing.
    #[test]
    fn selection_matches_indexing(
        (names, rows) in table(),
        attr_frac in 0.0..1.0f64,
        row_frac in 0.0..1.0f64,
    ) {
        let d = Dataset::from_rows(names, rows).unwrap();
        let aj = ((d.m() as f64 * attr_frac) as usize).min(d.m() - 1);
        let ri = ((d.n() as f64 * row_frac) as usize).min(d.n() - 1);
        let picked = d.select_attrs(&[aj]).select_rows(&[ri]);
        prop_assert_eq!(picked.n(), 1);
        prop_assert_eq!(picked.m(), 1);
        prop_assert_eq!(picked.row(0)[0], d.row(ri)[aj]);
        let taken = d.take_rows(ri + 1);
        prop_assert_eq!(taken.n(), ri + 1);
        prop_assert_eq!(taken.row(ri), d.row(ri));
    }

    /// CSV write → read reproduces the same shape and near-identical
    /// values (f64 `Display` round-trips exactly in Rust).
    #[test]
    fn csv_round_trip((names, rows) in table()) {
        let d = Dataset::from_rows(names, rows).unwrap();
        let dir = std::env::temp_dir().join("rankhow_data_proptests");
        std::fs::create_dir_all(&dir).unwrap();
        // Unique file per process; cases run sequentially within a test.
        let path = dir.join(format!("table_{}.csv", std::process::id()));
        d.to_csv(&path).unwrap();
        let back = Dataset::from_csv(&path);
        std::fs::remove_file(&path).ok();
        let back = match back {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(format!("reload failed: {e}"))),
        };
        prop_assert_eq!(&back, &d);
    }
}
