//! The reentrant per-job search state.
//!
//! A [`SolveJob`] owns *all* mutable state of one OPT solve — frontier,
//! incumbent, counters, limits — behind interior mutability, so any
//! number of workers can advance the same job concurrently through
//! [`SolveJob::step`] and any thread can observe or cancel it. Three
//! drivers share this one search loop:
//!
//! - the blocking [`RankHow::solve`](super::RankHow::solve) (one job,
//!   stepped to completion on the caller's threads);
//! - the `rankhow-serve` scheduler (many jobs interleaved over one
//!   long-lived worker pool, node-budget time slicing per job);
//! - tests that single-step the search deterministically.
//!
//! Cancellation and deadlines are cooperative and checked at node
//! granularity: a stopped job keeps its best-so-far incumbent and
//! reports a [`SolveStatus`] instead of an error.

use super::bounds::interval_bound;
use super::engine::{in_box, EngineScratch, SearchView};
use super::frontier::{DecidedPairs, Node, Propagated, WorkPool};
use super::incumbent::SharedIncumbent;
use super::{
    RootArtifacts, SearchOrder, Solution, SolveStatus, SolverConfig, SolverError, SolverStats,
};
use crate::formulation::{self, ReducedSystem};
use crate::OptProblem;
use rankhow_lp::{BasisSnapshot, Status};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// What one [`SolveJob::step`] slice observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// Nodes were processed and the frontier may hold more work.
    Progress,
    /// Nothing poppable right now — another worker holds the job's
    /// remaining in-flight nodes (or is initializing the root). Retry
    /// shortly; the job is not finished.
    Starved,
    /// The job is finished: proved, limit-stopped, cancelled, or
    /// failed. [`SolveJob::result`] is now available.
    Done,
}

/// Root-derived immutable search state, built lazily by whichever
/// worker steps the job first (so `spawn` never blocks on the
/// `O(k·n)` reduction or the root heuristics).
struct RootState {
    sys: ReducedSystem,
    slot_bounds: Vec<Option<(u32, u32)>>,
    has_position_constraints: bool,
}

/// What the root expansion produced for the root node's children — the
/// payload a cross-query cache stores so a later near-identical solve
/// can start from it ([`RootArtifacts`]).
struct RootCapture {
    basis: Option<Arc<BasisSnapshot>>,
    prop: Option<Arc<Propagated>>,
}

/// One in-flight OPT solve, safe to step from many workers at once.
///
/// Generic over how the problem is held: the blocking solver borrows
/// (`P = &OptProblem`), the scheduler shares (`P = Arc<OptProblem>`).
pub struct SolveJob<P: Borrow<OptProblem>> {
    problem: P,
    config: SolverConfig,
    /// When the job was created (spawn time): the base of deadlines and
    /// of `stats.elapsed`.
    start: Instant,
    /// When the first worker started stepping the job. `time_limit` is
    /// charged against this, not `start`, so a scheduler job's queue
    /// wait does not eat its solve budget (`--budget` means the same
    /// thing in batch mode as in the blocking path).
    solve_started: OnceLock<Instant>,
    box_lo: Vec<f64>,
    box_hi: Vec<f64>,
    lanes: usize,
    pool: WorkPool,
    incumbent: SharedIncumbent,
    /// Best incumbent whose weights avoid the (ε2, ε1) gap band — the
    /// part of the sampled space the optimality proof actually covers.
    /// Tracked separately because band incumbents are
    /// interleaving-dependent while certified ones cross-validate any
    /// exhaustive search of the instance (see
    /// [`Solution::certified_error`]).
    certified: SharedIncumbent,
    root: OnceLock<RootState>,
    /// Facts the root expansion handed its children, kept for
    /// [`SolveJob::root_artifacts`]. Set by whichever worker expands the
    /// root node; stays empty when the root is pruned before expanding.
    root_capture: OnceLock<RootCapture>,
    /// Taken (CAS) by the worker that runs root initialization.
    root_claim: AtomicBool,
    /// Set once the root node is pushed (or the root already proves the
    /// job); exhaustion may only be concluded after this.
    root_done: AtomicBool,
    /// Nodes charged against `config.node_limit` (expanded nodes only).
    nodes: AtomicUsize,
    /// Deadline in nanoseconds since `start` (0 = none).
    deadline_nanos: AtomicU64,
    cancelled: AtomicBool,
    /// Terminal outcome; set exactly once.
    outcome: OnceLock<Result<SolveStatus, SolverError>>,
    stats: Mutex<SolverStats>,
}

impl<P: Borrow<OptProblem>> SolveJob<P> {
    /// A new job over `lanes` frontier lanes (≥ 1). Cheap: the root
    /// reduction and heuristics run inside the first [`SolveJob::step`].
    ///
    /// `config.threads` is *not* consulted here — the driver decides the
    /// parallelism by choosing `lanes` and how many workers step.
    pub fn new(problem: P, config: SolverConfig, lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let m = problem.borrow().m();
        let (box_lo, box_hi) = match &config.initial_box {
            Some((lo, hi)) => (lo.clone(), hi.clone()),
            None => (vec![0.0; m], vec![1.0; m]),
        };
        let pool = WorkPool::new(lanes, config.order);
        SolveJob {
            problem,
            config,
            start: Instant::now(),
            solve_started: OnceLock::new(),
            box_lo,
            box_hi,
            lanes,
            pool,
            incumbent: SharedIncumbent::new(Vec::new(), u64::MAX),
            certified: SharedIncumbent::new(Vec::new(), u64::MAX),
            root: OnceLock::new(),
            root_capture: OnceLock::new(),
            root_claim: AtomicBool::new(false),
            root_done: AtomicBool::new(false),
            nodes: AtomicUsize::new(0),
            deadline_nanos: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            outcome: OnceLock::new(),
            stats: Mutex::new(SolverStats {
                threads: lanes,
                ..SolverStats::default()
            }),
        }
    }

    /// Number of frontier lanes (a scheduler maps worker ids onto
    /// lanes modulo this).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Request cooperative cancellation. The job stops at the next node
    /// boundary and finishes with [`SolveStatus::Cancelled`], keeping
    /// its best-so-far incumbent. Idempotent; a no-op once finished.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Force-finish the job with [`SolveStatus::Failed`], keeping the
    /// best-so-far incumbent. The scheduler calls this after catching a
    /// panic that unwound out of [`SolveJob::step`]: the step's
    /// slice-local state died with the unwind, but the job's shared
    /// state (frontier, incumbent, counters) stays structurally valid
    /// and the first-writer-wins outcome makes joiners safe to wake.
    /// Idempotent; a no-op once finished.
    pub fn fail(&self) {
        self.finish(Ok(SolveStatus::Failed));
    }

    /// Set (or move) the job's deadline to `after` from now, checked at
    /// node granularity; an expired job finishes with
    /// [`SolveStatus::TimeLimit`] and its best-so-far incumbent.
    ///
    /// Deadlines are wall-clock — queue wait counts, as a serving
    /// latency bound should. [`SolverConfig::time_limit`] by contrast
    /// is a *solve* budget, charged only from the job's first step.
    pub fn deadline(&self, after: Duration) {
        let at = self.start.elapsed() + after;
        let nanos = u64::try_from(at.as_nanos()).unwrap_or(u64::MAX).max(1);
        self.deadline_nanos.store(nanos, Ordering::Release);
    }

    /// Whether a terminal outcome has been reached.
    pub fn is_finished(&self) -> bool {
        self.outcome.get().is_some()
    }

    /// Whether any worker has ever stepped this job. An un-started job
    /// has no root state (the reduction and root heuristics run inside
    /// the first [`SolveJob::step`]), which is what makes migrating a
    /// queued job between scheduler pools free: there is no per-pool
    /// search state to hand over.
    pub fn is_started(&self) -> bool {
        self.solve_started.get().is_some()
    }

    /// Latest anytime incumbent `(error, weights)`; `None` before the
    /// first feasible point is found. Monotone: later observations never
    /// report a larger error.
    pub fn best_so_far(&self) -> Option<(u64, Vec<f64>)> {
        let (err, w) = self.incumbent.snapshot();
        (err != u64::MAX).then_some((err, w))
    }

    /// This job's telemetry handle, if any (`None` when telemetry is
    /// runtime-disabled or compiled out). The scheduler and router
    /// record their layer's signals — queue wait, completion latency,
    /// placement events — against the same handle the engine uses.
    pub fn telemetry(&self) -> Option<&rankhow_obs::SolveTelemetry> {
        self.config.obs()
    }

    /// Advance the job by at most `node_budget` frontier pops on `lane`
    /// (the scheduler's fairness slice). Reentrant: distinct workers may
    /// step distinct lanes of the same job concurrently.
    pub fn step(
        &self,
        lane: usize,
        scratch: &mut EngineScratch,
        node_budget: usize,
    ) -> StepOutcome {
        if self.is_finished() {
            return StepOutcome::Done;
        }
        // The solve clock starts when the first worker arrives, not at
        // spawn: queued jobs keep their full time budget.
        self.solve_started.get_or_init(Instant::now);
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.config.faults {
            plan.on_step();
        }
        // A job cancelled before its root was ever built skips the
        // (possibly expensive) root setup entirely.
        if self.cancelled.load(Ordering::Acquire) && !self.root_done.load(Ordering::Acquire) {
            self.finish(Ok(SolveStatus::Cancelled));
            return StepOutcome::Done;
        }
        if !self.root_done.load(Ordering::Acquire) {
            if self
                .root_claim
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.init_root(scratch);
                self.flush(scratch);
                if self.is_finished() {
                    return StepOutcome::Done;
                }
            } else {
                // Another worker is initializing; nothing to do yet.
                return StepOutcome::Starved;
            }
        }
        let lane = lane % self.lanes;
        let view = self.view();
        scratch.prepare(view.sys);
        let budget = node_budget.max(1);
        let mut popped = 0usize;
        // Slice accounting starts at the first successful pop, so
        // starved slices leave no trace.
        let obs = self.config.obs();
        let mut slice_t0: Option<Instant> = None;
        let outcome = loop {
            if self.is_finished() {
                break StepOutcome::Done;
            }
            if popped >= budget {
                break StepOutcome::Progress;
            }
            if self.cancelled.load(Ordering::Acquire) {
                self.finish(Ok(SolveStatus::Cancelled));
                break StepOutcome::Done;
            }
            if let Some(status) = self.time_exceeded() {
                self.finish(Ok(status));
                break StepOutcome::Done;
            }
            let Some(node) = self.pool.pop(lane) else {
                if self.pool.pending() == 0 {
                    // Every node expanded or soundly pruned: proof.
                    self.finish(Ok(SolveStatus::Optimal));
                    break StepOutcome::Done;
                }
                break StepOutcome::Starved;
            };
            popped += 1;
            if let Some(tel) = obs {
                if popped == 1 {
                    slice_t0 = Some(Instant::now());
                    tel.event(rankhow_obs::Event::SliceStart { lane });
                }
            }
            if node.bound >= self.incumbent.error() {
                // Sound discard — and under best-first order everything
                // left on this lane's heap is at least as bad.
                if self.config.order == SearchOrder::BestFirst {
                    self.pool.discard_lane(lane);
                }
                self.pool.finish_node();
                continue;
            }
            let limit = self.config.node_limit;
            if limit > 0 && self.nodes.fetch_add(1, Ordering::SeqCst) >= limit {
                self.pool.finish_node();
                self.finish(Ok(SolveStatus::NodeLimit));
                break StepOutcome::Done;
            }
            scratch.stats.nodes += 1;
            match view.expand(&node, &self.incumbent, &self.certified, scratch) {
                Ok(children) => {
                    if self.incumbent.error() == 0 {
                        self.pool.finish_node();
                        self.finish(Ok(SolveStatus::Optimal));
                        break StepOutcome::Done;
                    }
                    // Root expansion: keep the facts it handed the
                    // children (both siblings share the Arcs) so the
                    // cross-query cache can re-seed a later solve.
                    if node.decisions.is_empty() {
                        if let Some(first) = children.first() {
                            let _ = self.root_capture.set(RootCapture {
                                basis: first.basis.clone(),
                                prop: first.prop.clone(),
                            });
                        }
                    }
                    for child in children {
                        self.pool.push(lane, child);
                    }
                    self.pool.finish_node();
                }
                Err(e) => {
                    self.pool.finish_node();
                    self.finish(Err(e));
                    break StepOutcome::Done;
                }
            }
        };
        if let (Some(tel), Some(t0)) = (obs, slice_t0) {
            tel.metrics.slice.record(t0.elapsed());
            tel.event(rankhow_obs::Event::SliceEnd {
                lane,
                nodes: popped as u64,
            });
        }
        self.flush(scratch);
        outcome
    }

    /// The job's solution; callable any time after [`SolveJob::step`]
    /// returned [`StepOutcome::Done`] (panics before that). A stopped
    /// job (limit / deadline / cancel) reports its best-so-far incumbent
    /// with the corresponding [`SolveStatus`]; if *no* feasible point
    /// was found before it stopped, that is reported as
    /// [`SolverError::Infeasible`], mirroring the blocking solver's
    /// behaviour on exhausted limits.
    pub fn result(&self) -> Result<Solution, SolverError> {
        let outcome = self
            .outcome
            .get()
            .expect("SolveJob::result called before the job finished")
            .clone();
        let (error, weights) = self.incumbent.snapshot();
        let (certified_error, certified_weights) = self.certified.snapshot();
        self.package(outcome?, error, weights, certified_error, certified_weights)
    }

    /// Consume the job into its solution (the blocking driver's exit —
    /// avoids cloning the incumbent weights).
    pub(super) fn into_solution(self) -> Result<Solution, SolverError> {
        let outcome = self
            .outcome
            .get()
            .expect("SolveJob::into_solution called before the job finished")
            .clone();
        let status = outcome?;
        let stats = SolverStats {
            jobs: 1,
            ..self
                .stats
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        let (error, weights) = self.incumbent.into_best();
        if error == u64::MAX {
            return Err(SolverError::Infeasible);
        }
        let (certified_error, certified_weights) = self.certified.into_best();
        let certified = !crate::verify::relies_on_gap_band(self.problem.borrow(), &weights);
        Ok(Solution {
            weights,
            error,
            optimal: status == SolveStatus::Optimal,
            status,
            certified,
            certified_error,
            certified_weights,
            stats,
        })
    }

    fn package(
        &self,
        status: SolveStatus,
        error: u64,
        weights: Vec<f64>,
        certified_error: u64,
        certified_weights: Vec<f64>,
    ) -> Result<Solution, SolverError> {
        let mut stats = rankhow_sync::lock(&self.stats).clone();
        stats.jobs = 1;
        if status == SolveStatus::Failed {
            stats.job_panics = 1;
        }
        if error == u64::MAX {
            if status == SolveStatus::Failed {
                // The step panicked before any feasible point was
                // sampled — that is a failure, not a proof of
                // infeasibility.
                let mut sol = Solution::failed();
                sol.stats = stats;
                return Ok(sol);
            }
            // No feasible point was ever sampled. With a proof this is a
            // genuine infeasibility (only possible under position
            // constraints); without one it mirrors the historical
            // limit-exhausted behaviour.
            return Err(SolverError::Infeasible);
        }
        let certified = !crate::verify::relies_on_gap_band(self.problem.borrow(), &weights);
        Ok(Solution {
            weights,
            error,
            optimal: status == SolveStatus::Optimal,
            status,
            certified,
            certified_error,
            certified_weights,
            stats,
        })
    }

    /// Root setup: reduction, slot windows, root-region feasibility,
    /// warm start, start heuristic, and the root node push. Runs once,
    /// on whichever worker wins the claim.
    fn init_root(&self, scratch: &mut EngineScratch) {
        // Forced root-LP verdict (fault injection): report the verdict
        // without building any root state. `root_done` stays false; the
        // finished-job check at the top of `step` covers every other
        // worker.
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.config.faults {
            if let Some(fault) = plan.take_root_lp() {
                self.finish(Err(match fault {
                    crate::fault::LpFault::Infeasible => SolverError::Infeasible,
                    crate::fault::LpFault::IterationLimit => {
                        SolverError::Lp(rankhow_lp::SolveError::IterationLimit)
                    }
                }));
                return;
            }
        }
        let problem = self.problem.borrow();
        let sys = formulation::reduce_against_box(problem, &self.box_lo, &self.box_hi);
        let slot_bounds: Vec<Option<(u32, u32)>> = sys
            .top
            .iter()
            .map(|&t| problem.positions.interval(t))
            .collect();
        scratch.stats.live_pairs = sys.pairs.len();
        let root = RootState {
            has_position_constraints: slot_bounds.iter().any(|b| b.is_some()),
            slot_bounds,
            sys,
        };
        self.root.set(root).unwrap_or_else(|_| {
            unreachable!("root initialization is claimed by exactly one worker")
        });
        let view = self.view();
        scratch.prepare(view.sys);

        // Root region feasibility + first incumbent. A numerically
        // stuck Chebyshev LP falls back to a plain feasibility solve.
        let root_region = view.region(&[]);
        let obs = self.config.obs();
        scratch.stats.lp_solves += 1;
        let t0 = obs.map(|_| Instant::now());
        let centered = rankhow_lp::chebyshev_center_with(&root_region, &mut scratch.lp);
        if let (Some(tel), Some(t0)) = (obs, t0) {
            tel.metrics.lp_solve.record(t0.elapsed());
        }
        let center = match centered {
            Ok(Some(c)) => c,
            Ok(None) => {
                self.finish(Err(SolverError::Infeasible));
                return;
            }
            Err(_) => {
                scratch.stats.lp_solves += 1;
                let t0 = obs.map(|_| Instant::now());
                let feas = root_region.solve_feasibility_with(&mut scratch.lp);
                if let (Some(tel), Some(t0)) = (obs, t0) {
                    tel.metrics.lp_solve.record(t0.elapsed());
                }
                match feas {
                    Ok(sol) if sol.status == Status::Optimal => sol.x,
                    Ok(_) => {
                        self.finish(Err(SolverError::Infeasible));
                        return;
                    }
                    Err(e) => {
                        self.finish(Err(SolverError::Lp(e)));
                        return;
                    }
                }
            }
        };
        view.try_incumbent(
            &center,
            &self.incumbent,
            &self.certified,
            &mut scratch.stats,
        );

        if let Some(warm) = &self.config.warm_start {
            if warm.len() == problem.m()
                && problem.constraints.satisfied_by(warm)
                && in_box(warm, &self.box_lo, &self.box_hi)
            {
                view.try_incumbent(warm, &self.incumbent, &self.certified, &mut scratch.stats);
            }
        }

        // Cross-query root seed ([`SolverConfig::root_seed`], a cache
        // near hit). Cached incumbents pass the exact warm-start gate
        // above; cached artifacts are installed only after re-proving
        // the containment they require — a failed proof silently
        // degrades to a cold root, never to an unsound one.
        let mut seeded_basis: Option<Arc<BasisSnapshot>> = None;
        let mut seeded_prop: Option<Arc<Propagated>> = None;
        if let Some(seed) = &self.config.root_seed {
            scratch.stats.cache_near_hits += 1;
            if let Some(tel) = obs {
                tel.event(rankhow_obs::Event::CacheNearHit);
            }
            for w in &seed.incumbents {
                if w.len() == problem.m()
                    && problem.constraints.satisfied_by(w)
                    && in_box(w, &self.box_lo, &self.box_hi)
                {
                    view.try_incumbent(w, &self.incumbent, &self.certified, &mut scratch.stats);
                }
            }
            // Injected cache-artifact rejection: pretend the containment
            // re-proof failed, exercising the cold-root degradation.
            #[cfg(feature = "fault-inject")]
            let artifacts = (!self
                .config
                .faults
                .as_ref()
                .is_some_and(|p| p.take_reject_seed()))
            .then_some(&seed.artifacts)
            .and_then(|a| a.as_ref());
            #[cfg(not(feature = "fault-inject"))]
            let artifacts = seed.artifacts.as_ref();
            if let Some(art) = artifacts {
                if self.config.warm_lp {
                    // A basis snapshot is always safe to offer: the load
                    // installs it onto the *new* region's tableau and
                    // dual-restores (or falls back cold on mismatch).
                    seeded_basis = art.basis.clone();
                }
                if self.config.propagate && self.region_within_cached(art) {
                    seeded_prop = Some(Arc::new(self.translate_artifacts(art)));
                }
            }
        }

        // Start heuristic: deterministic random simplex points inside
        // the box; good incumbents found here prune the tree everywhere.
        if self.config.root_samples > 0 && self.incumbent.error() > 0 {
            let m = problem.m();
            let mut state = 0x853c49e6748fea9bu64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..self.config.root_samples {
                // Dirichlet(1,…,1) point, projected into the box.
                let mut w: Vec<f64> = (0..m).map(|_| -(next().max(1e-12)).ln()).collect();
                let total: f64 = w.iter().sum();
                for (j, x) in w.iter_mut().enumerate() {
                    *x = (*x / total).clamp(self.box_lo[j], self.box_hi[j]);
                }
                let resum: f64 = w.iter().sum();
                if resum <= 0.0 {
                    continue;
                }
                // Re-normalize; box clipping can push the sum off 1.
                let ok_after: bool = {
                    w.iter_mut().for_each(|x| *x /= resum);
                    in_box(&w, &self.box_lo, &self.box_hi)
                };
                if ok_after && problem.constraints.satisfied_by(&w) {
                    view.try_incumbent(&w, &self.incumbent, &self.certified, &mut scratch.stats);
                    if self.incumbent.error() == 0 {
                        break;
                    }
                }
            }
        }

        // Root node — unless the root bound already closes the search.
        let root_bound = interval_bound(
            view.sys,
            &view.sys.fixed_beats,
            &view.sys.undecided,
            problem.objective,
        );
        if self.incumbent.error() == 0 || root_bound >= self.incumbent.error() {
            self.finish(Ok(SolveStatus::Optimal));
        } else {
            self.pool.push(
                0,
                Node {
                    decisions: Vec::new(),
                    bound: root_bound,
                    basis: seeded_basis,
                    prop: seeded_prop,
                },
            );
        }
        if let Some(tel) = obs {
            tel.event(rankhow_obs::Event::RootInit);
        }
        self.root_done.store(true, Ordering::Release);
    }

    /// Containment proof for cross-query artifacts: is this job's root
    /// region provably a subset of the cached region
    /// `simplex ∩ [region_lo, region_hi] ∩ constraints` the artifacts
    /// were derived over? Checks (1) per-coordinate containment of the
    /// initial boxes and (2) that every cached constraint row is
    /// dominated over an over-approximation of the new region — the new
    /// box tightened by the single-variable rows of the *new*
    /// constraints, maximized by [`formulation::box_simplex_max`]. Any
    /// failure rejects all facts; only `false` negatives are possible.
    fn region_within_cached(&self, art: &RootArtifacts) -> bool {
        let problem = self.problem.borrow();
        let m = problem.m();
        if art.m != m
            || art.region_lo.len() != m
            || art.region_hi.len() != m
            || art.lo.len() != m
            || art.hi.len() != m
            || art.wit_ok.len() != 2 * m
            || art.wit.len() != 2 * m * m
        {
            return false;
        }
        const TOL: f64 = 1e-12;
        let boxed = self
            .box_lo
            .iter()
            .zip(&art.region_lo)
            .all(|(new, cached)| *new >= *cached - TOL)
            && self
                .box_hi
                .iter()
                .zip(&art.region_hi)
                .all(|(new, cached)| *new <= *cached + TOL);
        if !boxed {
            return false;
        }
        // Implied per-coordinate bounds of the new region: the initial
        // box tightened by the new single-variable constraint rows
        // (c·w_j ≤ rhs). Multi-variable rows are ignored — that only
        // *loosens* the over-approximation, keeping the check sound.
        let mut lo = self.box_lo.clone();
        let mut hi = self.box_hi.clone();
        for (coefs, rhs) in problem.constraints.rows() {
            if let [(j, c)] = coefs {
                if *c > 0.0 {
                    hi[*j] = hi[*j].min(rhs / c);
                } else if *c < 0.0 {
                    lo[*j] = lo[*j].max(rhs / c);
                }
            }
        }
        if lo.iter().zip(&hi).any(|(l, h)| l > h) {
            // Empty implied box: the root feasibility LP will reject the
            // job anyway; claim nothing.
            return false;
        }
        let mut dense = vec![0.0; m];
        for (coefs, rhs) in art.constraints.rows() {
            dense.iter_mut().for_each(|d| *d = 0.0);
            if coefs.iter().any(|&(j, _)| j >= m) {
                return false;
            }
            for &(j, c) in coefs {
                dense[j] = c;
            }
            match formulation::box_simplex_max(&dense, &lo, &hi) {
                Some(v) if v <= rhs + 1e-9 => {}
                _ => return false,
            }
        }
        true
    }

    /// Turn proven-sound cached artifacts into this job's root
    /// [`Propagated`] payload: bounds and witnesses carry over verbatim
    /// (the expansion re-gates each witness against the new region —
    /// [`InheritGate::Root`](super::engine)), identity-keyed decided
    /// pairs are translated into this reduction's pair indices (pairs
    /// this reduction folded away are simply dropped), and the
    /// changed-coordinates mask is saturated — many rows may differ
    /// between the regions, so the untouched shortcut must not fire.
    fn translate_artifacts(&self, art: &RootArtifacts) -> Propagated {
        let root = self.root.get().expect("root state initialized");
        let mut decided = DecidedPairs::new(root.sys.pairs.len());
        if !art.decided.is_empty() {
            let index: HashMap<(usize, usize), usize> = root
                .sys
                .pairs
                .iter()
                .enumerate()
                .map(|(idx, p)| ((p.s, p.slot), idx))
                .collect();
            for &(s, slot, side) in &art.decided {
                if let Some(&idx) = index.get(&(s, slot)) {
                    decided.set(idx, side);
                }
            }
        }
        Propagated {
            lo: art.lo.clone(),
            hi: art.hi.clone(),
            wit: art.wit.clone(),
            wit_ok: art.wit_ok.clone(),
            decided,
            changed: u64::MAX,
        }
    }

    /// The root facts this job can hand a cross-query cache: what its
    /// root expansion gave the root's children, re-keyed by pair
    /// identity. `None` until the root node has been expanded (and
    /// forever for jobs pruned or cancelled before that).
    pub fn root_artifacts(&self) -> Option<RootArtifacts> {
        let capture = self.root_capture.get()?;
        let root = self.root.get()?;
        let problem = self.problem.borrow();
        let m = problem.m();
        let (lo, hi, wit, wit_ok, decided) = match capture.prop.as_deref() {
            Some(p) => (
                p.lo.clone(),
                p.hi.clone(),
                p.wit.clone(),
                p.wit_ok.clone(),
                root.sys
                    .pairs
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, pair)| {
                        p.decided.get(idx).map(|side| (pair.s, pair.slot, side))
                    })
                    .collect(),
            ),
            // Propagation off: still worth caching the basis; the box
            // "facts" are just the initial box with no witnesses.
            None => (
                self.box_lo.clone(),
                self.box_hi.clone(),
                vec![0.0; 2 * m * m],
                vec![false; 2 * m],
                Vec::new(),
            ),
        };
        Some(RootArtifacts {
            m,
            constraints: problem.constraints.clone(),
            region_lo: self.box_lo.clone(),
            region_hi: self.box_hi.clone(),
            lo,
            hi,
            wit,
            wit_ok,
            decided,
            basis: capture.basis.clone(),
        })
    }

    pub(super) fn view(&self) -> SearchView<'_> {
        let root = self.root.get().expect("root state initialized");
        SearchView {
            problem: self.problem.borrow(),
            config: &self.config,
            sys: &root.sys,
            slot_bounds: &root.slot_bounds,
            has_position_constraints: root.has_position_constraints,
            box_lo: &self.box_lo,
            box_hi: &self.box_hi,
        }
    }

    fn time_exceeded(&self) -> Option<SolveStatus> {
        if let (Some(limit), Some(solve_start)) = (self.config.time_limit, self.solve_started.get())
        {
            if solve_start.elapsed() >= limit {
                return Some(SolveStatus::TimeLimit);
            }
        }
        let deadline = self.deadline_nanos.load(Ordering::Acquire);
        if deadline != 0
            && u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX) >= deadline
        {
            return Some(SolveStatus::TimeLimit);
        }
        None
    }

    /// Record the terminal outcome (first writer wins) and freeze the
    /// job's elapsed time.
    fn finish(&self, outcome: Result<SolveStatus, SolverError>) {
        if self.outcome.set(outcome).is_ok() {
            rankhow_sync::lock(&self.stats).elapsed = self.start.elapsed();
        }
    }

    /// Merge the worker's slice-local counters into the job totals.
    fn flush(&self, scratch: &mut EngineScratch) {
        let delta = scratch.take_stats();
        rankhow_sync::lock(&self.stats).merge(&delta);
    }
}
