//! The shared incumbent: best feasible solution found so far, readable
//! lock-free from every worker's pruning test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Best `(error, weights)` pair across all workers. The error is
/// mirrored in an atomic so the hot pruning path (`bound ≥ best`) never
/// takes the lock; the mutex-guarded pair stays authoritative so a slow
/// writer can never publish weights for a stale error.
pub(super) struct SharedIncumbent {
    best: Mutex<(u64, Vec<f64>)>,
    err_cache: AtomicU64,
}

impl SharedIncumbent {
    pub fn new(weights: Vec<f64>, error: u64) -> Self {
        SharedIncumbent {
            err_cache: AtomicU64::new(error),
            best: Mutex::new((error, weights)),
        }
    }

    /// Current best error (monotone non-increasing; may be one update
    /// stale, which only ever makes pruning more conservative).
    #[inline]
    pub fn error(&self) -> u64 {
        self.err_cache.load(Ordering::Acquire)
    }

    /// Offer a candidate; returns whether it became the new incumbent.
    pub fn offer(&self, error: u64, weights: &[f64]) -> bool {
        if error >= self.error() {
            return false;
        }
        let mut best = rankhow_sync::lock(&self.best);
        if error < best.0 {
            best.0 = error;
            best.1.clear();
            best.1.extend_from_slice(weights);
            self.err_cache.store(error, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Final `(error, weights)`.
    pub fn into_best(self) -> (u64, Vec<f64>) {
        self.best.into_inner().unwrap()
    }

    /// Consistent `(error, weights)` snapshot — the anytime-incumbent
    /// read used by `best_so_far` streaming. Taken under the lock, so
    /// the weights always realize the returned error.
    pub fn snapshot(&self) -> (u64, Vec<f64>) {
        let best = rankhow_sync::lock(&self.best);
        (best.0, best.1.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_only_improve() {
        let inc = SharedIncumbent::new(vec![0.5, 0.5], 10);
        assert!(!inc.offer(10, &[0.0, 1.0]), "equal error rejected");
        assert!(inc.offer(3, &[0.2, 0.8]));
        assert_eq!(inc.error(), 3);
        assert!(!inc.offer(5, &[0.9, 0.1]), "worse error rejected");
        let (err, w) = inc.into_best();
        assert_eq!(err, 3);
        assert_eq!(w, vec![0.2, 0.8]);
    }

    #[test]
    fn concurrent_offers_keep_the_minimum() {
        let inc = std::sync::Arc::new(SharedIncumbent::new(vec![1.0], u64::MAX));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let inc = inc.clone();
                scope.spawn(move || {
                    for e in (t..200).step_by(8) {
                        inc.offer(e, &[e as f64]);
                    }
                });
            }
        });
        let inc = std::sync::Arc::into_inner(inc).unwrap();
        let (err, w) = inc.into_best();
        assert_eq!(err, 0);
        assert_eq!(w, vec![0.0], "weights match the winning error");
    }
}
