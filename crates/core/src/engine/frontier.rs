//! Search frontiers: node ordering, per-worker queues, and the
//! work-stealing pool the parallel engine runs on.

use super::SearchOrder;
use rankhow_lp::BasisSnapshot;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrder};
use std::sync::{Arc, Mutex};

/// Pairs permanently decided by ancestor *classifications* (box
/// interval arguments), as a packed bitset: one `decided` bit and one
/// `side` bit per live pair. Decisions are monotone down the tree —
/// a child region is a subset of its parent's, so a pair whose score
/// difference cleared ε over an ancestor box can never re-enter
/// `undecided` in any descendant. The set-only API makes that invariant
/// structural: bits are only ever added, never cleared.
///
/// Branch decisions (the path in `Node::decisions`) are *not* recorded
/// here — the bitset is shared by both children of one expansion, and
/// the branch side is exactly what differs between them.
#[derive(Clone)]
pub(super) struct DecidedPairs {
    decided: Vec<u64>,
    side: Vec<u64>,
}

impl DecidedPairs {
    pub fn new(pairs: usize) -> Self {
        let words = pairs.div_ceil(64);
        DecidedPairs {
            decided: vec![0; words],
            side: vec![0; words],
        }
    }

    /// Record a pair as permanently decided. A pair may be re-set only
    /// with the same side (decisions are monotone).
    pub fn set(&mut self, idx: usize, side: bool) {
        debug_assert!(
            self.get(idx).map_or(true, |s| s == side),
            "decided pair flipped side"
        );
        self.decided[idx / 64] |= 1 << (idx % 64);
        if side {
            self.side[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// `Some(side)` when the pair is decided, `None` otherwise.
    pub fn get(&self, idx: usize) -> Option<bool> {
        let (w, b) = (idx / 64, 1u64 << (idx % 64));
        (self.decided[w] & b != 0).then(|| self.side[w] & b != 0)
    }

    /// Number of decided pairs.
    #[cfg(test)]
    pub fn count(&self) -> usize {
        self.decided.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every decision in `other` is present here with the same
    /// side (the monotonicity the engine tests pin).
    #[cfg(test)]
    pub fn contains_all(&self, other: &DecidedPairs) -> bool {
        self.decided
            .iter()
            .zip(&self.side)
            .zip(other.decided.iter().zip(&other.side))
            .all(|((d, s), (od, os))| od & !d == 0 && (s ^ os) & od == 0)
    }
}

/// Facts one expansion proved that every descendant may reuse — the
/// bound-propagation payload. Like the basis snapshot it rides the
/// [`Node`] behind an `Arc` shared by both children, so the facts
/// survive work-stealing and scheduler time-slicing: whichever worker
/// expands the child (on whatever thread's scratch) reads them from the
/// node itself, not from any per-worker cache.
pub(super) struct Propagated {
    /// The expansion's tightened box — a superset of every descendant's
    /// region, which is what makes the decided bitset permanently sound.
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
    /// Per-coordinate probe optimizers, flat `2·m·m`: row `j` of the
    /// first block is the argmin point of the min-`w_j` probe, row `j`
    /// of the second block the argmax of the max probe. A child whose
    /// one new branch constraint is still satisfied by the witness can
    /// reuse the parent's bound exactly — the probe LP is skipped.
    pub wit: Vec<f64>,
    /// Validity flags for the `2m` witnesses (false after a skipped or
    /// numerically stuck probe whose optimizer is unknown).
    pub wit_ok: Vec<bool>,
    /// Pairs classification decided at this expansion or inherited.
    pub decided: DecidedPairs,
    /// Changed-coordinates mask of the branch constraint both children
    /// add: bit `j` set ⇔ the branch pair's score difference touches
    /// coordinate `j`. A clear bit lets the child skip coordinate `j`'s
    /// re-tightening outright (the new row cannot bind on it any harder
    /// than the parent's probes already did, and the parent bound stays
    /// a sound relaxation). All-ones when `m > 64`.
    pub changed: u64,
}

/// One open subproblem: the indicator sides decided so far and the error
/// lower bound inherited from its parent's classification.
pub(super) struct Node {
    /// `(pair index, side)` decisions along the path from the root.
    pub decisions: Vec<(u32, bool)>,
    /// Sound lower bound on any error attainable under these decisions.
    pub bound: u64,
    /// The parent region's optimal LP basis, in layout-independent
    /// terms — a *handle*, not a tableau: whichever worker expands this
    /// node (after work-stealing or scheduler time-slicing, possibly on
    /// another thread's scratch) rebuilds the cheap raw tableau locally
    /// and re-installs these basis columns, skipping LP phase 1. `None`
    /// at the root and when warm-starting is disabled; both children of
    /// one expansion share the snapshot (hence the `Arc`).
    pub basis: Option<Arc<BasisSnapshot>>,
    /// Bound-propagation facts from the parent expansion (box,
    /// witnesses, decided-pair bitset, changed-coordinates mask).
    /// `None` at the root and when `SolverConfig::propagate` is off;
    /// shared by both siblings like the basis snapshot.
    pub prop: Option<Arc<Propagated>>,
}

pub(super) struct HeapNode(pub Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.decisions.len() == other.0.decisions.len()
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound; deeper nodes first among equals (plunge).
        other
            .0
            .bound
            .cmp(&self.0.bound)
            .then_with(|| self.0.decisions.len().cmp(&other.0.decisions.len()))
    }
}

/// A single worker's frontier: best-first (binary heap) or depth-first
/// (stack), matching [`SearchOrder`].
pub(super) enum LocalQueue {
    Heap(BinaryHeap<HeapNode>),
    Stack(Vec<Node>),
}

impl LocalQueue {
    pub fn new(order: SearchOrder) -> Self {
        match order {
            SearchOrder::BestFirst => LocalQueue::Heap(BinaryHeap::new()),
            SearchOrder::DepthFirst => LocalQueue::Stack(Vec::new()),
        }
    }

    pub fn push(&mut self, node: Node) {
        match self {
            LocalQueue::Heap(h) => h.push(HeapNode(node)),
            LocalQueue::Stack(s) => s.push(node),
        }
    }

    pub fn pop(&mut self) -> Option<Node> {
        match self {
            LocalQueue::Heap(h) => h.pop().map(|HeapNode(n)| n),
            LocalQueue::Stack(s) => s.pop(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            LocalQueue::Heap(h) => h.len(),
            LocalQueue::Stack(s) => s.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            LocalQueue::Heap(h) => h.clear(),
            LocalQueue::Stack(s) => s.clear(),
        }
    }

    /// Remove roughly half the queue (the half a thief takes). For the
    /// heap this pops from the top, so the thief receives the *best*
    /// bounds — handoff, not leftovers; the stack donates its oldest
    /// (shallowest) nodes, the classic steal-from-the-bottom rule.
    fn split_half(&mut self, out: &mut Vec<Node>) {
        let take = self.len().div_ceil(2);
        match self {
            LocalQueue::Heap(h) => {
                for _ in 0..take {
                    if let Some(HeapNode(n)) = h.pop() {
                        out.push(n);
                    }
                }
            }
            LocalQueue::Stack(s) => {
                // Oldest nodes sit at the bottom of the stack.
                out.extend(s.drain(..take));
            }
        }
    }
}

/// Shared frontier pool: one mutex-guarded [`LocalQueue`] per worker and
/// a global count of live nodes (queued + in flight) for termination
/// detection.
pub(super) struct WorkPool {
    queues: Vec<Mutex<LocalQueue>>,
    /// Nodes pushed but not yet fully processed. Zero ⇒ the search space
    /// is exhausted and every worker may exit.
    pending: AtomicUsize,
}

impl WorkPool {
    pub fn new(workers: usize, order: SearchOrder) -> Self {
        WorkPool {
            queues: (0..workers)
                .map(|_| Mutex::new(LocalQueue::new(order)))
                .collect(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Enqueue a node on `worker`'s own frontier.
    pub fn push(&self, worker: usize, node: Node) {
        self.pending.fetch_add(1, AtomicOrder::SeqCst);
        rankhow_sync::lock(&self.queues[worker]).push(node);
    }

    /// Dequeue for `worker`: own frontier first, then steal half of the
    /// first non-empty victim's queue (handoff lands on the worker's own
    /// frontier; one node is returned immediately).
    pub fn pop(&self, worker: usize) -> Option<Node> {
        if let Some(n) = rankhow_sync::lock(&self.queues[worker]).pop() {
            return Some(n);
        }
        let workers = self.queues.len();
        let mut stolen: Vec<Node> = Vec::new();
        for off in 1..workers {
            let victim = (worker + off) % workers;
            rankhow_sync::lock(&self.queues[victim]).split_half(&mut stolen);
            if !stolen.is_empty() {
                break;
            }
        }
        if stolen.is_empty() {
            return None;
        }
        // Route the loot through the worker's own queue so the returned
        // node respects the search order (best bound first on a heap).
        let mut own = rankhow_sync::lock(&self.queues[worker]);
        for n in stolen {
            own.push(n);
        }
        own.pop()
    }

    /// Mark one dequeued node as fully processed (its children, if any,
    /// were already pushed).
    pub fn finish_node(&self) {
        self.pending.fetch_sub(1, AtomicOrder::SeqCst);
    }

    /// Discard every node queued on `lane`, decrementing the pending
    /// count accordingly. Sound only when the caller knows none of the
    /// lane's nodes can beat the incumbent — e.g. a best-first heap
    /// right after popping a node whose bound already failed the prune
    /// test (every remaining node's bound is at least as large).
    pub fn discard_lane(&self, lane: usize) {
        let mut queue = rankhow_sync::lock(&self.queues[lane]);
        let dropped = queue.len();
        if dropped > 0 {
            queue.clear();
            self.pending.fetch_sub(dropped, AtomicOrder::SeqCst);
        }
    }

    /// Live node count (queued + in flight).
    pub fn pending(&self) -> usize {
        self.pending.load(AtomicOrder::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(bound: u64, depth: usize) -> Node {
        Node {
            decisions: vec![(0, true); depth],
            bound,
            basis: None,
            prop: None,
        }
    }

    #[test]
    fn decided_pairs_bitset_is_monotone_and_word_spanning() {
        let mut a = DecidedPairs::new(130);
        a.set(0, true);
        a.set(63, false);
        a.set(64, true);
        a.set(129, false);
        assert_eq!(a.get(0), Some(true));
        assert_eq!(a.get(63), Some(false));
        assert_eq!(a.get(64), Some(true));
        assert_eq!(a.get(129), Some(false));
        assert_eq!(a.get(1), None);
        assert_eq!(a.count(), 4);
        // Re-setting with the same side is idempotent.
        a.set(64, true);
        assert_eq!(a.count(), 4);
        // A child set grown from `a` contains all of `a`.
        let mut b = a.clone();
        b.set(100, true);
        assert!(b.contains_all(&a));
        assert!(!a.contains_all(&b));
        // A disjoint set with a flipped side is not contained.
        let mut c = DecidedPairs::new(130);
        c.set(63, true);
        assert!(!b.contains_all(&c));
    }

    #[test]
    fn heap_order_is_min_bound_then_depth() {
        let mut q = LocalQueue::new(SearchOrder::BestFirst);
        q.push(node(5, 0));
        q.push(node(1, 0));
        q.push(node(1, 3));
        q.push(node(2, 1));
        assert_eq!(q.pop().map(|n| (n.bound, n.decisions.len())), Some((1, 3)));
        assert_eq!(q.pop().map(|n| (n.bound, n.decisions.len())), Some((1, 0)));
        assert_eq!(q.pop().map(|n| n.bound), Some(2));
        assert_eq!(q.pop().map(|n| n.bound), Some(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stack_order_is_lifo() {
        let mut q = LocalQueue::new(SearchOrder::DepthFirst);
        q.push(node(5, 0));
        q.push(node(1, 1));
        assert_eq!(q.pop().map(|n| n.bound), Some(1));
        assert_eq!(q.pop().map(|n| n.bound), Some(5));
    }

    #[test]
    fn stealing_hands_off_best_bounds() {
        let pool = WorkPool::new(2, SearchOrder::BestFirst);
        for b in [9u64, 3, 7, 1] {
            pool.push(0, node(b, 0));
        }
        assert_eq!(pool.pending(), 4);
        // Worker 1 owns nothing: it must steal — and receive the best
        // bound from worker 0's heap.
        let got = pool.pop(1).expect("steal succeeds");
        assert_eq!(got.bound, 1);
        // The other stolen node landed on worker 1's own queue.
        let next = pool.pop(1).expect("handoff retained locally");
        assert_eq!(next.bound, 3);
        pool.finish_node();
        pool.finish_node();
        assert_eq!(pool.pending(), 2);
    }

    #[test]
    fn discard_lane_drops_queued_nodes_from_pending() {
        let pool = WorkPool::new(2, SearchOrder::BestFirst);
        for b in [9u64, 3, 7] {
            pool.push(0, node(b, 0));
        }
        pool.push(1, node(1, 0));
        let popped = pool.pop(0).expect("own queue non-empty");
        assert_eq!(popped.bound, 3);
        // Pretend the pop failed the prune test: the rest of lane 0's
        // heap is at least as bad and can be dropped wholesale.
        pool.discard_lane(0);
        pool.finish_node();
        assert_eq!(pool.pending(), 1, "lane 1 untouched");
        assert_eq!(pool.pop(1).map(|n| n.bound), Some(1));
    }

    #[test]
    fn pending_reaches_zero_on_exhaustion() {
        let pool = WorkPool::new(3, SearchOrder::DepthFirst);
        pool.push(1, node(0, 0));
        let n = pool.pop(2).expect("steal across ring");
        assert_eq!(n.bound, 0);
        pool.finish_node();
        assert_eq!(pool.pending(), 0);
        assert!(pool.pop(0).is_none());
    }
}
