//! The search drivers: node expansion shared by the sequential and the
//! parallel (work-stealing) engines.

use super::bounds::interval_bound;
use super::frontier::{LocalQueue, Node, WorkPool};
use super::incumbent::SharedIncumbent;
use super::{SearchOrder, Solution, SolverConfig, SolverError, SolverStats};
use crate::formulation::{self, ReducedSystem};
use crate::OptProblem;
use rankhow_lp::{
    chebyshev_center_with, Op, Problem as Lp, Sense, SimplexWorkspace, Status, VarId,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker mutable state: reusable LP scratch (tableaus stop
/// reallocating per node) plus classification buffers and local stats.
struct WorkerScratch {
    lp: SimplexWorkspace,
    decided: Vec<Option<bool>>,
    open: Vec<u32>,
    beats: Vec<u32>,
    stats: SolverStats,
}

impl WorkerScratch {
    fn new(ctx: &SearchContext<'_>) -> Self {
        WorkerScratch {
            lp: SimplexWorkspace::new(),
            decided: vec![None; ctx.sys.pairs.len()],
            open: vec![0; ctx.sys.top.len()],
            beats: vec![0; ctx.sys.top.len()],
            stats: SolverStats::default(),
        }
    }
}

/// Immutable search state shared by every worker.
struct SearchContext<'a> {
    problem: &'a OptProblem,
    config: &'a SolverConfig,
    sys: ReducedSystem,
    slot_bounds: Vec<Option<(u32, u32)>>,
    has_position_constraints: bool,
    box_lo: Vec<f64>,
    box_hi: Vec<f64>,
    start: Instant,
}

impl SearchContext<'_> {
    /// A candidate becomes the incumbent only if it satisfies the
    /// position windows; returns whether it improved the shared best.
    ///
    /// Evaluation goes through [`OptProblem::evaluate_constrained`] — the
    /// same batched-score arithmetic as the public evaluator — so the
    /// reported `Solution::error` is realized by `Solution::weights`
    /// bit-for-bit. (A pairwise-difference evaluation over the reduced
    /// system rounds differently at tie boundaries and can disagree with
    /// `evaluate` by a rank on ε = 0 ties.)
    fn try_incumbent(
        &self,
        w: &[f64],
        incumbent: &SharedIncumbent,
        stats: &mut SolverStats,
    ) -> bool {
        let Some(err) = self.problem.evaluate_constrained(w) else {
            return false;
        };
        if incumbent.offer(err, w) {
            stats.incumbents += 1;
            true
        } else {
            false
        }
    }

    /// Build the node's weight-space LP region.
    fn region(&self, decisions: &[(u32, bool)]) -> Lp {
        let m = self.problem.m();
        let mut lp = Lp::new(Sense::Minimize);
        let w: Vec<VarId> = (0..m)
            .map(|j| lp.add_var(&format!("w{j}"), self.box_lo[j], self.box_hi[j], 0.0))
            .collect();
        let simplex: Vec<(VarId, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&simplex, Op::Eq, 1.0);
        self.problem.constraints.apply_to(&mut lp, &w);
        for &(idx, side) in decisions {
            let diff = self.sys.diff(idx as usize);
            let terms: Vec<(VarId, f64)> = (0..m).map(|j| (w[j], diff[j])).collect();
            if side {
                lp.add_constraint(&terms, Op::Ge, self.problem.tol.eps1);
            } else {
                lp.add_constraint(&terms, Op::Le, self.problem.tol.eps2);
            }
        }
        lp
    }

    /// Per-coordinate min/max over the region (2m small LPs, all on the
    /// worker's reusable workspace and one shared probe clone). Returns
    /// `None` when the region is empty.
    fn tighten_box(
        &self,
        region: &Lp,
        scratch: &mut WorkerScratch,
    ) -> Result<Option<(Vec<f64>, Vec<f64>)>, SolverError> {
        // Safety margin so LP round-off cannot make the box *tighter*
        // than the true region (classification soundness depends on
        // box ⊇ region).
        const MARGIN: f64 = 1e-8;
        let m = self.problem.m();
        let mut lo = vec![0.0; m];
        let mut hi = vec![1.0; m];
        // Region variables carry zero objectives, so one clone serves
        // all 2m probes by toggling a single coefficient.
        let mut probe = region.clone();
        for j in 0..m {
            let (static_lo, static_hi) = region.bounds(j);
            probe.set_objective(j, 1.0);
            probe.set_sense(Sense::Minimize);
            scratch.stats.lp_solves += 1;
            lo[j] = match probe.solve_with(&mut scratch.lp) {
                Ok(s) if s.status == Status::Optimal => (s.objective - MARGIN).max(static_lo),
                Ok(s) if s.status == Status::Infeasible => return Ok(None),
                // Unbounded impossible (w ∈ [0,1]); LP failure → fallback.
                _ => static_lo,
            };
            probe.set_sense(Sense::Maximize);
            scratch.stats.lp_solves += 1;
            hi[j] = match probe.solve_with(&mut scratch.lp) {
                Ok(s) if s.status == Status::Optimal => (s.objective + MARGIN).min(static_hi),
                Ok(s) if s.status == Status::Infeasible => return Ok(None),
                _ => static_hi,
            };
            probe.set_objective(j, 0.0);
            // Numerical guard.
            if lo[j] > hi[j] {
                let mid = 0.5 * (lo[j] + hi[j]);
                lo[j] = mid;
                hi[j] = mid;
            }
        }
        Ok(Some((lo, hi)))
    }

    /// Expand one node: tighten its box, classify the live pairs, prune
    /// by interval bound and position windows, sample an incumbent, and
    /// return the surviving children (empty for pruned nodes and leaves).
    fn expand(
        &self,
        node: &Node,
        incumbent: &SharedIncumbent,
        scratch: &mut WorkerScratch,
    ) -> Result<Vec<Node>, SolverError> {
        // Tighten the node's weight box via per-coordinate LPs.
        let region = self.region(&node.decisions);
        let Some((nlo, nhi)) = self.tighten_box(&region, scratch)? else {
            return Ok(Vec::new()); // region infeasible
        };

        // Classify undecided pairs against the tightened box.
        scratch.decided.fill(None);
        for &(idx, side) in &node.decisions {
            scratch.decided[idx as usize] = Some(side);
        }
        scratch.beats.copy_from_slice(&self.sys.fixed_beats);
        scratch.open.fill(0);
        let eps = self.problem.tol.eps;
        let mut branch_candidate: Option<(usize, f64)> = None;
        for (idx, pair) in self.sys.pairs.iter().enumerate() {
            match scratch.decided[idx] {
                Some(true) => scratch.beats[pair.slot] += 1,
                Some(false) => {}
                None => {
                    let diff = self.sys.diff(idx);
                    let lo_v = formulation::box_simplex_min(diff, &nlo, &nhi);
                    let hi_v = formulation::box_simplex_max(diff, &nlo, &nhi);
                    let (Some(l), Some(h)) = (lo_v, hi_v) else {
                        continue;
                    };
                    if l > eps {
                        scratch.beats[pair.slot] += 1;
                    } else if h <= eps {
                        // never beats
                    } else {
                        scratch.open[pair.slot] += 1;
                        // Most-ambiguous branching: largest two-sided
                        // margin around the tie threshold.
                        let straddle = (h - eps).min(eps - l);
                        let score = straddle.min(h - l);
                        if branch_candidate.map_or(true, |(_, s)| score > s) {
                            branch_candidate = Some((idx, score));
                        }
                    }
                }
            }
        }

        // Position windows: prune when a slot's attainable rank
        // interval cannot meet its allowed window (interval computed
        // over a superset of the region — sound).
        if self.has_position_constraints {
            let impossible = self.slot_bounds.iter().enumerate().any(|(slot, b)| {
                b.is_some_and(|(lo, hi)| {
                    let min_rank = scratch.beats[slot] + 1;
                    let max_rank = min_rank + scratch.open[slot];
                    max_rank < lo || min_rank > hi
                })
            });
            if impossible {
                return Ok(Vec::new());
            }
        }

        // Node bound from rank intervals.
        let bound = interval_bound(
            &self.sys,
            &scratch.beats,
            &scratch.open,
            self.problem.objective,
        );
        if bound >= incumbent.error() {
            return Ok(Vec::new());
        }

        // Incumbent: the region's Chebyshev center (skipped on a
        // numerically stuck LP — purely a heuristic).
        if self.config.incumbent_sampling {
            scratch.stats.lp_solves += 1;
            if let Ok(Some(center)) = chebyshev_center_with(&region, &mut scratch.lp) {
                if self.try_incumbent(&center, incumbent, &mut scratch.stats) {
                    let best = incumbent.error();
                    if best == 0 || bound >= best {
                        return Ok(Vec::new());
                    }
                }
            }
        }

        let Some((branch_idx, _)) = branch_candidate else {
            // Leaf: every pair decided or constant — bound is exact,
            // and the center above already recorded it.
            return Ok(Vec::new());
        };

        // Expand children, checking feasibility eagerly.
        let mut children = Vec::with_capacity(2);
        for side in [true, false] {
            let mut decisions = node.decisions.clone();
            decisions.push((branch_idx as u32, side));
            let child_region = self.region(&decisions);
            scratch.stats.lp_solves += 1;
            // On an LP failure, keep the child: pruning is only an
            // optimization and bounds remain sound.
            let keep = match child_region.solve_feasibility_with(&mut scratch.lp) {
                Ok(sol) => sol.status == Status::Optimal,
                Err(_) => true,
            };
            if keep {
                children.push(Node { decisions, bound });
            }
        }
        Ok(children)
    }

    fn over_time_limit(&self) -> bool {
        self.config
            .time_limit
            .is_some_and(|tl| self.start.elapsed() >= tl)
    }
}

/// Solve OPT exactly (or to the configured limits).
pub(super) fn solve(problem: &OptProblem, config: &SolverConfig) -> Result<Solution, SolverError> {
    let start = Instant::now();
    let m = problem.m();
    let (box_lo, box_hi) = match &config.initial_box {
        Some((lo, hi)) => (lo.clone(), hi.clone()),
        None => (vec![0.0; m], vec![1.0; m]),
    };

    // Root constant-folding: stream over all k·(n−1) pairs once.
    let sys = formulation::reduce_against_box(problem, &box_lo, &box_hi);

    // Allowed rank windows per slot (Example 1 position constraints).
    let slot_bounds: Vec<Option<(u32, u32)>> = sys
        .top
        .iter()
        .map(|&t| problem.positions.interval(t))
        .collect();
    let ctx = SearchContext {
        problem,
        config,
        has_position_constraints: slot_bounds.iter().any(|b| b.is_some()),
        slot_bounds,
        sys,
        box_lo,
        box_hi,
        start,
    };
    let threads = config.threads.max(1);
    let mut root_stats = SolverStats {
        live_pairs: ctx.sys.pairs.len(),
        threads,
        ..SolverStats::default()
    };
    let mut scratch = WorkerScratch::new(&ctx);

    // Root region feasibility + first incumbent. A numerically
    // stuck Chebyshev LP falls back to a plain feasibility solve.
    let root_region = ctx.region(&[]);
    root_stats.lp_solves += 1;
    let center = match chebyshev_center_with(&root_region, &mut scratch.lp) {
        Ok(Some(c)) => c,
        Ok(None) => return Err(SolverError::Infeasible),
        Err(_) => {
            root_stats.lp_solves += 1;
            let sol = root_region.solve_feasibility_with(&mut scratch.lp)?;
            if sol.status != Status::Optimal {
                return Err(SolverError::Infeasible);
            }
            sol.x
        }
    };
    let incumbent = SharedIncumbent::new(center.clone(), u64::MAX);
    ctx.try_incumbent(&center, &incumbent, &mut root_stats);

    if let Some(warm) = &config.warm_start {
        if warm.len() == m
            && problem.constraints.satisfied_by(warm)
            && in_box(warm, &ctx.box_lo, &ctx.box_hi)
        {
            ctx.try_incumbent(warm, &incumbent, &mut root_stats);
        }
    }

    // Start heuristic: deterministic random simplex points inside
    // the box; good incumbents found here prune the tree everywhere.
    if config.root_samples > 0 && incumbent.error() > 0 {
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..config.root_samples {
            // Dirichlet(1,…,1) point, projected into the box.
            let mut w: Vec<f64> = (0..m).map(|_| -(next().max(1e-12)).ln()).collect();
            let total: f64 = w.iter().sum();
            for (j, x) in w.iter_mut().enumerate() {
                *x = (*x / total).clamp(ctx.box_lo[j], ctx.box_hi[j]);
            }
            let resum: f64 = w.iter().sum();
            if resum <= 0.0 {
                continue;
            }
            // Re-normalize; box clipping can push the sum off 1.
            let ok_after: bool = {
                w.iter_mut().for_each(|x| *x /= resum);
                in_box(&w, &ctx.box_lo, &ctx.box_hi)
            };
            if ok_after && problem.constraints.satisfied_by(&w) {
                ctx.try_incumbent(&w, &incumbent, &mut root_stats);
                if incumbent.error() == 0 {
                    break;
                }
            }
        }
    }

    // Search.
    let root = Node {
        decisions: Vec::new(),
        bound: interval_bound(
            &ctx.sys,
            &ctx.sys.fixed_beats,
            &ctx.sys.undecided,
            problem.objective,
        ),
    };
    let proved = if incumbent.error() == 0 || root.bound >= incumbent.error() {
        true
    } else if threads <= 1 {
        run_sequential(&ctx, root, &incumbent, &mut scratch)?
    } else {
        run_parallel(&ctx, root, &incumbent, threads, &mut root_stats)?
    };
    root_stats.merge(&scratch.stats);

    root_stats.elapsed = start.elapsed();
    let (best_err, best_w) = incumbent.into_best();
    if best_err == u64::MAX {
        // Only possible under position constraints: no sampled point
        // satisfied the windows (and, if `proved`, none exists).
        return Err(SolverError::Infeasible);
    }
    Ok(Solution {
        weights: best_w,
        error: best_err,
        optimal: proved,
        stats: root_stats,
    })
}

/// Single-threaded driver: the classic loop, with the best-first
/// early-termination proof (first pop whose bound reaches the incumbent
/// proves optimality).
fn run_sequential(
    ctx: &SearchContext<'_>,
    root: Node,
    incumbent: &SharedIncumbent,
    scratch: &mut WorkerScratch,
) -> Result<bool, SolverError> {
    let mut queue = LocalQueue::new(ctx.config.order);
    queue.push(root);
    loop {
        let Some(node) = queue.pop() else {
            return Ok(true);
        };
        if node.bound >= incumbent.error() {
            if ctx.config.order == SearchOrder::BestFirst {
                // Best-first: every remaining node is at least as bad.
                return Ok(true);
            }
            continue;
        }
        if ctx.config.node_limit > 0 && scratch.stats.nodes >= ctx.config.node_limit {
            return Ok(false);
        }
        if ctx.over_time_limit() {
            return Ok(false);
        }
        scratch.stats.nodes += 1;
        let children = ctx.expand(&node, incumbent, scratch)?;
        if incumbent.error() == 0 {
            return Ok(true);
        }
        for child in children {
            queue.push(child);
        }
    }
}

/// Multi-threaded driver: per-worker frontiers with work-stealing
/// handoff, a shared atomic incumbent, and exhaustion-based termination
/// (pending count hits zero ⇒ every node was expanded or pruned ⇒
/// optimality is proved).
fn run_parallel(
    ctx: &SearchContext<'_>,
    root: Node,
    incumbent: &SharedIncumbent,
    threads: usize,
    root_stats: &mut SolverStats,
) -> Result<bool, SolverError> {
    let pool = WorkPool::new(threads, ctx.config.order);
    pool.push(0, root);
    let stopped = AtomicBool::new(false); // a limit fired: no proof
    let zero = AtomicBool::new(false); // error-0 incumbent: proof
    let nodes_total = AtomicUsize::new(0);
    let failure: Mutex<Option<SolverError>> = Mutex::new(None);

    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|wid| {
                let pool = &pool;
                let stopped = &stopped;
                let zero = &zero;
                let nodes_total = &nodes_total;
                let failure = &failure;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::new(ctx);
                    loop {
                        if stopped.load(Ordering::SeqCst) || zero.load(Ordering::SeqCst) {
                            break;
                        }
                        let Some(node) = pool.pop(wid) else {
                            if pool.pending() == 0 {
                                break; // search space exhausted
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        if node.bound >= incumbent.error() {
                            pool.finish_node();
                            continue;
                        }
                        let limit = ctx.config.node_limit;
                        if limit > 0 && nodes_total.fetch_add(1, Ordering::SeqCst) >= limit {
                            stopped.store(true, Ordering::SeqCst);
                            pool.finish_node();
                            break;
                        }
                        if ctx.over_time_limit() {
                            stopped.store(true, Ordering::SeqCst);
                            pool.finish_node();
                            break;
                        }
                        scratch.stats.nodes += 1;
                        match ctx.expand(&node, incumbent, &mut scratch) {
                            Ok(children) => {
                                if incumbent.error() == 0 {
                                    zero.store(true, Ordering::SeqCst);
                                }
                                for child in children {
                                    pool.push(wid, child);
                                }
                            }
                            Err(e) => {
                                *failure.lock().unwrap() = Some(e);
                                stopped.store(true, Ordering::SeqCst);
                            }
                        }
                        pool.finish_node();
                    }
                    scratch.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect::<Vec<_>>()
    });

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    for s in &worker_stats {
        root_stats.merge(s);
    }
    // Proof: an error-0 incumbent, or full exhaustion without any limit
    // firing. (`pending == 0` also holds when `zero` raced ahead — both
    // are valid proofs.)
    Ok(zero.load(Ordering::SeqCst) || (!stopped.load(Ordering::SeqCst) && pool.pending() == 0))
}

pub(super) fn in_box(w: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    w.iter()
        .zip(lo.iter().zip(hi))
        .all(|(x, (l, h))| *x >= l - 1e-9 && *x <= h + 1e-9)
}
