//! Node expansion (box tightening, pair classification, pruning,
//! children) shared by every driver, plus the blocking `solve()` entry
//! that drives a [`SolveJob`](super::job::SolveJob) to completion on the
//! caller's threads.

use super::bounds::interval_bound;
use super::frontier::Node;
use super::incumbent::SharedIncumbent;
use super::job::{SolveJob, StepOutcome};
use super::{Solution, SolverConfig, SolverError, SolverStats};
use crate::formulation::{self, ReducedSystem};
use crate::OptProblem;
use rankhow_lp::{
    chebyshev_center_with, BasisSnapshot, IncrementalLp, LoadStatus, Op, Problem as Lp, Sense,
    SimplexWorkspace, Status, VarId,
};
use std::sync::Arc;

/// Nodes a blocking driver expands per [`SolveJob::step`] slice. The
/// slice length only bounds how often limits/cancellation are
/// re-checked between node batches, so a large value keeps the blocking
/// path's overhead negligible.
const BLOCKING_SLICE: usize = 1024;

/// Per-worker mutable state: reusable LP scratch (tableaus stop
/// reallocating per node) plus classification buffers and local stats.
///
/// One scratch outlives any number of jobs — [`SolveJob::step`] resizes
/// the classification buffers to the job at hand while the
/// [`SimplexWorkspace`] and the incremental-LP workspace keep their
/// tableau allocations across jobs, which is what lets a long-lived
/// scheduler worker hop between queries without ever re-allocating LP
/// storage. The incremental workspace is also the worker's *basis
/// cache*: a stolen node's snapshot re-installs onto it, so warm starts
/// survive work-stealing and scheduler time-slicing.
#[derive(Default)]
pub struct EngineScratch {
    pub(super) lp: SimplexWorkspace,
    pub(super) inc: IncrementalLp,
    pub(super) decided: Vec<Option<bool>>,
    pub(super) open: Vec<u32>,
    pub(super) beats: Vec<u32>,
    pub(super) stats: SolverStats,
    /// Pivot totals already flushed into a job's stats (both LP
    /// workspaces count monotonically; this is the high-water mark).
    pivots_flushed: u64,
}

impl EngineScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        EngineScratch::default()
    }

    /// Size the classification buffers for a job's reduced system
    /// (no-op when already sized — the common case inside one job).
    pub(super) fn prepare(&mut self, sys: &ReducedSystem) {
        self.decided.resize(sys.pairs.len(), None);
        self.open.resize(sys.top.len(), 0);
        self.beats.resize(sys.top.len(), 0);
    }

    /// Move the locally accumulated stats out (for merging into a job),
    /// folding in the LP pivots performed since the last flush.
    pub(super) fn take_stats(&mut self) -> SolverStats {
        let total = self.lp.pivots() + self.inc.pivots();
        self.stats.lp_pivots += total - self.pivots_flushed;
        self.pivots_flushed = total;
        std::mem::take(&mut self.stats)
    }
}

/// What one box-tightening probe LP reported (shared by the warm and
/// cold tightening paths).
enum Probe {
    /// Optimal objective value.
    Value(f64),
    /// The region is empty — only the cold path can observe this (a
    /// warm load has already established feasibility).
    Infeasible,
    /// Numerically stuck or unbounded: fall back to the static bound.
    Stuck,
}

/// Immutable per-step view of one job's search state. All mutable state
/// lives in the job (frontier, incumbent, counters) or in the worker's
/// [`EngineScratch`]; this struct only borrows, so any worker can form a
/// view of any job at any time — the reentrancy the scheduler needs.
pub(super) struct SearchView<'a> {
    pub problem: &'a OptProblem,
    pub config: &'a SolverConfig,
    pub sys: &'a ReducedSystem,
    pub slot_bounds: &'a [Option<(u32, u32)>],
    pub has_position_constraints: bool,
    pub box_lo: &'a [f64],
    pub box_hi: &'a [f64],
}

impl SearchView<'_> {
    /// A candidate becomes the incumbent only if it satisfies the
    /// position windows; returns whether it improved the shared best.
    ///
    /// Evaluation goes through [`OptProblem::evaluate_constrained`] — the
    /// same batched-score arithmetic as the public evaluator — so the
    /// reported `Solution::error` is realized by `Solution::weights`
    /// bit-for-bit. (A pairwise-difference evaluation over the reduced
    /// system rounds differently at tie boundaries and can disagree with
    /// `evaluate` by a rank on ε = 0 ties.)
    pub fn try_incumbent(
        &self,
        w: &[f64],
        incumbent: &SharedIncumbent,
        stats: &mut SolverStats,
    ) -> bool {
        let Some(err) = self.problem.evaluate_constrained(w) else {
            return false;
        };
        if incumbent.offer(err, w) {
            stats.incumbents += 1;
            true
        } else {
            false
        }
    }

    /// Build the node's weight-space LP region.
    pub fn region(&self, decisions: &[(u32, bool)]) -> Lp {
        let m = self.problem.m();
        let mut lp = Lp::new(Sense::Minimize);
        let w: Vec<VarId> = (0..m)
            .map(|j| lp.add_var(&format!("w{j}"), self.box_lo[j], self.box_hi[j], 0.0))
            .collect();
        let simplex: Vec<(VarId, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&simplex, Op::Eq, 1.0);
        self.problem.constraints.apply_to(&mut lp, &w);
        for &(idx, side) in decisions {
            let diff = self.sys.diff(idx as usize);
            let terms: Vec<(VarId, f64)> = (0..m).map(|j| (w[j], diff[j])).collect();
            if side {
                lp.add_constraint(&terms, Op::Ge, self.problem.tol.eps1);
            } else {
                lp.add_constraint(&terms, Op::Le, self.problem.tol.eps2);
            }
        }
        lp
    }

    /// What one box-tightening probe reported.
    fn probe_outcome(result: Result<rankhow_lp::Solution, rankhow_lp::SolveError>) -> Probe {
        match result {
            Ok(s) if s.status == Status::Optimal => Probe::Value(s.objective),
            Ok(s) if s.status == Status::Infeasible => Probe::Infeasible,
            // Unbounded impossible (w ∈ [0,1]); LP failure → fallback.
            _ => Probe::Stuck,
        }
    }

    /// Per-coordinate min/max over the region (2m small LPs); `probe`
    /// supplies the per-objective solver, so the warm and cold paths
    /// share one loop — and one copy of the safety margin and numerical
    /// guards the parity suite depends on. Returns `None` when the
    /// region is empty.
    fn tighten_box_with(
        &self,
        region: &Lp,
        scratch: &mut EngineScratch,
        mut probe: impl FnMut(&mut EngineScratch, usize, Sense) -> Probe,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        // Safety margin so LP round-off cannot make the box *tighter*
        // than the true region (classification soundness depends on
        // box ⊇ region).
        const MARGIN: f64 = 1e-8;
        let m = self.problem.m();
        let mut lo = vec![0.0; m];
        let mut hi = vec![1.0; m];
        for j in 0..m {
            let (static_lo, static_hi) = region.bounds(j);
            scratch.stats.lp_solves += 1;
            lo[j] = match probe(scratch, j, Sense::Minimize) {
                Probe::Value(v) => (v - MARGIN).max(static_lo),
                Probe::Infeasible => return None,
                Probe::Stuck => static_lo,
            };
            scratch.stats.lp_solves += 1;
            hi[j] = match probe(scratch, j, Sense::Maximize) {
                Probe::Value(v) => (v + MARGIN).min(static_hi),
                Probe::Infeasible => return None,
                Probe::Stuck => static_hi,
            };
            // Numerical guard.
            if lo[j] > hi[j] {
                let mid = 0.5 * (lo[j] + hi[j]);
                lo[j] = mid;
                hi[j] = mid;
            }
        }
        Some((lo, hi))
    }

    /// Cold tightening: every probe re-solves the region from an empty
    /// basis (one shared clone toggles a single objective coefficient).
    fn tighten_box(
        &self,
        region: &Lp,
        scratch: &mut EngineScratch,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let mut lp = region.clone();
        self.tighten_box_with(region, scratch, |scratch, j, sense| {
            lp.set_objective(j, 1.0);
            lp.set_sense(sense);
            let out = Self::probe_outcome(lp.solve_with(&mut scratch.lp));
            if sense == Sense::Maximize {
                lp.set_objective(j, 0.0);
            }
            out
        })
    }

    /// Warm tightening: the region is already loaded (and feasible) in
    /// `scratch.inc`, so each probe is an objective swap + primal phase
    /// 2 from the previous optimal basis — no standard-form rebuild, no
    /// phase 1. A numerically stuck probe falls back to the static
    /// bounds, exactly like the cold path.
    fn tighten_box_warm(&self, region: &Lp, scratch: &mut EngineScratch) -> (Vec<f64>, Vec<f64>) {
        self.tighten_box_with(region, scratch, |scratch, j, sense| {
            Self::probe_outcome(scratch.inc.solve_objective(&[(j, 1.0)], sense))
        })
        .expect("a warm-loaded region is feasible (load established it)")
    }

    /// Expand one node: tighten its box, classify the live pairs, prune
    /// by interval bound and position windows, sample an incumbent, and
    /// return the surviving children (empty for pruned nodes and leaves).
    pub fn expand(
        &self,
        node: &Node,
        incumbent: &SharedIncumbent,
        scratch: &mut EngineScratch,
    ) -> Result<Vec<Node>, SolverError> {
        let region = self.region(&node.decisions);
        // Warm LP path: load the region into the worker's incremental
        // workspace once — from the node's parent-basis snapshot when it
        // carries one — then drive all probes and child checks from that
        // tableau. A failed load (numerical trouble) silently degrades
        // this node to cold per-LP solves; answers never depend on it.
        let mut inc_ready = false;
        if self.config.warm_lp {
            // The load is itself an LP solve (snapshot install + dual
            // restore, or a cold phase 1 on fallback) — count it, so
            // warm-mode lp_solves reflects the work actually done.
            scratch.stats.lp_solves += 1;
            match scratch.inc.load(&region, node.basis.as_deref()) {
                Ok(LoadStatus::Infeasible { warm }) => {
                    // The load still ran (and pruned the node): account
                    // it, so every expanded node counts exactly one LP
                    // start — the invariant the parity proptest pins.
                    if warm {
                        scratch.stats.lp_warm_starts += 1;
                    } else {
                        scratch.stats.lp_cold_starts += 1;
                    }
                    return Ok(Vec::new());
                }
                Ok(LoadStatus::Feasible { warm }) => {
                    inc_ready = true;
                    if warm {
                        scratch.stats.lp_warm_starts += 1;
                    } else {
                        scratch.stats.lp_cold_starts += 1;
                    }
                }
                Err(_) => {}
            }
        }
        if !inc_ready {
            scratch.stats.lp_cold_starts += 1;
        }

        // Tighten the node's weight box via per-coordinate LPs.
        let (nlo, nhi) = if inc_ready {
            self.tighten_box_warm(&region, scratch)
        } else {
            match self.tighten_box(&region, scratch) {
                Some(b) => b,
                None => return Ok(Vec::new()), // region infeasible
            }
        };

        // Classify undecided pairs against the tightened box.
        scratch.decided.fill(None);
        for &(idx, side) in &node.decisions {
            scratch.decided[idx as usize] = Some(side);
        }
        scratch.beats.copy_from_slice(&self.sys.fixed_beats);
        scratch.open.fill(0);
        let eps = self.problem.tol.eps;
        let mut branch_candidate: Option<(usize, f64)> = None;
        for (idx, pair) in self.sys.pairs.iter().enumerate() {
            match scratch.decided[idx] {
                Some(true) => scratch.beats[pair.slot] += 1,
                Some(false) => {}
                None => {
                    let diff = self.sys.diff(idx);
                    let lo_v = formulation::box_simplex_min(diff, &nlo, &nhi);
                    let hi_v = formulation::box_simplex_max(diff, &nlo, &nhi);
                    let (Some(l), Some(h)) = (lo_v, hi_v) else {
                        continue;
                    };
                    if l > eps {
                        scratch.beats[pair.slot] += 1;
                    } else if h <= eps {
                        // never beats
                    } else {
                        scratch.open[pair.slot] += 1;
                        // Most-ambiguous branching: largest two-sided
                        // margin around the tie threshold.
                        let straddle = (h - eps).min(eps - l);
                        let score = straddle.min(h - l);
                        if branch_candidate.map_or(true, |(_, s)| score > s) {
                            branch_candidate = Some((idx, score));
                        }
                    }
                }
            }
        }

        // Position windows: prune when a slot's attainable rank
        // interval cannot meet its allowed window (interval computed
        // over a superset of the region — sound).
        if self.has_position_constraints {
            let impossible = self.slot_bounds.iter().enumerate().any(|(slot, b)| {
                b.is_some_and(|(lo, hi)| {
                    let min_rank = scratch.beats[slot] + 1;
                    let max_rank = min_rank + scratch.open[slot];
                    max_rank < lo || min_rank > hi
                })
            });
            if impossible {
                return Ok(Vec::new());
            }
        }

        // Node bound from rank intervals.
        let bound = interval_bound(
            self.sys,
            &scratch.beats,
            &scratch.open,
            self.problem.objective,
        );
        if bound >= incumbent.error() {
            return Ok(Vec::new());
        }

        // Incumbent: the region's Chebyshev center (skipped on a
        // numerically stuck LP — purely a heuristic).
        if self.config.incumbent_sampling {
            scratch.stats.lp_solves += 1;
            if let Ok(Some(center)) = chebyshev_center_with(&region, &mut scratch.lp) {
                if self.try_incumbent(&center, incumbent, &mut scratch.stats) {
                    let best = incumbent.error();
                    if best == 0 || bound >= best {
                        return Ok(Vec::new());
                    }
                }
            }
        }

        let Some((branch_idx, _)) = branch_candidate else {
            // Leaf: every pair decided or constant — bound is exact,
            // and the center above already recorded it.
            return Ok(Vec::new());
        };

        // Expand children, checking feasibility eagerly. Warm: append
        // the one new pair-sign row to the already-loaded tableau and
        // restore feasibility by dual simplex from the current basis
        // (then pop it for the sibling). Cold: rebuild the child region
        // and run two-phase from scratch.
        let child_basis: Option<Arc<BasisSnapshot>> =
            inc_ready.then(|| Arc::new(scratch.inc.snapshot()));
        let m = self.problem.m();
        // Both sides push the same row coefficients; only (op, rhs)
        // differ, so build the terms once.
        let branch_terms: Vec<(VarId, f64)> = if inc_ready {
            let diff = self.sys.diff(branch_idx);
            (0..m).map(|j| (j, diff[j])).collect()
        } else {
            Vec::new()
        };
        let mut children = Vec::with_capacity(2);
        for side in [true, false] {
            let mut decisions = node.decisions.clone();
            decisions.push((branch_idx as u32, side));
            scratch.stats.lp_solves += 1;
            // On an LP failure, keep the child: pruning is only an
            // optimization and bounds remain sound.
            let keep = if inc_ready {
                let (op, rhs) = if side {
                    (Op::Ge, self.problem.tol.eps1)
                } else {
                    (Op::Le, self.problem.tol.eps2)
                };
                let pushed = scratch.inc.push_row(&branch_terms, op, rhs);
                scratch.inc.pop_row();
                match pushed {
                    Ok(status) => status == Status::Optimal,
                    Err(_) => true,
                }
            } else {
                let child_region = self.region(&decisions);
                match child_region.solve_feasibility_with(&mut scratch.lp) {
                    Ok(sol) => sol.status == Status::Optimal,
                    Err(_) => true,
                }
            };
            if keep {
                children.push(Node {
                    decisions,
                    bound,
                    basis: child_basis.clone(),
                });
            }
        }
        Ok(children)
    }
}

/// Solve OPT exactly (or to the configured limits), blocking the caller.
///
/// This is a thin driver over the reentrant [`SolveJob`]: one job is
/// created with `config.threads` frontier lanes and stepped to
/// completion — on the calling thread for one lane, on a
/// `std::thread::scope` pool otherwise. The scheduler in `rankhow-serve`
/// drives the very same job API from its long-lived worker pool.
pub(super) fn solve(problem: &OptProblem, config: &SolverConfig) -> Result<Solution, SolverError> {
    let lanes = config.threads.max(1);
    let job = SolveJob::new(problem, config.clone(), lanes);
    if lanes <= 1 {
        let mut scratch = EngineScratch::new();
        while job.step(0, &mut scratch, BLOCKING_SLICE) != StepOutcome::Done {}
    } else {
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let job = &job;
                scope.spawn(move || {
                    let mut scratch = EngineScratch::new();
                    loop {
                        match job.step(lane, &mut scratch, BLOCKING_SLICE) {
                            StepOutcome::Done => break,
                            StepOutcome::Starved => std::thread::yield_now(),
                            StepOutcome::Progress => {}
                        }
                    }
                });
            }
        });
    }
    job.into_solution()
}

pub(super) fn in_box(w: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    w.iter()
        .zip(lo.iter().zip(hi))
        .all(|(x, (l, h))| *x >= l - 1e-9 && *x <= h + 1e-9)
}
