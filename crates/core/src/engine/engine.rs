//! Node expansion (box tightening, pair classification, pruning,
//! children) shared by every driver, plus the blocking `solve()` entry
//! that drives a [`SolveJob`](super::job::SolveJob) to completion on the
//! caller's threads.

use super::bounds::interval_bound;
use super::frontier::{DecidedPairs, Node, Propagated};
use super::incumbent::SharedIncumbent;
use super::job::{SolveJob, StepOutcome};
use super::{Solution, SolverConfig, SolverError, SolverStats};
use crate::formulation::{self, ReducedSystem};
use crate::OptProblem;
use rankhow_linalg::kernels;
use rankhow_lp::{
    chebyshev_center_with, BasisSnapshot, IncrementalLp, LoadStatus, Op, ProbeOutcome,
    Problem as Lp, Sense, SimplexWorkspace, Status, VarId,
};
use rankhow_obs::Event;
use std::sync::Arc;
use std::time::Instant;

/// Nodes a blocking driver expands per [`SolveJob::step`] slice. The
/// slice length only bounds how often limits/cancellation are
/// re-checked between node batches, so a large value keeps the blocking
/// path's overhead negligible.
const BLOCKING_SLICE: usize = 1024;

/// Per-worker mutable state: reusable LP scratch (tableaus stop
/// reallocating per node) plus classification buffers and local stats.
///
/// One scratch outlives any number of jobs — [`SolveJob::step`] resizes
/// the classification buffers to the job at hand while the
/// [`SimplexWorkspace`] and the incremental-LP workspace keep their
/// tableau allocations across jobs, which is what lets a long-lived
/// scheduler worker hop between queries without ever re-allocating LP
/// storage. The incremental workspace is also the worker's *basis
/// cache*: a stolen node's snapshot re-installs onto it, so warm starts
/// survive work-stealing and scheduler time-slicing.
#[derive(Default)]
pub struct EngineScratch {
    pub(super) lp: SimplexWorkspace,
    pub(super) inc: IncrementalLp,
    pub(super) decided: Vec<Option<bool>>,
    pub(super) open: Vec<u32>,
    pub(super) beats: Vec<u32>,
    pub(super) stats: SolverStats,
    /// Pivot totals already flushed into a job's stats (both LP
    /// workspaces count monotonically; this is the high-water mark).
    pivots_flushed: u64,
}

impl EngineScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        EngineScratch::default()
    }

    /// Size the classification buffers for a job's reduced system
    /// (no-op when already sized — the common case inside one job).
    pub(super) fn prepare(&mut self, sys: &ReducedSystem) {
        self.decided.resize(sys.pairs.len(), None);
        self.open.resize(sys.top.len(), 0);
        self.beats.resize(sys.top.len(), 0);
    }

    /// Move the locally accumulated stats out (for merging into a job),
    /// folding in the LP pivots performed since the last flush.
    pub(super) fn take_stats(&mut self) -> SolverStats {
        let total = self.lp.pivots() + self.inc.pivots();
        self.stats.lp_pivots += total - self.pivots_flushed;
        self.pivots_flushed = total;
        std::mem::take(&mut self.stats)
    }
}

/// What one box-tightening probe LP reported (shared by the warm and
/// cold tightening paths).
pub(super) enum Probe {
    /// Optimal objective value and the optimizer point (the witness
    /// bound propagation hands to the children).
    Value(f64, Vec<f64>),
    /// The region is empty — only the cold path can observe this (a
    /// warm load has already established feasibility).
    Infeasible,
    /// Numerically stuck or unbounded: fall back to the static bound.
    Stuck,
}

/// Safety margin so LP round-off cannot make the tightened box *tighter*
/// than the true region (classification soundness depends on
/// box ⊇ region).
const MARGIN: f64 = 1e-8;

/// Slack a parent probe witness must clear the one new branch
/// constraint by before its bound is propagated instead of re-probed.
/// Propagation is sound at any margin (the parent bound relaxes the
/// child's); the margin only guards against reusing a witness whose
/// feasibility is within LP noise of the boundary.
const WITNESS_MARGIN: f64 = 1e-7;

/// Slack a known region point must satisfy a child's branch constraint
/// by before the child is declared feasible *without* an LP. Unlike
/// probe skipping this certificate replaces an accept/reject decision,
/// so the margin sits well above the simplex feasibility tolerance
/// (1e-7): a point this deep inside the half-space stays feasible under
/// any representable LP wiggle, and the skip provably keeps the same
/// child the LP would have kept.
const CHILD_CERT_MARGIN: f64 = 1e-5;

/// Resolve a min-probe outcome into the final lower bound for one
/// coordinate; `None` means the region is empty. A [`Probe::Stuck`]
/// fallback always resets to the **static** region bound — never a
/// parent-carried or previously tightened value, which would be stale
/// for this node's region and could tighten the box below its true
/// extent (the bound-propagation audit pins this with a direct test).
pub(super) fn resolve_probe_lo(p: &Probe, static_lo: f64) -> Option<f64> {
    match p {
        Probe::Value(v, _) => Some((v - MARGIN).max(static_lo)),
        Probe::Infeasible => None,
        Probe::Stuck => Some(static_lo),
    }
}

/// Max-probe counterpart of [`resolve_probe_lo`].
pub(super) fn resolve_probe_hi(p: &Probe, static_hi: f64) -> Option<f64> {
    match p {
        Probe::Value(v, _) => Some((v + MARGIN).min(static_hi)),
        Probe::Infeasible => None,
        Probe::Stuck => Some(static_hi),
    }
}

/// Whether `w` satisfies a pair-sign constraint (`side` ⇒ the score
/// difference must clear `eps1` from above, else stay below `eps2`)
/// with `margin` to spare.
pub(super) fn side_holds(
    diff: &[f64],
    w: &[f64],
    side: bool,
    eps1: f64,
    eps2: f64,
    margin: f64,
) -> bool {
    // Chunked dot: reassociates the sum (a few ulps vs the sequential
    // fold), safe here because every caller demands a margin ≥ 1e-7 —
    // far above dot-product roundoff on unit-box inputs.
    let dot = kernels::dot(diff, w);
    if side {
        dot >= eps1 + margin
    } else {
        dot <= eps2 - margin
    }
}

/// A tightened node box plus the per-coordinate probe optimizers that
/// justify it (the witnesses propagated to the children).
pub(super) struct Tightened {
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
    /// Flat `2m × m`: rows `0..m` are min-probe argmins, rows `m..2m`
    /// max-probe argmaxes.
    pub wit: Vec<f64>,
    /// Which witness rows are valid (a skipped-with-stale-witness or
    /// stuck probe leaves its row invalid).
    pub wit_ok: Vec<bool>,
}

/// How a node's inherited facts are separated from the region they were
/// proved over — the re-validation a witness must pass before its bound
/// is reused.
enum InheritGate<'a> {
    /// The ordinary within-tree case: the facts come from the parent
    /// expansion, and the one row they have not seen is the node's last
    /// branch decision. A witness survives iff it satisfies that row.
    Branch { diff: &'a [f64], side: bool },
    /// A root node carrying cross-query facts
    /// ([`super::RootSeed`]): the facts come from a *containing* cached
    /// region, and the rows they have not seen are this instance's own
    /// box bounds and weight constraints. A witness survives iff it lies
    /// in the new root region outright — then the cached probe optimum
    /// is attained inside the new region and the bound is exact.
    Root,
}

/// The bound-propagation inputs for one expansion: the inherited
/// [`Propagated`] facts plus the gate separating their region from this
/// node's.
struct Inherit<'a> {
    prop: &'a Propagated,
    gate: InheritGate<'a>,
}

/// Immutable per-step view of one job's search state. All mutable state
/// lives in the job (frontier, incumbent, counters) or in the worker's
/// [`EngineScratch`]; this struct only borrows, so any worker can form a
/// view of any job at any time — the reentrancy the scheduler needs.
pub(super) struct SearchView<'a> {
    pub problem: &'a OptProblem,
    pub config: &'a SolverConfig,
    pub sys: &'a ReducedSystem,
    pub slot_bounds: &'a [Option<(u32, u32)>],
    pub has_position_constraints: bool,
    pub box_lo: &'a [f64],
    pub box_hi: &'a [f64],
}

impl SearchView<'_> {
    /// A candidate becomes the incumbent only if it satisfies the
    /// position windows; returns whether it improved the shared best.
    ///
    /// Evaluation goes through [`OptProblem::evaluate_constrained`] — the
    /// same batched-score arithmetic as the public evaluator — so the
    /// reported `Solution::error` is realized by `Solution::weights`
    /// bit-for-bit. (A pairwise-difference evaluation over the reduced
    /// system rounds differently at tie boundaries and can disagree with
    /// `evaluate` by a rank on ε = 0 ties.)
    pub fn try_incumbent(
        &self,
        w: &[f64],
        incumbent: &SharedIncumbent,
        certified: &SharedIncumbent,
        stats: &mut SolverStats,
    ) -> bool {
        let Some(err) = self.problem.evaluate_constrained(w) else {
            return false;
        };
        // Track the best *certified* incumbent separately: a sampled
        // point may sit in the (ε2, ε1) gap band the optimality proof
        // excludes, and which band point wins is interleaving-dependent.
        // A certified point, by contrast, is covered by *every*
        // exhaustive search of the instance, so its error cross-validates
        // independent solves (see `Solution::certified_error`). The band
        // check is only run on improvements, so its cost is bounded by
        // the number of distinct error decreases.
        if err < certified.error() && !crate::verify::relies_on_gap_band(self.problem, w) {
            certified.offer(err, w);
        }
        if incumbent.offer(err, w) {
            stats.incumbents += 1;
            if let Some(tel) = self.config.obs() {
                tel.event(Event::Incumbent { error: err as f64 });
            }
            true
        } else {
            false
        }
    }

    /// Witness rule, shared by the sequential and batched tightening
    /// paths: whether inherited witness row `slot` is still feasible for
    /// this node's region under the inherit gate — branch nodes check
    /// the one new branch row, cross-query root nodes check membership
    /// in the new root region (box + weight constraints). A live witness
    /// makes the inherited bound exact for this region.
    fn witness_alive(&self, inh: &Inherit<'_>, slot: usize, m: usize) -> bool {
        if !inh.prop.wit_ok[slot] {
            return false;
        }
        let w = &inh.prop.wit[slot * m..(slot + 1) * m];
        match inh.gate {
            InheritGate::Branch { diff, side } => side_holds(
                diff,
                w,
                side,
                self.problem.tol.eps1,
                self.problem.tol.eps2,
                WITNESS_MARGIN,
            ),
            InheritGate::Root => {
                in_box(w, self.box_lo, self.box_hi) && self.problem.constraints.satisfied_by(w)
            }
        }
    }

    /// Build the node's weight-space LP region.
    pub fn region(&self, decisions: &[(u32, bool)]) -> Lp {
        let m = self.problem.m();
        let mut lp = Lp::new(Sense::Minimize);
        let w: Vec<VarId> = (0..m)
            .map(|j| lp.add_var(&format!("w{j}"), self.box_lo[j], self.box_hi[j], 0.0))
            .collect();
        let simplex: Vec<(VarId, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&simplex, Op::Eq, 1.0);
        self.problem.constraints.apply_to(&mut lp, &w);
        for &(idx, side) in decisions {
            let diff = self.sys.diff(idx as usize);
            let terms: Vec<(VarId, f64)> = (0..m).map(|j| (w[j], diff[j])).collect();
            if side {
                lp.add_constraint(&terms, Op::Ge, self.problem.tol.eps1);
            } else {
                lp.add_constraint(&terms, Op::Le, self.problem.tol.eps2);
            }
        }
        lp
    }

    /// What one box-tightening probe reported.
    fn probe_outcome(result: Result<rankhow_lp::Solution, rankhow_lp::SolveError>) -> Probe {
        match result {
            Ok(s) if s.status == Status::Optimal => Probe::Value(s.objective, s.x),
            Ok(s) if s.status == Status::Infeasible => Probe::Infeasible,
            // Unbounded impossible (w ∈ [0,1]); LP failure → fallback.
            _ => Probe::Stuck,
        }
    }

    /// Per-coordinate min/max over the region (up to 2m small LPs);
    /// `probe` supplies the per-objective solver, so the warm and cold
    /// paths share one loop — and one copy of the safety margin and
    /// numerical guards the parity suite depends on. Returns `None`
    /// when the region is empty.
    ///
    /// With `inherit` present (bound propagation), a probe is skipped —
    /// and the parent's bound reused — when the parent's witness
    /// optimizer still satisfies the one new branch constraint (then the
    /// parent bound is *exact* for this node: the witness stays feasible
    /// and optimal), or when no new decision touches the coordinate
    /// (then the parent bound is a sound relaxation). Skips never count
    /// as `lp_solves`; they count as `probes_skipped`.
    fn tighten_box_with(
        &self,
        region: &Lp,
        scratch: &mut EngineScratch,
        inherit: Option<&Inherit<'_>>,
        mut probe: impl FnMut(&mut EngineScratch, usize, Sense) -> Probe,
    ) -> Option<Tightened> {
        let m = self.problem.m();
        let mut t = Tightened {
            lo: vec![0.0; m],
            hi: vec![1.0; m],
            wit: vec![0.0; 2 * m * m],
            wit_ok: vec![false; 2 * m],
        };
        for j in 0..m {
            let (static_lo, static_hi) = region.bounds(j);
            // `changed` is all-ones when m > 64, so wide instances never
            // take the untouched-coordinate shortcut.
            let untouched =
                inherit.is_some_and(|inh| j < 64 && inh.prop.changed & (1u64 << j) == 0);
            let mut coord_skips = 0usize;
            for (slot, sense) in [(j, Sense::Minimize), (m + j, Sense::Maximize)] {
                // Witness rule: the inherited probe optimizer is still
                // feasible here ⇒ the inherited bound is exact, and the
                // witness itself propagates onward.
                let witness_alive = inherit.is_some_and(|inh| self.witness_alive(inh, slot, m));
                if witness_alive || untouched {
                    let inh = inherit.unwrap();
                    let bound = if slot < m {
                        inh.prop.lo[j]
                    } else {
                        inh.prop.hi[j]
                    };
                    if slot < m {
                        t.lo[j] = bound;
                    } else {
                        t.hi[j] = bound;
                    }
                    if witness_alive {
                        t.wit[slot * m..(slot + 1) * m]
                            .copy_from_slice(&inh.prop.wit[slot * m..(slot + 1) * m]);
                        t.wit_ok[slot] = true;
                    }
                    scratch.stats.probes_skipped += 1;
                    coord_skips += 1;
                    continue;
                }
                scratch.stats.lp_solves += 1;
                // LP-time histogram: one entry per probe, so the
                // lp_solve count reconciles with `SolverStats::lp_solves`.
                let t0 = self.config.obs().map(|_| Instant::now());
                let p = probe(scratch, j, sense);
                if let (Some(tel), Some(t0)) = (self.config.obs(), t0) {
                    tel.metrics.lp_solve.record(t0.elapsed());
                }
                let resolved = if slot < m {
                    resolve_probe_lo(&p, static_lo)
                } else {
                    resolve_probe_hi(&p, static_hi)
                };
                let Some(bound) = resolved else {
                    return None; // region infeasible (cold path only)
                };
                if slot < m {
                    t.lo[j] = bound;
                } else {
                    t.hi[j] = bound;
                }
                if let Probe::Value(_, x) = p {
                    t.wit[slot * m..(slot + 1) * m].copy_from_slice(&x);
                    t.wit_ok[slot] = true;
                }
            }
            if coord_skips == 2 {
                scratch.stats.coords_skipped += 1;
            }
            // Numerical guard.
            if t.lo[j] > t.hi[j] {
                let mid = 0.5 * (t.lo[j] + t.hi[j]);
                t.lo[j] = mid;
                t.hi[j] = mid;
            }
        }
        Some(t)
    }

    /// Cold tightening: every probe re-solves the region from an empty
    /// basis (one shared clone toggles a single objective coefficient).
    /// The coefficient is reset after *every* probe — propagation may
    /// skip either direction of a pair, so the closure cannot rely on
    /// min/max probes arriving in lockstep to clean up after itself.
    fn tighten_box(
        &self,
        region: &Lp,
        scratch: &mut EngineScratch,
        inherit: Option<&Inherit<'_>>,
    ) -> Option<Tightened> {
        let mut lp = region.clone();
        self.tighten_box_with(region, scratch, inherit, |scratch, j, sense| {
            lp.set_objective(j, 1.0);
            lp.set_sense(sense);
            let out = Self::probe_outcome(lp.solve_with(&mut scratch.lp));
            lp.set_objective(j, 0.0);
            out
        })
    }

    /// Warm tightening: the region is already loaded (and feasible) in
    /// `scratch.inc`, so each probe is an objective swap + primal phase
    /// 2 from the previous optimal basis — no standard-form rebuild, no
    /// phase 1. A numerically stuck probe falls back to the static
    /// bounds, exactly like the cold path.
    fn tighten_box_warm(
        &self,
        region: &Lp,
        scratch: &mut EngineScratch,
        inherit: Option<&Inherit<'_>>,
    ) -> Tightened {
        self.tighten_box_with(region, scratch, inherit, |scratch, j, sense| {
            Self::probe_outcome(scratch.inc.solve_objective(&[(j, 1.0)], sense))
        })
        .expect("a warm-loaded region is feasible (load established it)")
    }

    /// Batched warm tightening ([`SolverConfig::batched_kernels`]):
    /// apply the same skip rules in the same slot order as
    /// [`SearchView::tighten_box_with`], then solve every surviving
    /// probe in **one** [`IncrementalLp::solve_objectives`] sweep. The
    /// sweep visits probes in slot order against the evolving basis —
    /// the same pivots, bounds, and witnesses as the per-probe path,
    /// bit for bit — but prices each probe from its ≤ 2 support rows
    /// instead of a full reduced-cost rebuild and shares one optimizer
    /// extraction across consecutive settled probes. Swept probes still
    /// count as `lp_solves` — they are the same objective solves, just
    /// cheaper — plus `probe_objectives_batched`; a failed probe maps
    /// to [`Probe::Stuck`] exactly like the per-probe path's
    /// non-optimal statuses do.
    fn tighten_box_batched(
        &self,
        region: &Lp,
        scratch: &mut EngineScratch,
        inherit: Option<&Inherit<'_>>,
    ) -> Tightened {
        let m = self.problem.m();
        let mut t = Tightened {
            lo: vec![0.0; m],
            hi: vec![1.0; m],
            wit: vec![0.0; 2 * m * m],
            wit_ok: vec![false; 2 * m],
        };
        // Phase profiling (sampled): time phases A and C of this node's
        // tightening when the telemetry sampling knob selects it.
        let obs = self.config.obs();
        let sampled = obs.is_some_and(|tel| tel.sample_phase());
        let phase_a_t0 = sampled.then(Instant::now);
        // Phase A: skip rules (witness / untouched coordinate), same
        // order and accounting as the sequential path; survivors queue.
        let mut probes: Vec<(usize, Sense)> = Vec::with_capacity(2 * m);
        let mut probe_slots: Vec<usize> = Vec::with_capacity(2 * m);
        let mut coord_skips = vec![0u8; m];
        for j in 0..m {
            let untouched =
                inherit.is_some_and(|inh| j < 64 && inh.prop.changed & (1u64 << j) == 0);
            for (slot, sense) in [(j, Sense::Minimize), (m + j, Sense::Maximize)] {
                let witness_alive = inherit.is_some_and(|inh| self.witness_alive(inh, slot, m));
                if witness_alive || untouched {
                    let inh = inherit.unwrap();
                    if slot < m {
                        t.lo[j] = inh.prop.lo[j];
                    } else {
                        t.hi[j] = inh.prop.hi[j];
                    }
                    if witness_alive {
                        t.wit[slot * m..(slot + 1) * m]
                            .copy_from_slice(&inh.prop.wit[slot * m..(slot + 1) * m]);
                        t.wit_ok[slot] = true;
                    }
                    scratch.stats.probes_skipped += 1;
                    coord_skips[j] += 1;
                    continue;
                }
                scratch.stats.lp_solves += 1;
                probes.push((j, sense));
                probe_slots.push(slot);
            }
        }
        if let (Some(tel), Some(t0)) = (obs, phase_a_t0) {
            tel.metrics.tighten_a.record(t0.elapsed());
        }
        // Phase B: one sweep solves all survivors.
        let mut outcomes: Vec<ProbeOutcome> = Vec::new();
        let mut witnesses: Vec<Vec<f64>> = Vec::new();
        if !probes.is_empty() {
            scratch.stats.batched_sweeps += 1;
            let t0 = obs.map(|_| Instant::now());
            scratch
                .inc
                .solve_objectives(&probes, &mut outcomes, &mut witnesses);
            if let (Some(tel), Some(t0)) = (obs, t0) {
                let elapsed = t0.elapsed();
                tel.metrics.probe_sweep.record(elapsed);
                // The sweep is `probes.len()` objective solves done in
                // one pass; spread its time evenly so the lp_solve
                // histogram count still reconciles with
                // `SolverStats::lp_solves` (Phase A counted each
                // survivor there).
                let per = (elapsed.as_nanos() / probes.len() as u128) as u64;
                for _ in 0..probes.len() {
                    tel.metrics.lp_solve.record_nanos(per);
                }
                tel.event(Event::ProbeSweep {
                    probes: probes.len() as u64,
                });
            }
        }
        let phase_c_t0 = sampled.then(Instant::now);
        // Phase C: resolve in slot order.
        for (k, &slot) in probe_slots.iter().enumerate() {
            let (j, _) = probes[k];
            let p = match outcomes[k] {
                ProbeOutcome::Solved { value, witness } => {
                    scratch.stats.probe_objectives_batched += 1;
                    Probe::Value(value, witnesses[witness].clone())
                }
                // The sweep failed this probe under exactly the
                // conditions `solve_objective` reports a non-optimal
                // status — which `probe_outcome` maps to `Stuck`.
                ProbeOutcome::Failed => Probe::Stuck,
            };
            let (static_lo, static_hi) = region.bounds(j);
            let resolved = if slot < m {
                resolve_probe_lo(&p, static_lo)
            } else {
                resolve_probe_hi(&p, static_hi)
            };
            let bound = resolved.expect("a warm-loaded region is feasible (load established it)");
            if slot < m {
                t.lo[j] = bound;
            } else {
                t.hi[j] = bound;
            }
            if let Probe::Value(_, x) = p {
                t.wit[slot * m..(slot + 1) * m].copy_from_slice(&x);
                t.wit_ok[slot] = true;
            }
        }
        // Per-coordinate accounting and the numerical guard, identical
        // to the sequential path's per-j epilogue.
        for j in 0..m {
            if coord_skips[j] == 2 {
                scratch.stats.coords_skipped += 1;
            }
            if t.lo[j] > t.hi[j] {
                let mid = 0.5 * (t.lo[j] + t.hi[j]);
                t.lo[j] = mid;
                t.hi[j] = mid;
            }
        }
        if let (Some(tel), Some(t0)) = (obs, phase_c_t0) {
            tel.metrics.tighten_c.record(t0.elapsed());
        }
        t
    }

    /// Expand one node: tighten its box, classify the live pairs, prune
    /// by interval bound and position windows, sample an incumbent, and
    /// return the surviving children (empty for pruned nodes and leaves).
    pub fn expand(
        &self,
        node: &Node,
        incumbent: &SharedIncumbent,
        certified: &SharedIncumbent,
        scratch: &mut EngineScratch,
    ) -> Result<Vec<Node>, SolverError> {
        let region = self.region(&node.decisions);
        let m = self.problem.m();
        // Bound-propagation inputs: the inherited facts apply to this
        // node's (sub)region under the matching gate. A branch node's
        // facts come from its parent, separated by the node's last
        // decision; a *root* node carrying facts got them from a
        // cross-query seed whose cached region contains this root.
        let inherit: Option<Inherit<'_>> = if self.config.propagate {
            node.prop.as_deref().map(|prop| {
                let gate = match node.decisions.last() {
                    Some(&(idx, side)) => InheritGate::Branch {
                        diff: self.sys.diff(idx as usize),
                        side,
                    },
                    None => InheritGate::Root,
                };
                Inherit { prop, gate }
            })
        } else {
            None
        };
        // Warm LP path: load the region into the worker's incremental
        // workspace once — from the node's parent-basis snapshot when it
        // carries one — then drive all probes and child checks from that
        // tableau. A failed load (numerical trouble) silently degrades
        // this node to cold per-LP solves; answers never depend on it.
        let obs = self.config.obs();
        let mut inc_ready = false;
        if self.config.warm_lp {
            // The load is itself an LP solve (snapshot install + dual
            // restore, or a cold phase 1 on fallback) — count it, so
            // warm-mode lp_solves reflects the work actually done.
            scratch.stats.lp_solves += 1;
            let t0 = obs.map(|_| Instant::now());
            let loaded = scratch.inc.load(&region, node.basis.as_deref());
            if let (Some(tel), Some(t0)) = (obs, t0) {
                let elapsed = t0.elapsed();
                tel.metrics.lp_solve.record(elapsed);
                // lp_load is the snapshot-install / dual-restore detail
                // view of the same work, behind the sampling knob.
                if tel.sample_phase() {
                    tel.metrics.lp_load.record(elapsed);
                }
            }
            match loaded {
                Ok(LoadStatus::Infeasible { warm }) => {
                    // The load still ran (and pruned the node): account
                    // it, so every expanded node counts exactly one LP
                    // start — the invariant the parity proptest pins.
                    if warm {
                        scratch.stats.lp_warm_starts += 1;
                        if let Some(tel) = obs {
                            tel.event(Event::SnapshotRestore);
                        }
                    } else {
                        scratch.stats.lp_cold_starts += 1;
                    }
                    return Ok(Vec::new());
                }
                Ok(LoadStatus::Feasible { warm }) => {
                    inc_ready = true;
                    if warm {
                        scratch.stats.lp_warm_starts += 1;
                        if let Some(tel) = obs {
                            tel.event(Event::SnapshotRestore);
                        }
                    } else {
                        scratch.stats.lp_cold_starts += 1;
                    }
                }
                Err(_) => {}
            }
        }
        if !inc_ready {
            scratch.stats.lp_cold_starts += 1;
        }

        // Tighten the node's weight box via per-coordinate LPs (minus
        // whatever probes bound propagation answers from parent facts).
        let tightened = if inc_ready && self.config.batched_kernels {
            self.tighten_box_batched(&region, scratch, inherit.as_ref())
        } else if inc_ready {
            self.tighten_box_warm(&region, scratch, inherit.as_ref())
        } else {
            match self.tighten_box(&region, scratch, inherit.as_ref()) {
                Some(b) => b,
                None => return Ok(Vec::new()), // region infeasible
            }
        };

        // Classify undecided pairs against the tightened box. Pairs the
        // ancestors already classified are seeded from the propagated
        // bitset — decisions are monotone down the tree (each decision
        // holds over an ancestor box that contains this node's region),
        // so a decided pair never re-enters `undecided` and pays no
        // classification work here. Newly decided pairs are recorded for
        // the children's bitset.
        scratch.decided.fill(None);
        if let Some(inh) = &inherit {
            for idx in 0..self.sys.pairs.len() {
                scratch.decided[idx] = inh.prop.decided.get(idx);
            }
        }
        for &(idx, side) in &node.decisions {
            scratch.decided[idx as usize] = Some(side);
        }
        scratch.beats.copy_from_slice(&self.sys.fixed_beats);
        scratch.open.fill(0);
        let eps = self.problem.tol.eps;
        let (nlo, nhi) = (&tightened.lo, &tightened.hi);
        let mut branch_candidate: Option<(usize, f64)> = None;
        let mut newly_decided: Vec<(usize, bool)> = Vec::new();
        for (idx, pair) in self.sys.pairs.iter().enumerate() {
            match scratch.decided[idx] {
                Some(true) => scratch.beats[pair.slot] += 1,
                Some(false) => {}
                None => {
                    let diff = self.sys.diff(idx);
                    let lo_v = formulation::box_simplex_min(diff, nlo, nhi);
                    let hi_v = formulation::box_simplex_max(diff, nlo, nhi);
                    let (Some(l), Some(h)) = (lo_v, hi_v) else {
                        continue;
                    };
                    if l > eps {
                        scratch.beats[pair.slot] += 1;
                        newly_decided.push((idx, true));
                    } else if h <= eps {
                        // never beats
                        newly_decided.push((idx, false));
                    } else {
                        scratch.open[pair.slot] += 1;
                        // Most-ambiguous branching: largest two-sided
                        // margin around the tie threshold.
                        let straddle = (h - eps).min(eps - l);
                        let score = straddle.min(h - l);
                        if branch_candidate.map_or(true, |(_, s)| score > s) {
                            branch_candidate = Some((idx, score));
                        }
                    }
                }
            }
        }

        // Position windows: prune when a slot's attainable rank
        // interval cannot meet its allowed window (interval computed
        // over a superset of the region — sound).
        if self.has_position_constraints {
            let impossible = self.slot_bounds.iter().enumerate().any(|(slot, b)| {
                b.is_some_and(|(lo, hi)| {
                    let min_rank = scratch.beats[slot] + 1;
                    let max_rank = min_rank + scratch.open[slot];
                    max_rank < lo || min_rank > hi
                })
            });
            if impossible {
                return Ok(Vec::new());
            }
        }

        // Node bound from rank intervals.
        let bound = interval_bound(
            self.sys,
            &scratch.beats,
            &scratch.open,
            self.problem.objective,
        );
        if bound >= incumbent.error() {
            return Ok(Vec::new());
        }

        // Incumbent: the region's Chebyshev center (skipped on a
        // numerically stuck LP — purely a heuristic). The point is kept
        // around: it doubles as a feasibility certificate for whichever
        // child's branch constraint it satisfies.
        let mut center_point: Option<Vec<f64>> = None;
        if self.config.incumbent_sampling {
            scratch.stats.lp_solves += 1;
            let t0 = obs.map(|_| Instant::now());
            let centered = chebyshev_center_with(&region, &mut scratch.lp);
            if let (Some(tel), Some(t0)) = (obs, t0) {
                tel.metrics.lp_solve.record(t0.elapsed());
            }
            if let Ok(Some(center)) = centered {
                if self.try_incumbent(&center, incumbent, certified, &mut scratch.stats) {
                    let best = incumbent.error();
                    if best == 0 || bound >= best {
                        return Ok(Vec::new());
                    }
                }
                center_point = Some(center);
            }
        }

        let Some((branch_idx, _)) = branch_candidate else {
            // Leaf: every pair decided or constant — bound is exact,
            // and the center above already recorded it.
            return Ok(Vec::new());
        };

        // Facts the children inherit: this expansion's tightened box and
        // witnesses, the (monotone) decided-pair bitset grown by this
        // node's classification, and the branch row's changed-coordinates
        // mask. One Arc shared by both siblings, like the basis snapshot.
        let branch_diff = self.sys.diff(branch_idx);
        let child_prop: Option<Arc<Propagated>> = if self.config.propagate {
            let changed = if m <= 64 {
                branch_diff
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| **d != 0.0)
                    .fold(0u64, |mask, (j, _)| mask | (1 << j))
            } else {
                u64::MAX
            };
            let mut decided = match &inherit {
                Some(inh) => inh.prop.decided.clone(),
                None => DecidedPairs::new(self.sys.pairs.len()),
            };
            for &(idx, side) in &newly_decided {
                decided.set(idx, side);
            }
            Some(Arc::new(Propagated {
                lo: tightened.lo,
                hi: tightened.hi,
                wit: tightened.wit,
                wit_ok: tightened.wit_ok,
                decided,
                changed,
            }))
        } else {
            None
        };

        // Expand children, checking feasibility eagerly. Warm: append
        // the one new pair-sign row to the already-loaded tableau and
        // restore feasibility by dual simplex from the current basis
        // (then pop it for the sibling). Cold: rebuild the child region
        // and run two-phase from scratch. Propagation first tries to
        // certify the child feasible from a point already in hand (a
        // probe witness or the Chebyshev center deep enough inside the
        // branch half-space) — then no LP runs at all.
        let child_basis: Option<Arc<BasisSnapshot>> =
            inc_ready.then(|| Arc::new(scratch.inc.snapshot()));
        // Both sides push the same row coefficients; only (op, rhs)
        // differ, so build the terms once.
        let branch_terms: Vec<(VarId, f64)> = if inc_ready {
            (0..m).map(|j| (j, branch_diff[j])).collect()
        } else {
            Vec::new()
        };
        let eps1 = self.problem.tol.eps1;
        let eps2 = self.problem.tol.eps2;
        let mut children = Vec::with_capacity(2);
        for side in [true, false] {
            let mut decisions = node.decisions.clone();
            decisions.push((branch_idx as u32, side));
            let feasibility_certified = child_prop.as_deref().is_some_and(|p| {
                let center_ok = center_point.as_deref().is_some_and(|c| {
                    side_holds(branch_diff, c, side, eps1, eps2, CHILD_CERT_MARGIN)
                });
                center_ok
                    || (0..2 * m).any(|slot| {
                        p.wit_ok[slot]
                            && side_holds(
                                branch_diff,
                                &p.wit[slot * m..(slot + 1) * m],
                                side,
                                eps1,
                                eps2,
                                CHILD_CERT_MARGIN,
                            )
                    })
            });
            // On an LP failure, keep the child: pruning is only an
            // optimization and bounds remain sound.
            let keep = if feasibility_certified {
                scratch.stats.probes_skipped += 1;
                true
            } else if inc_ready {
                scratch.stats.lp_solves += 1;
                let t0 = obs.map(|_| Instant::now());
                let (op, rhs) = if side { (Op::Ge, eps1) } else { (Op::Le, eps2) };
                let pushed = scratch.inc.push_row(&branch_terms, op, rhs);
                scratch.inc.pop_row();
                if let (Some(tel), Some(t0)) = (obs, t0) {
                    let elapsed = t0.elapsed();
                    tel.metrics.lp_solve.record(elapsed);
                    if tel.sample_phase() {
                        tel.metrics.child_feas.record(elapsed);
                    }
                    tel.event(Event::PushRow);
                }
                match pushed {
                    Ok(status) => status == Status::Optimal,
                    Err(_) => true,
                }
            } else {
                scratch.stats.lp_solves += 1;
                let t0 = obs.map(|_| Instant::now());
                let child_region = self.region(&decisions);
                let feas = child_region.solve_feasibility_with(&mut scratch.lp);
                if let (Some(tel), Some(t0)) = (obs, t0) {
                    let elapsed = t0.elapsed();
                    tel.metrics.lp_solve.record(elapsed);
                    if tel.sample_phase() {
                        tel.metrics.child_feas.record(elapsed);
                    }
                }
                match feas {
                    Ok(sol) => sol.status == Status::Optimal,
                    Err(_) => true,
                }
            };
            if keep {
                children.push(Node {
                    decisions,
                    bound,
                    basis: child_basis.clone(),
                    prop: child_prop.clone(),
                });
            }
        }
        Ok(children)
    }
}

/// Solve OPT exactly (or to the configured limits), blocking the caller.
///
/// This is a thin driver over the reentrant [`SolveJob`]: one job is
/// created with `config.threads` frontier lanes and stepped to
/// completion — on the calling thread for one lane, on a
/// `std::thread::scope` pool otherwise. The scheduler in `rankhow-serve`
/// drives the very same job API from its long-lived worker pool.
pub(super) fn solve(problem: &OptProblem, config: &SolverConfig) -> Result<Solution, SolverError> {
    let lanes = config.threads.max(1);
    let job = SolveJob::new(problem, config.clone(), lanes);
    if lanes <= 1 {
        let mut scratch = EngineScratch::new();
        while job.step(0, &mut scratch, BLOCKING_SLICE) != StepOutcome::Done {}
    } else {
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let job = &job;
                scope.spawn(move || {
                    let mut scratch = EngineScratch::new();
                    loop {
                        match job.step(lane, &mut scratch, BLOCKING_SLICE) {
                            StepOutcome::Done => break,
                            StepOutcome::Starved => std::thread::yield_now(),
                            StepOutcome::Progress => {}
                        }
                    }
                });
            }
        });
    }
    job.into_solution()
}

pub(super) fn in_box(w: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    w.iter()
        .zip(lo.iter().zip(hi))
        .all(|(x, (l, h))| *x >= l - 1e-9 && *x <= h + 1e-9)
}
