//! Rank computation and sound error lower bounds over a reduced system
//! (Section IV-B interval argument, generalized to every supported
//! objective).

use crate::formulation::ReducedSystem;
use rankhow_ranking::ErrorMeasure;

/// Realized competition ranks per slot for `w`, using the reduced
/// system: constant-folded pairs are already in `fixed_beats`, so only
/// live pairs need a dot product — one streaming pass over the flat
/// difference store.
///
/// Test-only cross-check: the engine's incumbents are evaluated through
/// `OptProblem::evaluate_constrained` (score-subtraction arithmetic);
/// this pairwise-difference evaluation agrees on every instance whose
/// score gaps clear f64 rounding, which `eval_in_system` asserts.
#[cfg(test)]
pub(crate) fn ranks_in_system(sys: &ReducedSystem, w: &[f64], eps: f64) -> Vec<u32> {
    let mut beats: Vec<u32> = sys.fixed_beats.clone();
    for (idx, pair) in sys.pairs.iter().enumerate() {
        let dot: f64 = sys.diff(idx).iter().zip(w).map(|(d, wi)| d * wi).sum();
        if dot > eps {
            beats[pair.slot] += 1;
        }
    }
    beats.iter_mut().for_each(|b| *b += 1);
    beats
}

/// Position error of realized ranks against the targets.
#[cfg(test)]
pub(crate) fn error_of_ranks(sys: &ReducedSystem, ranks: &[u32]) -> u64 {
    sys.target
        .iter()
        .zip(ranks)
        .map(|(&pi, &r)| (pi as i64 - r as i64).unsigned_abs())
        .sum()
}

/// Sound error lower bound from per-slot rank intervals
/// `[beats+1, beats+1+open]`, for any supported objective.
///
/// - position / top-weighted: distance of `π(r)` to the interval,
///   (weighted) summed per slot;
/// - Kendall tau: a strictly-ordered slot pair is *certainly* inverted
///   when the higher-ranked slot's minimum rank exceeds the lower slot's
///   maximum rank — only such pairs count.
pub(super) fn interval_bound(
    sys: &ReducedSystem,
    beats: &[u32],
    open: &[u32],
    measure: ErrorMeasure,
) -> u64 {
    match measure {
        ErrorMeasure::Position => rank_interval_bound(sys, beats, open),
        ErrorMeasure::TopWeighted => {
            let k = sys.top.len() as u64;
            sys.target
                .iter()
                .enumerate()
                .map(|(slot, &pi)| (k - pi as u64 + 1) * slot_gap(beats[slot], open[slot], pi))
                .sum()
        }
        ErrorMeasure::KendallTau => {
            let mut certain = 0u64;
            for a in 0..sys.target.len() {
                for b in a + 1..sys.target.len() {
                    let (pa, pb) = (sys.target[a], sys.target[b]);
                    if pa == pb {
                        continue;
                    }
                    let (hi, lo) = if pa < pb { (a, b) } else { (b, a) };
                    let min_hi = beats[hi] as u64 + 1;
                    let max_lo = beats[lo] as u64 + 1 + open[lo] as u64;
                    if min_hi > max_lo {
                        certain += 1;
                    }
                }
            }
            certain
        }
    }
}

/// Exact position error of `w` using the reduced system. Agrees with
/// `OptProblem::evaluate` by construction.
#[cfg(test)]
pub(crate) fn eval_in_system(sys: &ReducedSystem, w: &[f64], eps: f64) -> u64 {
    let ranks = ranks_in_system(sys, w, eps);
    error_of_ranks(sys, &ranks)
}

/// Distance of the target position `pi` to the slot's attainable rank
/// interval `[beats + 1, beats + 1 + open]` — the shared per-slot gap
/// both the plain and the top-weighted interval bounds are built from.
#[inline]
fn slot_gap(beats: u32, open: u32, pi: u32) -> u64 {
    let min_rank = beats as i64 + 1;
    let max_rank = min_rank + open as i64;
    let pi = pi as i64;
    if pi < min_rank {
        (min_rank - pi) as u64
    } else if pi > max_rank {
        (pi - max_rank) as u64
    } else {
        0
    }
}

fn rank_interval_bound(sys: &ReducedSystem, beats: &[u32], open: &[u32]) -> u64 {
    sys.target
        .iter()
        .enumerate()
        .map(|(slot, &pi)| slot_gap(beats[slot], open[slot], pi))
        .sum()
}
