use super::engine::in_box;
use super::*;
use crate::formulation;
use crate::WeightConstraints;
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;

fn problem_from(rows: Vec<Vec<f64>>, positions: Vec<Option<u32>>) -> OptProblem {
    let m = rows[0].len();
    let names = (0..m).map(|i| format!("A{i}")).collect();
    let data = Dataset::from_rows(names, rows).unwrap();
    let given = GivenRanking::from_positions(positions).unwrap();
    OptProblem::new(data, given).unwrap()
}

#[test]
fn example4_solved_to_zero() {
    let p = problem_from(
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ],
        vec![Some(1), Some(2), None],
    );
    let sol = RankHow::new().solve(&p).unwrap();
    assert_eq!(sol.error, 0);
    assert!(sol.optimal);
    assert_eq!(p.evaluate(&sol.weights), 0);
    let sum: f64 = sol.weights.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6);
}

#[test]
fn example3_finds_perfect_function_where_regression_fails() {
    // The 5-tuple dataset of Example 3: regression errs by 4,
    // RankHow must reach 0.
    let p = problem_from(
        vec![
            vec![1.0, 10000.0],
            vec![2.0, 1000.0],
            vec![5.0, 1.0],
            vec![4.0, 10.0],
            vec![3.0, 100.0],
        ],
        vec![Some(1), Some(2), Some(3), Some(4), Some(5)],
    );
    let sol = RankHow::new().solve(&p).unwrap();
    assert_eq!(sol.error, 0, "weights {:?}", sol.weights);
    assert!(sol.optimal);
}

#[test]
fn impossible_instance_gets_optimal_nonzero_error() {
    // Two tuples with identical attributes but distinct required
    // positions: no function can split them (they always tie), so
    // the optimum is error 1 (both rank 1: |1−1| + |2−1|).
    let p = problem_from(
        vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]],
        vec![Some(1), Some(2), None],
    );
    let sol = RankHow::new().solve(&p).unwrap();
    assert_eq!(sol.error, 1);
    assert!(sol.optimal);
}

#[test]
fn reversal_requires_error() {
    // Ranking is the reverse of every attribute's order: tuple 0
    // (all-smallest) must be first. Any simplex weight ranks tuple 0
    // last among the three. Optimal error is forced.
    let p = problem_from(
        vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]],
        vec![Some(1), Some(2), Some(3)],
    );
    let sol = RankHow::new().solve(&p).unwrap();
    // Scores are fully ordered: ranks become [3,2,1], error =
    // |1−3| + |2−2| + |3−1| = 4. (Ties could do better only if
    // allowed — with ε = 0 and distinct rows, ties need exact
    // equality which weights can achieve: w s.t. both coords equal
    // ... all rows are multiples: any w gives scores 0 < s1 < s2.)
    assert_eq!(sol.error, 4);
    assert!(sol.optimal);
}

#[test]
fn weight_constraints_respected() {
    let p = problem_from(
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ],
        vec![Some(1), Some(2), None],
    );
    // Example-1 style: force substantial weight on attribute 0.
    let p = p
        .with_constraints(WeightConstraints::none().min_weight(0, 0.3))
        .unwrap();
    let sol = RankHow::new().solve(&p).unwrap();
    assert!(sol.weights[0] >= 0.3 - 1e-6);
    assert!(sol.optimal);
    assert_eq!(p.evaluate(&sol.weights), sol.error);
}

#[test]
fn infeasible_constraints_detected() {
    let p = problem_from(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![Some(1), Some(2)]);
    let p = p
        .with_constraints(
            WeightConstraints::none()
                .min_weight(0, 0.8)
                .max_weight(0, 0.1),
        )
        .unwrap();
    assert!(matches!(
        RankHow::new().solve(&p),
        Err(SolverError::Infeasible)
    ));
}

#[test]
fn warm_start_adopted_when_feasible() {
    let p = problem_from(
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ],
        vec![Some(1), Some(2), None],
    );
    // Example 5's star: small w1, large w2, tiny w3.
    let cfg = SolverConfig {
        warm_start: Some(vec![0.1, 0.85, 0.05]),
        ..SolverConfig::default()
    };
    let sol = RankHow::with_config(cfg).solve(&p).unwrap();
    assert_eq!(sol.error, 0);
}

#[test]
fn depth_first_reaches_same_optimum() {
    let p = problem_from(
        vec![
            vec![5.0, 1.0],
            vec![4.0, 2.0],
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 3.0],
        ],
        vec![Some(1), Some(2), Some(3), None, None],
    );
    let best = RankHow::new().solve(&p).unwrap();
    let dfs = RankHow::with_config(SolverConfig {
        order: SearchOrder::DepthFirst,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    assert_eq!(best.error, dfs.error);
    assert!(best.optimal && dfs.optimal);
}

#[test]
fn single_and_multi_threaded_prove_same_error() {
    let p = problem_from(
        vec![
            vec![5.0, 1.0, 2.0],
            vec![4.0, 2.0, 1.0],
            vec![1.0, 5.0, 3.0],
            vec![2.0, 4.0, 5.0],
            vec![3.0, 3.0, 4.0],
        ],
        vec![Some(1), Some(2), Some(3), None, None],
    );
    let seq = RankHow::with_config(SolverConfig {
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    for threads in [2usize, 4] {
        let par = RankHow::with_config(SolverConfig {
            threads,
            ..SolverConfig::default()
        })
        .solve(&p)
        .unwrap();
        assert!(par.optimal, "{threads} threads must prove optimality");
        assert_eq!(par.error, seq.error, "{threads} threads");
        assert_eq!(p.evaluate(&par.weights), par.error);
        assert_eq!(par.stats.threads, threads);
    }
}

#[test]
fn parallel_depth_first_agrees_too() {
    let p = problem_from(
        vec![
            vec![5.0, 1.0],
            vec![4.0, 2.0],
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 3.0],
        ],
        vec![Some(1), Some(2), Some(3), None, None],
    );
    let seq = RankHow::with_config(SolverConfig {
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    let par = RankHow::with_config(SolverConfig {
        threads: 3,
        order: SearchOrder::DepthFirst,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    assert!(par.optimal);
    assert_eq!(par.error, seq.error);
}

#[test]
fn parallel_respects_infeasible_constraints() {
    let p = problem_from(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![Some(1), Some(2)]);
    let p = p
        .with_constraints(
            WeightConstraints::none()
                .min_weight(0, 0.8)
                .max_weight(0, 0.1),
        )
        .unwrap();
    let cfg = SolverConfig {
        threads: 4,
        ..SolverConfig::default()
    };
    assert!(matches!(
        RankHow::with_config(cfg).solve(&p),
        Err(SolverError::Infeasible)
    ));
}

#[test]
fn node_limit_yields_unproved_solution() {
    // Anti-correlated data with many ranked tuples → deep tree; a tiny
    // node limit must abort without an optimality claim but still
    // return the best incumbent.
    let rows: Vec<Vec<f64>> = (0..10)
        .map(|i| vec![i as f64, (10 - i) as f64, ((i * 3) % 7) as f64])
        .collect();
    let scores: Vec<f64> = rows.iter().map(|r| r[0] * 0.4 + r[2]).collect();
    let given = GivenRanking::from_scores(&scores, 6, 0.0).unwrap();
    let names = vec!["a".into(), "b".into(), "c".into()];
    let data = Dataset::from_rows(names, rows).unwrap();
    let p = OptProblem::new(data, given).unwrap();
    for threads in [1usize, 4] {
        let sol = RankHow::with_config(SolverConfig {
            node_limit: 1,
            root_samples: 0,
            incumbent_sampling: false,
            threads,
            ..SolverConfig::default()
        })
        .solve(&p)
        .unwrap();
        // With one node and no sampling, only the root center exists;
        // optimality cannot have been proved unless the bound closed.
        assert!(sol.error > 0 || !sol.optimal || sol.stats.nodes <= 1);
    }
}

#[test]
fn box_restriction_limits_search() {
    let p = problem_from(
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ],
        vec![Some(1), Some(2), None],
    );
    // A box around the known-good region: still solves to 0.
    let cfg = SolverConfig {
        initial_box: Some((vec![0.0, 0.6, 0.0], vec![0.3, 1.0, 0.2])),
        ..SolverConfig::default()
    };
    let sol = RankHow::with_config(cfg).solve(&p).unwrap();
    assert_eq!(sol.error, 0);
    assert!(in_box(&sol.weights, &[0.0, 0.6, 0.0], &[0.3, 1.0, 0.2]));
    // A box far from it: error must be worse.
    let cfg_bad = SolverConfig {
        initial_box: Some((vec![0.8, 0.0, 0.0], vec![1.0, 0.1, 0.1])),
        ..SolverConfig::default()
    };
    let sol_bad = RankHow::with_config(cfg_bad).solve(&p).unwrap();
    assert!(sol_bad.error > 0);
}

#[test]
fn eval_in_system_matches_problem_evaluate() {
    let p = problem_from(
        vec![
            vec![2.0, 7.0, 1.0],
            vec![6.0, 2.0, 3.0],
            vec![4.0, 4.0, 4.0],
            vec![1.0, 1.0, 9.0],
        ],
        vec![Some(1), Some(2), Some(3), None],
    );
    let sys = formulation::reduce_global(&p);
    for w in [
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.3, 0.3, 0.4],
        [0.5, 0.25, 0.25],
    ] {
        assert_eq!(
            eval_in_system(&sys, &w, p.tol.eps),
            p.evaluate(&w),
            "w = {w:?}"
        );
    }
}

#[test]
fn position_pin_enforced() {
    // Unconstrained optimum ranks tuple 0 first (achievable with
    // w0 > w1); pinning tuple 1 to position 1 forces a different
    // region.
    let p = problem_from(
        vec![
            vec![5.0, 1.0],
            vec![1.0, 5.0],
            vec![3.0, 3.0],
            vec![0.5, 0.5],
        ],
        vec![Some(1), Some(3), Some(2), None],
    );
    let free = RankHow::new().solve(&p).unwrap();
    assert_eq!(free.error, 0);
    let pinned = p
        .clone()
        .with_positions(crate::PositionConstraints::none().pin(1, 1))
        .unwrap();
    let sol = RankHow::new().solve(&pinned).unwrap();
    // Tuple 1 realized rank must be 1 even at an error cost.
    let scores = rankhow_ranking::scores_f64(pinned.data.features(), &sol.weights);
    assert_eq!(rankhow_ranking::rank_of_in(&scores, 1, pinned.tol.eps), 1);
    assert!(sol.error >= free.error);
}

#[test]
fn position_window_infeasible_detected() {
    // Tuple 1 dominates tuple 0 everywhere, so tuple 0 can never be
    // rank 1: pinning it must come back infeasible.
    let p = problem_from(
        vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.0, 0.0]],
        vec![Some(1), Some(2), None],
    );
    let pinned = p
        .with_positions(crate::PositionConstraints::none().pin(0, 1))
        .unwrap();
    assert!(matches!(
        RankHow::new().solve(&pinned),
        Err(SolverError::Infeasible)
    ));
}

#[test]
fn position_displacement_band() {
    let p = problem_from(
        vec![
            vec![5.0, 1.0],
            vec![4.0, 2.0],
            vec![3.0, 3.0],
            vec![2.0, 4.0],
            vec![1.0, 5.0],
        ],
        vec![Some(5), Some(4), Some(3), Some(2), Some(1)],
    );
    // The given ranking reverses every attribute order — large error
    // unavoidable, but the band keeps each tuple within ±2.
    let banded = p
        .clone()
        .with_positions(crate::PositionConstraints::none().max_displacement(&p.given, 2))
        .unwrap();
    match RankHow::new().solve(&banded) {
        Ok(sol) => {
            let scores = rankhow_ranking::scores_f64(banded.data.features(), &sol.weights);
            for &t in banded.given.top_k() {
                let r = rankhow_ranking::rank_of_in(&scores, t, banded.tol.eps);
                let pi = banded.given.position(t).unwrap();
                assert!(
                    (pi as i64 - r as i64).unsigned_abs() <= 2,
                    "tuple {t}: rank {r} vs π {pi}"
                );
            }
        }
        Err(SolverError::Infeasible) => {} // also a valid proof
        Err(e) => panic!("unexpected: {e}"),
    }
}

#[test]
fn position_constraint_on_unranked_rejected() {
    let p = problem_from(
        vec![vec![1.0], vec![2.0], vec![3.0]],
        vec![Some(1), Some(2), None],
    );
    assert!(p
        .with_positions(crate::PositionConstraints::none().pin(2, 1))
        .is_err());
}

/// An anti-correlated instance whose tree is deep enough that the
/// search survives a few single-node steps (used by the job-API tests).
fn deep_problem() -> OptProblem {
    let rows: Vec<Vec<f64>> = (0..10)
        .map(|i| vec![i as f64, (10 - i) as f64, ((i * 3) % 7) as f64])
        .collect();
    let scores: Vec<f64> = rows.iter().map(|r| r[0] * 0.4 + r[2]).collect();
    let given = GivenRanking::from_scores(&scores, 6, 0.0).unwrap();
    let names = vec!["a".into(), "b".into(), "c".into()];
    let data = Dataset::from_rows(names, rows).unwrap();
    OptProblem::new(data, given).unwrap()
}

#[test]
fn job_single_stepping_matches_blocking_solve() {
    let p = problem_from(
        vec![
            vec![5.0, 1.0, 2.0],
            vec![4.0, 2.0, 1.0],
            vec![1.0, 5.0, 3.0],
            vec![2.0, 4.0, 5.0],
            vec![3.0, 3.0, 4.0],
        ],
        vec![Some(1), Some(2), Some(3), None, None],
    );
    let config = SolverConfig {
        threads: 1,
        ..SolverConfig::default()
    };
    let blocking = RankHow::with_config(config.clone()).solve(&p).unwrap();
    // Drive the same search one node at a time through the job API.
    let job = SolveJob::new(&p, config, 1);
    let mut scratch = EngineScratch::new();
    let mut steps = 0usize;
    while job.step(0, &mut scratch, 1) != StepOutcome::Done {
        steps += 1;
        assert!(steps < 1_000_000, "job failed to terminate");
    }
    assert!(job.is_finished());
    let sol = job.result().unwrap();
    assert_eq!(sol.error, blocking.error, "stepped optimum diverged");
    assert_eq!(sol.weights, blocking.weights, "single-lane determinism");
    assert!(sol.optimal);
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_eq!(sol.stats.jobs, 1);
}

#[test]
fn cancelled_job_keeps_best_so_far() {
    let p = deep_problem();
    let job = SolveJob::new(
        &p,
        SolverConfig {
            root_samples: 0,
            threads: 1,
            ..SolverConfig::default()
        },
        1,
    );
    let mut scratch = EngineScratch::new();
    // First slice runs root setup plus one node.
    if job.step(0, &mut scratch, 1) == StepOutcome::Done {
        // Degenerate: solved immediately — nothing left to cancel.
        assert!(job.result().unwrap().optimal);
        return;
    }
    let (observed_err, observed_w) = job.best_so_far().expect("root center incumbent");
    assert_eq!(p.evaluate(&observed_w), observed_err);
    job.cancel();
    assert_eq!(job.step(0, &mut scratch, 1), StepOutcome::Done);
    let sol = job.result().unwrap();
    assert_eq!(sol.status, SolveStatus::Cancelled);
    assert!(sol.status.is_bounded());
    assert!(!sol.optimal);
    assert!(
        sol.error <= observed_err,
        "final best-so-far regressed: {} > {}",
        sol.error,
        observed_err
    );
}

#[test]
fn expired_deadline_stops_job_with_time_limit_status() {
    let p = deep_problem();
    let job = SolveJob::new(
        &p,
        SolverConfig {
            root_samples: 0,
            threads: 1,
            ..SolverConfig::default()
        },
        1,
    );
    job.deadline(std::time::Duration::ZERO);
    let mut scratch = EngineScratch::new();
    // Root setup still runs (it provides the best-so-far incumbent);
    // the expired deadline is caught at the first node boundary.
    while job.step(0, &mut scratch, 8) != StepOutcome::Done {}
    let sol = job.result().unwrap();
    assert_eq!(sol.status, SolveStatus::TimeLimit);
    assert!(!sol.optimal);
    assert_eq!(p.evaluate(&sol.weights), sol.error);
}

#[test]
fn node_limit_surfaces_in_status() {
    let p = deep_problem();
    let sol = RankHow::with_config(SolverConfig {
        node_limit: 1,
        root_samples: 0,
        incumbent_sampling: false,
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    if !sol.optimal {
        assert_eq!(sol.status, SolveStatus::NodeLimit);
    } else {
        assert_eq!(sol.status, SolveStatus::Optimal);
    }
}

#[test]
fn rejected_solutions_are_bounded_and_carry_no_incumbent() {
    let sol = Solution::rejected();
    assert_eq!(sol.status, SolveStatus::Rejected);
    assert!(sol.status.is_bounded());
    assert!(!sol.optimal);
    assert!(sol.weights.is_empty());
    assert_eq!(sol.error, u64::MAX, "the no-incumbent sentinel");
    assert_eq!(sol.stats.jobs, 0, "no search ever ran");
}

#[test]
fn is_started_flips_on_the_first_step() {
    let p = deep_problem();
    let job = SolveJob::new(
        &p,
        SolverConfig {
            root_samples: 0,
            threads: 1,
            ..SolverConfig::default()
        },
        1,
    );
    // The migration invariant: before any step there is no root state,
    // so a queued job can move between pools freely.
    assert!(!job.is_started());
    let mut scratch = EngineScratch::new();
    job.step(0, &mut scratch, 1);
    assert!(job.is_started());
}

#[test]
fn stuck_probe_fallback_resets_to_static_bounds() {
    use super::engine::{resolve_probe_hi, resolve_probe_lo, Probe};
    // A stuck (unbounded / numerically failed) probe must reset its
    // coordinate to the *static* region bound. The resolvers
    // deliberately cannot be handed a parent-carried or previously
    // tightened value: bound propagation reuses parent bounds only
    // through the witness / untouched-coordinate rules, never as a
    // stuck-probe fallback, so no stale per-coordinate state can
    // survive an LP failure.
    assert_eq!(resolve_probe_lo(&Probe::Stuck, 0.25), Some(0.25));
    assert_eq!(resolve_probe_hi(&Probe::Stuck, 0.75), Some(0.75));
    // An infeasible probe empties the region.
    assert!(resolve_probe_lo(&Probe::Infeasible, 0.0).is_none());
    assert!(resolve_probe_hi(&Probe::Infeasible, 1.0).is_none());
    // Probe values are safety-margined outward and clamped to the
    // static bounds (the box may only relax, never tighten, past them).
    let v = resolve_probe_lo(&Probe::Value(0.5, Vec::new()), 0.0).unwrap();
    assert!(v < 0.5 && v > 0.49);
    let v = resolve_probe_hi(&Probe::Value(0.5, Vec::new()), 1.0).unwrap();
    assert!(v > 0.5 && v < 0.51);
    assert_eq!(
        resolve_probe_lo(&Probe::Value(-1.0, Vec::new()), 0.0),
        Some(0.0)
    );
    assert_eq!(
        resolve_probe_hi(&Probe::Value(2.0, Vec::new()), 1.0),
        Some(1.0)
    );
}

/// An anti-correlated instance (no weighting ranks it perfectly) that
/// forces the search to branch for a while — propagation needs real
/// parent→child expansions to have anything to skip.
fn branching_problem() -> OptProblem {
    let rows: Vec<Vec<f64>> = (0..9)
        .map(|i| vec![f64::from(i), f64::from(8 - i), f64::from((i * 5) % 7)])
        .collect();
    let positions = (0..9)
        .map(|i| match i {
            3 => Some(1),
            7 => Some(2),
            _ => None,
        })
        .collect();
    problem_from(rows, positions)
}

#[test]
fn propagation_skips_probe_lps_and_preserves_the_optimum() {
    let p = branching_problem();
    let solve = |propagate: bool| {
        RankHow::with_config(SolverConfig {
            propagate,
            threads: 1,
            ..SolverConfig::default()
        })
        .solve(&p)
        .unwrap()
    };
    let on = solve(true);
    let off = solve(false);
    assert!(on.optimal && off.optimal);
    assert_eq!(on.error, off.error, "propagation changed the optimum");
    assert_eq!(off.stats.probes_skipped, 0, "escape hatch must not skip");
    assert!(on.stats.probes_skipped > 0, "no probe was ever skipped");
    assert!(on.stats.lp_solves < off.stats.lp_solves);
    // Strictly fewer LP solves *per node* (cross-multiplied to stay in
    // integers): skips must outpace any change in node count.
    assert!(
        on.stats.lp_solves * off.stats.nodes < off.stats.lp_solves * on.stats.nodes,
        "lp/node did not drop: on {}/{} vs off {}/{}",
        on.stats.lp_solves,
        on.stats.nodes,
        off.stats.lp_solves,
        off.stats.nodes
    );
}

#[test]
fn decided_pairs_never_reenter_undecided() {
    use super::frontier::Node;
    use super::incumbent::SharedIncumbent;

    let p = branching_problem();
    let config = SolverConfig {
        threads: 1,
        root_samples: 0,
        ..SolverConfig::default()
    };
    let job = SolveJob::new(&p, config, 1);
    let mut scratch = EngineScratch::new();
    // One step builds the root state the view borrows.
    job.step(0, &mut scratch, 1);
    if job.is_finished() {
        return; // degenerate: nothing left to walk
    }
    let view = job.view();
    scratch.prepare(view.sys);
    // Fresh incumbents keep pruning weak so the walk actually descends.
    let incumbent = SharedIncumbent::new(Vec::new(), u64::MAX);
    let certified = SharedIncumbent::new(Vec::new(), u64::MAX);
    let mut frontier = vec![Node {
        decisions: Vec::new(),
        bound: 0,
        basis: None,
        prop: None,
    }];
    let mut expanded = 0usize;
    let mut compared = 0usize;
    while let Some(node) = frontier.pop() {
        if expanded >= 200 {
            break;
        }
        expanded += 1;
        let children = view
            .expand(&node, &incumbent, &certified, &mut scratch)
            .unwrap();
        for child in children {
            let cp = child
                .prop
                .as_deref()
                .expect("propagation on: every child carries facts");
            if let Some(pp) = node.prop.as_deref() {
                // The monotonicity invariant: every pair the parent had
                // decided is still decided — same side — in the child.
                assert!(
                    cp.decided.contains_all(&pp.decided),
                    "a decided pair re-entered undecided"
                );
                assert!(cp.decided.count() >= pp.decided.count());
                compared += 1;
            }
            // The bitset never contradicts a path decision.
            for &(idx, side) in &child.decisions {
                if let Some(bit) = cp.decided.get(idx as usize) {
                    assert_eq!(bit, side, "bitset side contradicts the path");
                }
            }
            frontier.push(child);
        }
    }
    assert!(
        compared > 0,
        "walk must compare at least one parent/child bitset pair"
    );
}

#[test]
fn certified_incumbent_brackets_the_sampled_optimum() {
    let p = branching_problem();
    let sol = RankHow::with_config(SolverConfig {
        threads: 1,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    assert!(sol.certified_error >= sol.error);
    if sol.certified_error != u64::MAX {
        assert_eq!(
            p.evaluate(&sol.certified_weights),
            sol.certified_error,
            "certified incumbent must realize its error"
        );
        assert!(
            !crate::verify::relies_on_gap_band(&p, &sol.certified_weights),
            "certified incumbent must avoid the gap band"
        );
    }
    if sol.certified {
        assert!(
            !crate::verify::relies_on_gap_band(&p, &sol.weights),
            "certified flag must match the final weights"
        );
        assert_eq!(sol.certified_error, sol.error);
    }
}

#[test]
fn stats_are_meaningful() {
    let p = problem_from(
        vec![
            vec![5.0, 1.0],
            vec![1.0, 5.0],
            vec![4.0, 2.0],
            vec![2.0, 4.0],
        ],
        vec![Some(1), Some(2), None, None],
    );
    let sol = RankHow::new().solve(&p).unwrap();
    assert!(sol.stats.lp_solves >= 1);
    assert!(sol.stats.incumbents >= 1);
    assert!(sol.stats.threads >= 1);
}
