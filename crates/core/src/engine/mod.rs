//! The RankHow exact solver: best-first branch-and-bound over indicator
//! hyperplanes, sequential or multi-threaded.
//!
//! The paper hands Equation (2) to Gurobi and attributes the orders-of-
//! magnitude advantage over the PTIME TREE algorithm to two things
//! (Section III-B): the MILP solver reasons *holistically* about the
//! whole program, and it passes information across branches (bounds,
//! incumbents) instead of solving each arrangement cell in isolation.
//! This engine supplies exactly those ingredients, specialized to OPT's
//! geometry:
//!
//! - **search space**: nodes are partial side-assignments of indicator
//!   hyperplanes, i.e. unions of arrangement cells — the same tree TREE
//!   walks, but explored best-first instead of exhaustively;
//! - **bounding** ([`bounds`]): per node, every undecided indicator is
//!   classified against the node's weight box (Section IV-B interval
//!   argument); each ranked tuple's attainable rank interval yields an
//!   error lower bound; nodes that cannot beat the incumbent are pruned;
//! - **incumbents** ([`incumbent`]): the Chebyshev center of each node's
//!   region is evaluated exactly — a feasible solution whose error prunes
//!   elsewhere, found long before any leaf is reached;
//! - **optimality proof**: the search terminates with a proof when every
//!   node has been expanded or pruned against the incumbent (with
//!   best-first order and one thread, equivalently when the first popped
//!   node cannot beat the incumbent).
//!
//! # Threading model
//!
//! All mutable search state lives in a reentrant per-job struct,
//! [`SolveJob`]: per-lane frontiers with work-stealing handoff
//! ([`frontier::WorkPool`]), a shared atomic incumbent every worker
//! prunes against, and limit/cancellation/deadline flags checked at
//! node granularity. Workers advance a job through [`SolveJob::step`]
//! with their own [`EngineScratch`] (reusable
//! [`SimplexWorkspace`](rankhow_lp::SimplexWorkspace) + classification
//! buffers), so the thousands of node LPs allocate nothing after
//! warm-up — and one scratch serves any sequence of jobs, which is what
//! the `rankhow-serve` scheduler multiplexes many concurrent queries
//! on. [`SolverConfig::threads`] > 1 makes the blocking
//! [`RankHow::solve`] drive one job from that many `std::thread::scope`
//! workers. Pruning against the shared incumbent is sound in any
//! interleaving (bounds are lower bounds regardless of who found the
//! incumbent), so the parallel engine proves the same certified optimum
//! the sequential one does — node and time limits aside, which remain
//! best-effort in both.
//!
//! The engine optimizes Definition 4 directly (true position error under
//! the tie tolerance `ε`); branching uses the `ε1`/`ε2` thresholds so
//! every decided indicator is numerically trustworthy, exactly like the
//! paper's MILP.

mod bounds;
#[allow(clippy::module_inception)]
mod engine;
mod frontier;
mod incumbent;
mod job;

#[cfg(test)]
pub(crate) use bounds::eval_in_system;
pub use engine::EngineScratch;
pub use job::{SolveJob, StepOutcome};

use crate::problem::WeightConstraints;
use crate::OptProblem;
use rankhow_lp::{BasisSnapshot, SolveError};
use std::sync::Arc;
use std::time::Duration;

/// Node exploration order (ablation: `BestFirst` is the "modern solver"
/// behaviour; `DepthFirst` approximates naive backtracking).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchOrder {
    /// Pop the node with the smallest error lower bound first.
    #[default]
    BestFirst,
    /// LIFO plunging without global ordering.
    DepthFirst,
}

/// Number of worker threads the engine uses by default: the machine's
/// available parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Abort after expanding this many nodes (0 = unlimited).
    pub node_limit: usize,
    /// Solve-time limit, charged from the moment a worker first steps
    /// the job (for scheduler jobs, queue wait is *not* counted — a
    /// batch query gets the same budget semantics as a blocking solve;
    /// use a job deadline for an end-to-end latency bound).
    pub time_limit: Option<Duration>,
    /// Restrict the search to a weight box (SYM-GD cells).
    pub initial_box: Option<(Vec<f64>, Vec<f64>)>,
    /// Warm-start incumbent (e.g. an ordinal-regression seed).
    pub warm_start: Option<Vec<f64>>,
    /// Node exploration order.
    pub order: SearchOrder,
    /// Evaluate a Chebyshev-center incumbent at every node (disable for
    /// the ablation bench).
    pub incumbent_sampling: bool,
    /// Random simplex points evaluated at the root as heuristic
    /// incumbents (what commercial MILP solvers call a "start
    /// heuristic"). Deterministic; 0 disables.
    pub root_samples: usize,
    /// Warm-start the node LPs ([`rankhow_lp::IncrementalLp`]): build
    /// each region's tableau once, objective-swap through the `2m`
    /// box-tightening probes, check children by dual-simplex row
    /// addition, and seed child regions from a parent basis snapshot.
    /// `false` is the escape hatch that re-solves every LP from an
    /// empty basis (the pre-warm-start behaviour) — the parity test
    /// suite pins that both modes prove identical optimal errors.
    pub warm_lp: bool,
    /// Propagate decided-pair and box facts from parent to children
    /// ([`frontier`]'s per-node payload, riding the `Node` like the
    /// basis snapshot): a pair classified as decided never pays another
    /// `box_simplex` classification in any descendant, and a tightening
    /// probe whose parent optimizer still satisfies the one new branch
    /// constraint — or whose coordinate no new decision touches — is
    /// skipped outright (`SolverStats::probes_skipped`). Decisions are
    /// monotone down the tree (child region ⊆ parent region), so
    /// propagated facts stay sound across work-stealing and scheduler
    /// time-slicing. `false` is the escape hatch that re-derives every
    /// fact per node (the pre-propagation behaviour); the parity suite
    /// pins that both modes prove identical optimal errors.
    pub propagate: bool,
    /// Batch the `2m` box-tightening probe objectives per node: one
    /// [`rankhow_lp::IncrementalLp::solve_objectives`] sweep re-prices
    /// every surviving probe against the loaded basis (≤ 2 chunked
    /// row-axpys per probe instead of a full reduced-cost rebuild);
    /// probes the basis already optimizes settle with zero pivots and
    /// share one extraction, only the rest pay an individual phase-2
    /// run. Requires [`SolverConfig::warm_lp`] (the cold path has no
    /// shared tableau to sweep). `false` is the runtime escape hatch
    /// that restores strictly per-probe objective swaps; the
    /// compile-time `scalar-kernels` feature is the other hatch,
    /// swapping the chunked kernels themselves for scalar loops.
    pub batched_kernels: bool,
    /// Root seed from a cross-query solution cache ([`RootSeed`]): prior
    /// solutions of a *containing* instance offered as incumbents, plus
    /// optionally that solve's root artifacts (basis snapshot +
    /// propagated facts). Incumbents are validated exactly like
    /// [`SolverConfig::warm_start`]; artifacts are adopted only after
    /// the engine re-proves the containment they require (see
    /// [`RootArtifacts`]), so an unsound seed degrades to a plain cold
    /// root rather than an unsound search.
    pub root_seed: Option<Arc<RootSeed>>,
    /// Worker threads for the search ([`default_threads`] by default;
    /// values ≤ 1 run the sequential engine).
    ///
    /// Reproducibility: the proved optimal **error** is identical at any
    /// thread count, but with > 1 worker the returned **weight vector**
    /// may differ run-to-run — scheduling decides which error-equal
    /// incumbent is found first. Set `threads: 1` where bit-identical
    /// output matters (the figure/table reproduction binaries do).
    pub threads: usize,
    /// Solve-path telemetry ([`rankhow_obs::SolveTelemetry`]): latency
    /// histograms in the shared registry, per-query flight-recorder
    /// events, and sampled engine-phase profiling. `None` (the default)
    /// records nothing and costs nothing on the hot path; the `obs-off`
    /// cargo feature removes even the `None` checks at compile time.
    /// Telemetry never influences the search — on/off parity is pinned
    /// by proptest.
    pub telemetry: Option<Arc<rankhow_obs::SolveTelemetry>>,
    /// Deterministic fault schedule for this solve
    /// ([`crate::fault::FaultPlan`]): injected panics, worker deaths,
    /// stalls, forced root-LP verdicts, and cache-seed rejection, each
    /// firing exactly once. Test-only — the field (and every injection
    /// branch) exists only under the `fault-inject` cargo feature.
    #[cfg(feature = "fault-inject")]
    pub faults: Option<Arc<crate::fault::FaultPlan>>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 500_000,
            time_limit: None,
            initial_box: None,
            warm_start: None,
            order: SearchOrder::BestFirst,
            incumbent_sampling: true,
            root_samples: 512,
            warm_lp: true,
            propagate: true,
            batched_kernels: true,
            root_seed: None,
            threads: default_threads(),
            telemetry: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}

impl SolverConfig {
    /// The telemetry handle to record against, or `None` when telemetry
    /// is runtime-disabled or compiled out (`obs-off`): guarding every
    /// record site on this lets the disabled branch fold away.
    #[inline]
    pub fn obs(&self) -> Option<&rankhow_obs::SolveTelemetry> {
        if rankhow_obs::ENABLED {
            self.telemetry.as_deref()
        } else {
            None
        }
    }
}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct SolverStats {
    /// Nodes expanded (summed across workers).
    pub nodes: usize,
    /// LP solves (feasibility + tightening + centers + warm-mode
    /// region loads).
    pub lp_solves: usize,
    /// Node regions whose LP state was warm-started from a parent basis
    /// snapshot (phase 1 skipped entirely).
    pub lp_warm_starts: usize,
    /// Node regions built from an empty basis (the root, snapshot
    /// install fallbacks, and every region when
    /// [`SolverConfig::warm_lp`] is off).
    pub lp_cold_starts: usize,
    /// Simplex pivots performed across all LP work (the
    /// hardware-independent measure of LP effort warm-starting is
    /// meant to shrink).
    pub lp_pivots: u64,
    /// Probe/child LPs skipped by decided-pair bound propagation
    /// ([`SolverConfig::propagate`]): tightening probes answered by a
    /// still-feasible parent witness or an untouched coordinate, and
    /// child feasibility checks certified by a known interior point.
    /// Each skip is one LP that warm-starting alone would still have
    /// paid for.
    pub probes_skipped: usize,
    /// Coordinates whose *entire* re-tightening (both the min and the
    /// max probe) was skipped at some node — the per-coordinate view of
    /// `probes_skipped`.
    pub coords_skipped: usize,
    /// Batched probe re-pricing sweeps run
    /// ([`SolverConfig::batched_kernels`]): one per node whose warm
    /// tightening had at least one probe survive the skip rules.
    pub batched_sweeps: usize,
    /// Probe objectives answered by a batch sweep — support-row pricing
    /// instead of a full reduced-cost rebuild, shared optimizer
    /// extraction across settled runs (each still counts in
    /// `lp_solves`: it is the same objective solve, done cheaper).
    pub probe_objectives_batched: usize,
    /// Incumbent improvements.
    pub incumbents: usize,
    /// Queries answered entirely from a cross-query solution cache —
    /// the stored [`Solution`] was returned without running any search
    /// (router-level counter; an exact-hit solution carries `1` here and
    /// zero nodes/LPs).
    pub cache_exact_hits: usize,
    /// Solves whose root was seeded from a cached near-identical query
    /// ([`SolverConfig::root_seed`]): the cached incumbent(s) were
    /// offered at node 0 and any sound cached artifacts installed.
    pub cache_near_hits: usize,
    /// Cache lookups that found neither an exact nor a near entry
    /// (router-level counter).
    pub cache_misses: usize,
    /// Cache entries evicted by the LRU capacity policy (router-level
    /// counter).
    pub cache_evictions: usize,
    /// Jobs whose step panicked under a worker's `catch_unwind` and were
    /// finalized with [`SolveStatus::Failed`] (scheduler-level counter;
    /// a failed job's own solution carries `1` here).
    pub job_panics: usize,
    /// Worker threads the scheduler's supervisor respawned after a
    /// thread death (scheduler-level counter).
    pub worker_respawns: usize,
    /// Live indicator pairs after root constant-folding.
    pub live_pairs: usize,
    /// Worker threads (blocking solve) or frontier lanes (scheduler
    /// jobs) the search ran with.
    pub threads: usize,
    /// Jobs these stats cover: 1 on a [`Solution`], the number of
    /// completed jobs on a scheduler-level aggregate.
    pub jobs: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl SolverStats {
    /// Fold another stats block into the totals: counters add up,
    /// `threads` and `elapsed` keep their local values (they are
    /// per-solve properties, not summable).
    pub fn merge(&mut self, other: &SolverStats) {
        self.nodes += other.nodes;
        self.lp_solves += other.lp_solves;
        self.lp_warm_starts += other.lp_warm_starts;
        self.lp_cold_starts += other.lp_cold_starts;
        self.lp_pivots += other.lp_pivots;
        self.probes_skipped += other.probes_skipped;
        self.coords_skipped += other.coords_skipped;
        self.batched_sweeps += other.batched_sweeps;
        self.probe_objectives_batched += other.probe_objectives_batched;
        self.incumbents += other.incumbents;
        self.cache_exact_hits += other.cache_exact_hits;
        self.cache_near_hits += other.cache_near_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.job_panics += other.job_panics;
        self.worker_respawns += other.worker_respawns;
        self.live_pairs += other.live_pairs;
        self.jobs += other.jobs;
    }

    /// Serialize as a JSON object (the `solver` section of
    /// `--stats-json`; schema documented in README § Observability).
    pub fn to_json(&self) -> String {
        let mut obj = rankhow_obs::json::Obj::new();
        obj.field_u64("nodes", self.nodes as u64);
        obj.field_u64("lp_solves", self.lp_solves as u64);
        obj.field_u64("lp_warm_starts", self.lp_warm_starts as u64);
        obj.field_u64("lp_cold_starts", self.lp_cold_starts as u64);
        obj.field_u64("lp_pivots", self.lp_pivots);
        obj.field_u64("probes_skipped", self.probes_skipped as u64);
        obj.field_u64("coords_skipped", self.coords_skipped as u64);
        obj.field_u64("batched_sweeps", self.batched_sweeps as u64);
        obj.field_u64(
            "probe_objectives_batched",
            self.probe_objectives_batched as u64,
        );
        obj.field_u64("incumbents", self.incumbents as u64);
        obj.field_u64("cache_exact_hits", self.cache_exact_hits as u64);
        obj.field_u64("cache_near_hits", self.cache_near_hits as u64);
        obj.field_u64("cache_misses", self.cache_misses as u64);
        obj.field_u64("cache_evictions", self.cache_evictions as u64);
        obj.field_u64("job_panics", self.job_panics as u64);
        obj.field_u64("worker_respawns", self.worker_respawns as u64);
        obj.field_u64("live_pairs", self.live_pairs as u64);
        obj.field_u64("threads", self.threads as u64);
        obj.field_u64("jobs", self.jobs as u64);
        obj.field_f64("elapsed_s", self.elapsed.as_secs_f64());
        obj.finish()
    }
}

/// What a cross-query cache hands a near-hit solve to start from
/// ([`SolverConfig::root_seed`]). Everything here is *advisory*: the
/// engine re-validates each piece against the new instance before use,
/// so a stale or mismatched seed can cost nothing worse than a cold
/// root.
#[derive(Clone, Debug)]
pub struct RootSeed {
    /// Candidate warm incumbents — typically the cached solution's
    /// `weights` and `certified_weights`. Each is accepted only if it
    /// has the right dimension, satisfies the new instance's weight
    /// constraints, and lies in the new root box (the same gate as
    /// [`SolverConfig::warm_start`]).
    pub incumbents: Vec<Vec<f64>>,
    /// Root artifacts of the cached solve, reusable only when the new
    /// root region is provably contained in the cached one.
    pub artifacts: Option<Arc<RootArtifacts>>,
}

/// Facts captured at one solve's root expansion, packaged for reuse by a
/// later solve of a *near-identical* instance (same data, given ranking,
/// tolerances, objective, and position windows; different weight
/// constraints or initial box).
///
/// Soundness contract: the tightened box, probe witnesses, and decided
/// pairs all hold over the cached root region `R_cached` (simplex ∩
/// `region_lo..region_hi` ∩ `constraints`). A new solve may install them
/// only after proving its own root region is a subset of `R_cached` —
/// the engine checks per-coordinate box containment plus that every
/// cached constraint row is dominated over (an over-approximation of)
/// the new region. Witness rows are additionally re-gated at expansion
/// time against the *new* region (box + constraints), and the
/// changed-coordinates mask is force-saturated, disabling the untouched
/// shortcut — many rows may differ between the regions, not one.
#[derive(Clone, Debug)]
pub struct RootArtifacts {
    /// Weight dimension of the cached instance.
    pub m: usize,
    /// The cached instance's weight constraints (defining `R_cached`
    /// together with `region_lo`/`region_hi`).
    pub constraints: WeightConstraints,
    /// The cached solve's initial weight box.
    pub region_lo: Vec<f64>,
    /// See [`RootArtifacts::region_lo`].
    pub region_hi: Vec<f64>,
    /// Root-tightened box (superset of `R_cached`).
    pub lo: Vec<f64>,
    /// See [`RootArtifacts::lo`].
    pub hi: Vec<f64>,
    /// Flat `2m × m` probe optimizers, as in the engine's propagated
    /// facts: rows `0..m` are min-probe argmins, rows `m..2m` max-probe
    /// argmaxes.
    pub wit: Vec<f64>,
    /// Validity flags for the `2m` witness rows.
    pub wit_ok: Vec<bool>,
    /// Pairs the cached root classification decided, stored by identity
    /// `(tuple, slot, side)` rather than reduced-system index — pair
    /// indices are a property of one reduction, identities are not.
    pub decided: Vec<(usize, usize, bool)>,
    /// The cached root expansion's optimal LP basis. Always sound to
    /// offer: [`rankhow_lp::IncrementalLp::load`] installs it onto the
    /// *new* region's tableau and restores feasibility by dual simplex
    /// (the push-row delta machinery), falling back to a cold phase 1 on
    /// any mismatch.
    pub basis: Option<Arc<BasisSnapshot>>,
}

/// How a job (or blocking solve) terminated. Everything except
/// [`SolveStatus::Optimal`] means the returned solution is the
/// best-so-far incumbent of a truncated search ("bounded"), not a
/// proved optimum.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveStatus {
    /// Optimality proved: an error-0 incumbent was found, or the search
    /// tree was exhausted (every node expanded or soundly pruned).
    Optimal,
    /// Stopped by [`SolverConfig::node_limit`].
    NodeLimit,
    /// Stopped by [`SolverConfig::time_limit`] or a job deadline.
    TimeLimit,
    /// Cooperatively cancelled (scheduler jobs only).
    Cancelled,
    /// Shed by admission control before any work was done (router-level
    /// load shedding: the target run queue was at capacity). A rejected
    /// solution carries *no* incumbent — see [`Solution::rejected`] —
    /// and the query can simply be resubmitted.
    Rejected,
    /// The job's step panicked; a worker caught the unwind and finalized
    /// the job with whatever incumbent the search had found so far
    /// (possibly none — `error` may still be the `u64::MAX` sentinel).
    /// Sibling jobs are untouched and joiners are woken normally; the
    /// router's retry layer (`rankhow_router::RetryPolicy`) may
    /// transparently re-admit the query before a joiner ever sees this
    /// status.
    Failed,
}

impl SolveStatus {
    /// Whether the solution is a budget-truncated best-so-far rather
    /// than a proved optimum.
    pub fn is_bounded(self) -> bool {
        self != SolveStatus::Optimal
    }
}

/// A solved OPT instance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The synthesized weight vector (on the simplex, constraints
    /// satisfied).
    pub weights: Vec<f64>,
    /// Its objective value — Definition 3 position error for the default
    /// [`ErrorMeasure::Position`](rankhow_ranking::ErrorMeasure), the
    /// configured measure otherwise.
    pub error: u64,
    /// Whether optimality was proved (false when a node or time limit
    /// was hit).
    ///
    /// The proof covers the ε1/ε2-**certified** weight space — the same
    /// space the paper's Equation (2) MILP searches. Weight vectors with
    /// a pair score difference strictly inside the `(ε2, ε1)` safety gap
    /// are excluded from the proof, mirroring the false-negative caveat
    /// of Section V-A (choosing τ̂ too large "eliminates the range …
    /// from the solution space"). The *incumbent* itself may come from
    /// that band (sampling evaluates true Definition 2 error), so the
    /// reported solution can be strictly better than the certified
    /// optimum; see [`crate::verify::gap_band_pairs`].
    pub optimal: bool,
    /// How the search terminated — distinguishes a proved optimum from
    /// the specific budget (node limit, time limit/deadline,
    /// cancellation) that truncated it. `optimal` is equivalent to
    /// `status == SolveStatus::Optimal`.
    pub status: SolveStatus,
    /// Whether `weights` itself lies in the certified space — no pair
    /// score difference strictly inside the `(ε2, ε1)` gap band
    /// ([`crate::verify::relies_on_gap_band`]). When `true` and `optimal`
    /// is set, `error` *is* the certified optimum; when `false`, the
    /// sampled incumbent beat every certified point the proof covers.
    pub certified: bool,
    /// Error of the best **certified** incumbent the search sampled
    /// (`u64::MAX` when every sampled point relied on the gap band).
    /// Always ≥ `error`; together they bracket the certified-space
    /// optimum of a proved solve: `error ≤ certified optimum ≤
    /// certified_error`. Two exhaustive searches of the same instance
    /// may report different `error`s (band incumbents are
    /// interleaving-dependent) but each one's `error` is a lower bound
    /// on the *other*'s `certified_error` — the cross-check the serve
    /// suite pins instead of exact equality.
    pub certified_error: u64,
    /// The certified incumbent realizing `certified_error` (empty when
    /// none was found).
    pub certified_weights: Vec<f64>,
    /// Search statistics.
    pub stats: SolverStats,
}

impl Solution {
    /// The solution of a query shed by admission control
    /// ([`SolveStatus::Rejected`]): no search ever ran, so there is no
    /// incumbent. `weights` is empty and `error` is the `u64::MAX`
    /// "no incumbent" sentinel (the same value the engine uses
    /// internally before the first feasible point) — check
    /// [`Solution::status`] before interpreting either field.
    pub fn rejected() -> Solution {
        Solution {
            weights: Vec::new(),
            error: u64::MAX,
            optimal: false,
            status: SolveStatus::Rejected,
            certified: false,
            certified_error: u64::MAX,
            certified_weights: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// The solution of a job whose step panicked and found no incumbent
    /// first ([`SolveStatus::Failed`]): like [`Solution::rejected`],
    /// `weights` is empty and `error` is the `u64::MAX` sentinel. A
    /// failed job that *had* an incumbent keeps it instead — this
    /// constructor is only for the empty case (panic before the first
    /// feasible point, or a pool with no live workers left).
    pub fn failed() -> Solution {
        let mut sol = Solution::rejected();
        sol.status = SolveStatus::Failed;
        sol.stats.jobs = 1;
        sol
    }
}

/// Solver failures.
#[derive(Clone, Debug)]
pub enum SolverError {
    /// The weight predicate (plus box) admits no weight vector.
    Infeasible,
    /// The underlying LP solver failed numerically.
    Lp(SolveError),
    /// The solver does not encode position-window constraints (only the
    /// specialized [`RankHow`] branch-and-bound does).
    PositionsUnsupported,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "weight constraints are infeasible"),
            SolverError::Lp(e) => write!(f, "lp failure: {e}"),
            SolverError::PositionsUnsupported => {
                write!(f, "position constraints are not supported by this solver")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl From<SolveError> for SolverError {
    fn from(e: SolveError) -> Self {
        SolverError::Lp(e)
    }
}

/// The RankHow exact solver.
#[derive(Clone, Debug, Default)]
pub struct RankHow {
    config: SolverConfig,
}

impl RankHow {
    /// Solver with default configuration.
    pub fn new() -> Self {
        RankHow::default()
    }

    /// Solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        RankHow { config }
    }

    /// Solve OPT exactly (or to the configured limits).
    pub fn solve(&self, problem: &OptProblem) -> Result<Solution, SolverError> {
        engine::solve(problem, &self.config)
    }
}

#[cfg(test)]
mod tests;
