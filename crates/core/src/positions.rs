//! Position-range constraints (Example 1's second constraint family).
//!
//! Unlike weight constraints (half-spaces in weight space), these
//! constrain the *outcome*: the synthesized function's rank for selected
//! tuples must fall in an allowed interval. Example 1 lists three
//! instances: "no top-10 player should be placed more than 2 positions
//! higher or lower", "the number-1 player must be in position 1", and
//! "a player ranked i-th must be ranked in range ⌊0.9·i⌋ to ⌈1.1·i⌉".
//!
//! The MILP expresses these as linear constraints over the indicator
//! variables (footnote 2 of the paper); the specialized solver enforces
//! them by pruning nodes whose attainable-rank interval misses the
//! allowed window and by rejecting incumbents that violate them.

use rankhow_ranking::GivenRanking;
use std::collections::BTreeMap;

/// Snap values a hair away from an integer onto it (product round-off
/// protection for the band arithmetic).
fn round_guard(x: f64) -> f64 {
    if (x - x.round()).abs() < 1e-9 {
        x.round()
    } else {
        x
    }
}

/// Allowed rank intervals per tuple index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PositionConstraints {
    allowed: BTreeMap<usize, (u32, u32)>,
}

impl PositionConstraints {
    /// No constraints.
    pub fn none() -> Self {
        PositionConstraints::default()
    }

    /// Whether no constraints are registered.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }

    /// Number of constrained tuples.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// Require tuple `t` to land exactly at rank `pos`
    /// ("Nikola Jokić must be in position 1").
    pub fn pin(mut self, tuple: usize, pos: u32) -> Self {
        assert!(pos >= 1);
        self.allowed.insert(tuple, (pos, pos));
        self
    }

    /// Require tuple `t` to land in `[lo, hi]`.
    pub fn range(mut self, tuple: usize, lo: u32, hi: u32) -> Self {
        assert!(1 <= lo && lo <= hi, "invalid rank range");
        self.allowed.insert(tuple, (lo, hi));
        self
    }

    /// Every ranked tuple may move at most `d` positions from its given
    /// position ("no top-10 player more than 2 positions off").
    pub fn max_displacement(mut self, given: &GivenRanking, d: u32) -> Self {
        for &t in given.top_k() {
            let pi = given.position(t).unwrap();
            self.allowed
                .insert(t, (pi.saturating_sub(d).max(1), pi + d));
        }
        self
    }

    /// Every ranked tuple must stay within a relative band
    /// `[⌊lo_frac·π⌋, ⌈hi_frac·π⌉]` of its given position (Example 1's
    /// `⌊0.9·i⌋..⌈1.1·i⌉`).
    pub fn relative_band(mut self, given: &GivenRanking, lo_frac: f64, hi_frac: f64) -> Self {
        assert!(lo_frac <= 1.0 && hi_frac >= 1.0, "band must contain π");
        for &t in given.top_k() {
            let pi = given.position(t).unwrap() as f64;
            // Nudge before floor/ceil so 50·1.1 = 55.000000000000007
            // still yields the mathematical ⌈55⌉ = 55.
            let lo = round_guard(pi * lo_frac).floor().max(1.0) as u32;
            let hi = round_guard(pi * hi_frac).ceil() as u32;
            self.allowed.insert(t, (lo, hi));
        }
        self
    }

    /// Allowed interval of a tuple (None = unconstrained).
    pub fn interval(&self, tuple: usize) -> Option<(u32, u32)> {
        self.allowed.get(&tuple).copied()
    }

    /// Iterate `(tuple, (lo, hi))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, (u32, u32))> + '_ {
        self.allowed.iter().map(|(&t, &iv)| (t, iv))
    }

    /// Whether a realized rank assignment satisfies every constraint.
    /// `rank_of(t)` must return the competition rank of tuple `t`.
    pub fn satisfied(&self, mut rank_of: impl FnMut(usize) -> u32) -> bool {
        self.allowed.iter().all(|(&t, &(lo, hi))| {
            let r = rank_of(t);
            lo <= r && r <= hi
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn given() -> GivenRanking {
        GivenRanking::from_positions(vec![Some(1), Some(2), Some(3), None]).unwrap()
    }

    #[test]
    fn builder_forms() {
        let pc = PositionConstraints::none().pin(0, 1).range(1, 1, 3);
        assert_eq!(pc.len(), 2);
        assert_eq!(pc.interval(0), Some((1, 1)));
        assert_eq!(pc.interval(1), Some((1, 3)));
        assert_eq!(pc.interval(2), None);
    }

    #[test]
    fn max_displacement_windows() {
        let pc = PositionConstraints::none().max_displacement(&given(), 2);
        assert_eq!(pc.interval(0), Some((1, 3)));
        assert_eq!(pc.interval(1), Some((1, 4)));
        assert_eq!(pc.interval(2), Some((1, 5)));
        assert_eq!(pc.interval(3), None, "⊥ tuples unconstrained");
    }

    #[test]
    fn relative_band_windows() {
        let g = GivenRanking::from_positions((1..=100).map(|p| Some(p as u32)).collect()).unwrap();
        let pc = PositionConstraints::none().relative_band(&g, 0.9, 1.1);
        // Tuple at position 50: [45, 55]; position 1: [1, 2] (ceil 1.1).
        assert_eq!(pc.interval(49), Some((45, 55)));
        assert_eq!(pc.interval(0), Some((1, 2)));
    }

    #[test]
    fn satisfaction_check() {
        let pc = PositionConstraints::none().pin(0, 1).range(1, 2, 3);
        assert!(pc.satisfied(|t| if t == 0 { 1 } else { 2 }));
        assert!(!pc.satisfied(|t| if t == 0 { 2 } else { 2 }));
        assert!(!pc.satisfied(|t| if t == 0 { 1 } else { 4 }));
    }

    #[test]
    #[should_panic(expected = "invalid rank range")]
    fn range_validation() {
        let _ = PositionConstraints::none().range(0, 3, 2);
    }
}
