//! Deterministic fault injection for the serving stack's recovery paths
//! (compiled only under the `fault-inject` cargo feature; the default
//! build carries none of this).
//!
//! A [`FaultPlan`] rides a job's `SolverConfig`
//! ([`SolverConfig::faults`](crate::SolverConfig)) and triggers failures
//! at engine-defined points:
//!
//! - **panic at the Nth step** ([`FaultPlan::panic_at`]) — exercises the
//!   scheduler's `catch_unwind` isolation: the job must finalize with
//!   `SolveStatus::Failed`, siblings untouched, joiners never hung;
//! - **worker death at the Nth step** ([`FaultPlan::kill_worker_at`]) —
//!   the panic payload is [`WorkerDeath`], which the scheduler re-raises
//!   after failing the job so the *thread* dies too, exercising the
//!   supervisor's respawn path;
//! - **step stall** ([`FaultPlan::stall_at`]) — a worker sleeps inside a
//!   step, exercising deadline/time-limit recovery around a wedged
//!   slice;
//! - **forced root LP verdicts** ([`FaultPlan::root_lp`]) — the root
//!   feasibility solve reports `Infeasible` or an LP iteration limit
//!   without running, exercising clean `Err` delivery;
//! - **cache-seed rejection** ([`FaultPlan::reject_root_seed`]) — a
//!   cross-query near-hit's root artifacts are refused as if the
//!   containment re-proof failed, exercising the cold-root degradation.
//!
//! Every trigger fires **exactly once** per plan (atomic claim flags),
//! so a router retry of the failed job — which re-runs the *same*
//! config, hence the same `Arc<FaultPlan>` — deterministically
//! succeeds. [`FaultPlan::seeded`] derives a reproducible plan from a
//! `u64`, which is what the chaos proptests randomize over.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Panic payload of an injected plain panic ([`FaultPlan::panic_at`]).
/// Tests install [`silence_injected_panics`] so these don't spam
/// stderr; the scheduler treats them like any other job panic.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic;

/// Panic payload of an injected *worker death*
/// ([`FaultPlan::kill_worker_at`]): after failing the job, the
/// scheduler re-raises this payload so the worker thread itself unwinds
/// and the pool supervisor must respawn it.
#[derive(Debug, Clone, Copy)]
pub struct WorkerDeath;

/// A forced verdict for the root feasibility LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpFault {
    /// Report the root region as infeasible.
    Infeasible,
    /// Report a simplex iteration-limit failure.
    IterationLimit,
}

/// A deterministic, trigger-once fault schedule for one job (see the
/// module docs). Cheap to share: the scheduler clones the `Arc`, never
/// the plan.
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_at: Option<u64>,
    kill_at: Option<u64>,
    stall: Option<(u64, u64)>,
    root_lp: Option<LpFault>,
    reject_seed: bool,
    steps: AtomicU64,
    panic_fired: AtomicBool,
    kill_fired: AtomicBool,
    stall_fired: AtomicBool,
    root_lp_fired: AtomicBool,
    seed_fired: AtomicBool,
}

impl FaultPlan {
    /// An empty plan (no faults). Compose with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic (payload [`InjectedPanic`]) on the `step`-th engine step of
    /// the job (1-based; fires once, at the first step ≥ `step`).
    pub fn panic_at(mut self, step: u64) -> Self {
        self.panic_at = Some(step.max(1));
        self
    }

    /// Panic with [`WorkerDeath`] on the `step`-th engine step: the
    /// scheduler fails the job *and* lets the worker thread die.
    pub fn kill_worker_at(mut self, step: u64) -> Self {
        self.kill_at = Some(step.max(1));
        self
    }

    /// Sleep `millis` inside the `step`-th engine step (fires once) —
    /// an artificial stall for deadline-recovery tests.
    pub fn stall_at(mut self, step: u64, millis: u64) -> Self {
        self.stall = Some((step.max(1), millis));
        self
    }

    /// Force the root feasibility LP's verdict instead of solving it.
    pub fn root_lp(mut self, fault: LpFault) -> Self {
        self.root_lp = Some(fault);
        self
    }

    /// Refuse a cross-query root seed's artifacts as if the containment
    /// re-proof failed (the solve degrades to a cold root).
    pub fn reject_root_seed(mut self) -> Self {
        self.reject_seed = true;
        self
    }

    /// A reproducible plan derived from `seed`: roughly 20% of seeds
    /// panic at a small step, ~7% kill their worker, ~7% stall, ~7%
    /// force a root-LP verdict; the rest return `None` (no faults).
    /// Same seed, same plan — the chaos proptests randomize only this.
    pub fn seeded(seed: u64) -> Option<FaultPlan> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let roll = next() % 100;
        let step = 1 + next() % 4;
        Some(match roll {
            0..=19 => FaultPlan::new().panic_at(step),
            20..=26 => FaultPlan::new().kill_worker_at(step),
            27..=33 => FaultPlan::new().stall_at(step, 1 + next() % 5),
            34..=40 => FaultPlan::new().root_lp(if next() % 2 == 0 {
                LpFault::Infeasible
            } else {
                LpFault::IterationLimit
            }),
            _ => return None,
        })
    }

    /// Whether this plan injects a panic or worker death at some step —
    /// i.e. whether the job is expected to finalize `Failed` on its
    /// first (pre-retry) attempt.
    pub fn fails_job(&self) -> bool {
        self.panic_at.is_some() || self.kill_at.is_some()
    }

    /// Whether this plan kills a worker thread (the [`WorkerDeath`]
    /// payload) — i.e. whether the pool supervisor is expected to burn
    /// one respawn on it.
    pub fn kills_worker(&self) -> bool {
        self.kill_at.is_some()
    }

    /// Whether this plan forces a root-LP verdict — i.e. whether the
    /// job is expected to deliver a clean `Err` instead of a solution.
    pub fn forces_root_lp(&self) -> bool {
        self.root_lp.is_some()
    }

    /// Engine hook: called at the top of every `SolveJob::step`. May
    /// sleep (stall), panic with [`InjectedPanic`], or panic with
    /// [`WorkerDeath`] — each at most once per plan.
    pub fn on_step(&self) {
        let step = self.steps.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some((at, millis)) = self.stall {
            if step >= at && !self.stall_fired.swap(true, Ordering::AcqRel) {
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        if let Some(at) = self.kill_at {
            if step >= at && !self.kill_fired.swap(true, Ordering::AcqRel) {
                std::panic::panic_any(WorkerDeath);
            }
        }
        if let Some(at) = self.panic_at {
            if step >= at && !self.panic_fired.swap(true, Ordering::AcqRel) {
                std::panic::panic_any(InjectedPanic);
            }
        }
    }

    /// Engine hook: the forced root-LP verdict, if one is due (fires
    /// once).
    pub fn take_root_lp(&self) -> Option<LpFault> {
        let fault = self.root_lp?;
        (!self.root_lp_fired.swap(true, Ordering::AcqRel)).then_some(fault)
    }

    /// Engine hook: whether to refuse the root seed's artifacts (fires
    /// once).
    pub fn take_reject_seed(&self) -> bool {
        self.reject_seed && !self.seed_fired.swap(true, Ordering::AcqRel)
    }
}

/// Install (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for *injected* payloads
/// ([`InjectedPanic`] / [`WorkerDeath`]) and chains to the previous
/// hook for everything else. Chaos tests call this so thousands of
/// deliberate panics don't drown real failures in the output.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().is::<InjectedPanic>() || info.payload().is::<WorkerDeath>();
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_exactly_once() {
        let plan = FaultPlan::new().panic_at(2).root_lp(LpFault::Infeasible);
        // Step 1: below the threshold, nothing fires.
        plan.on_step();
        // Step 2: the panic fires…
        assert!(std::panic::catch_unwind(|| plan.on_step()).is_err());
        // …and never again, even though step ≥ threshold stays true.
        plan.on_step();
        plan.on_step();
        assert_eq!(plan.take_root_lp(), Some(LpFault::Infeasible));
        assert_eq!(plan.take_root_lp(), None);
        assert!(plan.fails_job());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.panic_at, b.panic_at);
                    assert_eq!(a.kill_at, b.kill_at);
                    assert_eq!(a.stall, b.stall);
                    assert_eq!(a.root_lp, b.root_lp);
                }
                _ => panic!("seed {seed} produced divergent plans"),
            }
        }
        // The distribution actually contains faults (and non-faults).
        let plans: Vec<_> = (0..100).map(FaultPlan::seeded).collect();
        assert!(plans.iter().any(|p| p.is_some()));
        assert!(plans.iter().any(|p| p.is_none()));
    }
}
