//! # RankHow core: exact OPT solving and symbolic gradient descent
//!
//! This crate implements the paper's primary contribution:
//!
//! - [`OptProblem`] — the OPT optimization problem (Definition 4): given a
//!   relation, a ranking `π`, and linear weight constraints `P`, find the
//!   simplex weight vector minimizing position-based error;
//! - [`RankHow`] — the exact solver. The paper feeds Equation (2) to
//!   Gurobi; here the same formulation is solved two ways: a *generic*
//!   big-M MILP ([`formulation::build_milp`], solved by `rankhow-milp`)
//!   and a *specialized* best-first branch-and-bound over indicator
//!   hyperplanes ([`RankHow::solve`]) that supplies the holistic-solver
//!   ingredients the paper credits for beating the PTIME TREE algorithm
//!   (bounding via Section IV-B intervals, interior-point incumbents,
//!   cross-branch pruning);
//! - [`SymGd`] — symbolic gradient descent (Algorithms 1 and 2): exact
//!   local optimization within a cell around a seed, indicator
//!   constant-folding making each cell solve cheap, recentering until a
//!   local optimum, adaptive cell growth;
//! - [`SatSearch`] — the paper's Section III-A SMT alternative: binary
//!   search over satisfiability probes of the same encoding;
//! - [`seeding`] — the two seed strategies of Section IV-B;
//! - [`verify`] — exact-arithmetic solution verification and the τ
//!   binary-search heuristic of Section V-A;
//! - [`extensions`] — Example 1's constraint vocabulary (pairwise orders,
//!   fixed positions, rank windows);
//! - alternative objectives ([`ErrorMeasure`]) — Kendall tau and the
//!   top-weighted displacement variant, optimized exactly by the same
//!   solvers (the Section II "other error measures" generalization).

#![warn(missing_docs)]

mod engine;
pub mod extensions;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod formulation;
mod positions;
mod problem;
mod satsearch;
pub mod seeding;
mod symgd;
pub mod verify;

pub use engine::{
    default_threads, EngineScratch, RankHow, RootArtifacts, RootSeed, SearchOrder, Solution,
    SolveJob, SolveStatus, SolverConfig, SolverError, SolverStats, StepOutcome,
};
pub use positions::PositionConstraints;
pub use problem::{OptProblem, ProblemError, WeightConstraints};
pub use rankhow_ranking::{ErrorMeasure, Tolerances};
pub use satsearch::{ProbeRecord, SatSearch, SatSearchConfig, SatSearchResult};
pub use symgd::{CellScheduler, SymGd, SymGdConfig, SymGdResult, SymGdStep};
