//! Satisfiability binary search — the paper's SMT alternative.
//!
//! Section III-A: "SMT theorem provers like Z3 can be used if we convert
//! the optimization problem to a series of satisfiability problems,
//! performing binary search to find the smallest error value for which a
//! satisfying assignment can be found." This module implements exactly
//! that strategy over the Equation (2) encoding: each probe asks "is
//! there a weight vector with objective ≤ E?" as a *feasibility* MILP
//! (the objective expression becomes a constraint row), and a binary
//! search on `E` converges to the certified optimum.
//!
//! The probe solver is the same branch-and-bound as the literal MILP
//! path, configured with a relaxed optimality gap: a probe only needs
//! *any* integral point under the bound, not the best one — this mirrors
//! how an SMT solver answers SAT without optimizing. The search is exact
//! over the ε1/ε2-certified space, like the direct MILP; it exists to
//! quantify the paper's remark that holistic optimization beats a
//! sequence of isolated satisfiability questions (see the ablation
//! bench).

use crate::engine::SolverError;
use crate::formulation::{self, ReducedSystem};
use crate::OptProblem;
use rankhow_lp::Op;
use rankhow_milp::{BnbConfig, MilpStatus};
use rankhow_ranking::ErrorMeasure;
use std::time::{Duration, Instant};

/// Configuration for [`SatSearch`].
#[derive(Clone, Debug)]
pub struct SatSearchConfig {
    /// Per-probe branch-and-bound limits. The default uses a wide
    /// optimality gap (0.99): probes answer "SAT/UNSAT", they do not
    /// optimize.
    pub probe: BnbConfig,
    /// Wall-clock limit across all probes.
    pub time_limit: Option<Duration>,
}

impl Default for SatSearchConfig {
    fn default() -> Self {
        SatSearchConfig {
            probe: BnbConfig {
                // All objectives are integral: any incumbent within 0.99
                // of the bound already witnesses satisfiability.
                absolute_gap: 0.99,
                ..BnbConfig::default()
            },
            time_limit: None,
        }
    }
}

/// One probe of the binary search.
#[derive(Clone, Debug)]
pub struct ProbeRecord {
    /// The error bound `E` asked about.
    pub bound: u64,
    /// Whether a satisfying weight vector was found.
    pub sat: bool,
    /// Branch-and-bound nodes the probe spent.
    pub nodes: usize,
    /// Elapsed time of the probe.
    pub elapsed: Duration,
}

/// Result of a satisfiability binary search.
#[derive(Clone, Debug)]
pub struct SatSearchResult {
    /// Best weight vector found.
    pub weights: Vec<f64>,
    /// Its objective value (same measure as [`OptProblem::objective`]).
    pub error: u64,
    /// Whether the search proved the certified optimum (false when a
    /// limit interrupted it).
    pub optimal: bool,
    /// The probe trace, in execution order.
    pub probes: Vec<ProbeRecord>,
}

/// The binary-search solver. See the module docs.
///
/// # Example
/// ```
/// use rankhow_core::{OptProblem, SatSearch};
/// use rankhow_data::Dataset;
/// use rankhow_ranking::GivenRanking;
///
/// // Example 4 of the paper: a perfect function exists, so the search
/// // proves error 0.
/// let data = Dataset::from_rows(
///     vec!["A1".into(), "A2".into(), "A3".into()],
///     vec![vec![3.0, 2.0, 8.0], vec![4.0, 1.0, 15.0], vec![1.0, 1.0, 14.0]],
/// )
/// .unwrap();
/// let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
/// let problem = OptProblem::new(data, pi).unwrap();
///
/// let result = SatSearch::new().solve(&problem).unwrap();
/// assert_eq!(result.error, 0);
/// assert!(result.optimal);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SatSearch {
    config: SatSearchConfig,
}

impl SatSearch {
    /// Solver with default configuration.
    pub fn new() -> Self {
        SatSearch::default()
    }

    /// Solver with explicit configuration.
    pub fn with_config(config: SatSearchConfig) -> Self {
        SatSearch { config }
    }

    /// Find the smallest certified-feasible objective value by binary
    /// search on satisfiability probes.
    ///
    /// Position windows ([`OptProblem::positions`]) are not encoded by
    /// the generic Equation (2) MILP and therefore not supported here —
    /// use [`crate::RankHow`] for those.
    pub fn solve(&self, problem: &OptProblem) -> Result<SatSearchResult, SolverError> {
        if !problem.positions.is_empty() {
            return Err(SolverError::PositionsUnsupported);
        }
        let start = Instant::now();
        let sys = formulation::reduce_global(problem);

        // Initial incumbent: the uniform point if it satisfies P, else
        // the Chebyshev center of the constraint region.
        let m = problem.m();
        let uniform = vec![1.0 / m as f64; m];
        let seed = if problem.constraints.satisfied_by(&uniform) {
            uniform
        } else {
            self.constraint_center(problem)?
        };
        let mut best_w = seed.clone();
        let mut best_v = problem.objective_value(&seed);

        // Search window: certified values live in [0, best_v].
        let mut lo = 0u64;
        let mut hi = best_v;
        let mut probes = Vec::new();
        let mut proved = true;

        while lo < hi {
            if let Some(tl) = self.config.time_limit {
                if start.elapsed() >= tl {
                    proved = false;
                    break;
                }
            }
            let mid = lo + (hi - lo) / 2;
            let t0 = Instant::now();
            let outcome = self.probe(problem, &sys, mid)?;
            match outcome {
                Probe::Sat { weights, nodes } => {
                    let v = problem.objective_value(&weights);
                    probes.push(ProbeRecord {
                        bound: mid,
                        sat: true,
                        nodes,
                        elapsed: t0.elapsed(),
                    });
                    if v < best_v {
                        best_v = v;
                        best_w = weights;
                    }
                    // The witness can land below the probe bound; use
                    // the better of the two.
                    hi = mid.min(best_v);
                }
                Probe::Unsat { nodes } => {
                    probes.push(ProbeRecord {
                        bound: mid,
                        sat: false,
                        nodes,
                        elapsed: t0.elapsed(),
                    });
                    lo = mid + 1;
                }
                Probe::Limit { nodes } => {
                    probes.push(ProbeRecord {
                        bound: mid,
                        sat: false,
                        nodes,
                        elapsed: t0.elapsed(),
                    });
                    proved = false;
                    break;
                }
            }
        }

        Ok(SatSearchResult {
            weights: best_w,
            error: best_v,
            optimal: proved,
            probes,
        })
    }

    /// One satisfiability probe: Equation (2) constraints plus
    /// `objective expression ≤ bound`, solved as a wide-gap MILP.
    fn probe(
        &self,
        problem: &OptProblem,
        sys: &ReducedSystem,
        bound: u64,
    ) -> Result<Probe, SolverError> {
        let (mut milp, layout) = formulation::build_milp(problem, sys);
        let k = sys.top.len();
        let coefs: Vec<(rankhow_lp::VarId, f64)> = match problem.objective {
            ErrorMeasure::Position | ErrorMeasure::KendallTau => {
                layout.err.iter().map(|&v| (v, 1.0)).collect()
            }
            ErrorMeasure::TopWeighted => layout
                .err
                .iter()
                .enumerate()
                .map(|(slot, &v)| (v, (k as u64 - sys.target[slot] as u64 + 1) as f64))
                .collect(),
        };
        milp.add_constraint(&coefs, Op::Le, bound as f64 + 1e-6);
        let sol = milp
            .solve_with(&self.config.probe)
            .map_err(SolverError::Lp)?;
        match sol.status {
            MilpStatus::Optimal => Ok(Probe::Sat {
                weights: layout.w.iter().map(|&v| sol.x[v]).collect(),
                nodes: sol.stats.nodes_solved,
            }),
            MilpStatus::LimitReached if sol.has_incumbent => Ok(Probe::Sat {
                weights: layout.w.iter().map(|&v| sol.x[v]).collect(),
                nodes: sol.stats.nodes_solved,
            }),
            MilpStatus::Infeasible => Ok(Probe::Unsat {
                nodes: sol.stats.nodes_solved,
            }),
            _ => Ok(Probe::Limit {
                nodes: sol.stats.nodes_solved,
            }),
        }
    }

    /// A weight vector satisfying `P` (for the initial incumbent when
    /// the uniform point violates a constraint).
    fn constraint_center(&self, problem: &OptProblem) -> Result<Vec<f64>, SolverError> {
        use rankhow_lp::{chebyshev_center, Problem as Lp, Sense};
        let m = problem.m();
        let mut lp = Lp::new(Sense::Minimize);
        let w: Vec<_> = (0..m)
            .map(|j| lp.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
            .collect();
        let simplex: Vec<_> = w.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&simplex, Op::Eq, 1.0);
        problem.constraints.apply_to(&mut lp, &w);
        match chebyshev_center(&lp) {
            Ok(Some(c)) => Ok(c),
            Ok(None) => Err(SolverError::Infeasible),
            Err(e) => Err(SolverError::Lp(e)),
        }
    }
}

enum Probe {
    Sat { weights: Vec<f64>, nodes: usize },
    Unsat { nodes: usize },
    Limit { nodes: usize },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankHow, Tolerances, WeightConstraints};
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn problem_from(rows: Vec<Vec<f64>>, positions: Vec<Option<u32>>) -> OptProblem {
        let m = rows[0].len();
        let names = (0..m).map(|i| format!("A{i}")).collect();
        let data = Dataset::from_rows(names, rows).unwrap();
        let given = GivenRanking::from_positions(positions).unwrap();
        OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0)).unwrap()
    }

    #[test]
    fn example4_reaches_zero() {
        let p = problem_from(
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
            vec![Some(1), Some(2), None],
        );
        let res = SatSearch::new().solve(&p).unwrap();
        assert_eq!(res.error, 0);
        assert!(res.optimal);
        assert_eq!(p.objective_value(&res.weights), 0);
        // Zero is provable with a single SAT probe... or none, if the
        // seed already achieves it.
        assert!(res.probes.len() <= 2);
    }

    #[test]
    fn forced_error_found_with_unsat_probes() {
        // Identical ranked tuples: they always tie, optimum error is 1.
        let p = problem_from(
            vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]],
            vec![Some(1), Some(2), None],
        );
        let res = SatSearch::new().solve(&p).unwrap();
        assert_eq!(res.error, 1);
        assert!(res.optimal);
        // The search must have refuted E = 0.
        assert!(res.probes.iter().any(|pr| pr.bound == 0 && !pr.sat));
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![4.0, 2.0],
                vec![1.0, 5.0],
                vec![2.0, 4.0],
                vec![3.0, 3.0],
            ],
            vec![Some(1), Some(2), Some(3), None, None],
        );
        let bnb = RankHow::new().solve(&p).unwrap();
        let sat = SatSearch::new().solve(&p).unwrap();
        assert!(bnb.optimal && sat.optimal);
        // Both prove the certified optimum; the B&B may additionally
        // luck into a gap-band incumbent, never the reverse.
        assert!(
            bnb.error <= sat.error,
            "bnb {} vs sat {}",
            bnb.error,
            sat.error
        );
        if bnb.error < sat.error {
            assert!(crate::verify::relies_on_gap_band(&p, &bnb.weights));
        }
    }

    #[test]
    fn honors_weight_constraints() {
        let p = problem_from(
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
            vec![Some(1), Some(2), None],
        )
        .with_constraints(WeightConstraints::none().min_weight(0, 0.3))
        .unwrap();
        let res = SatSearch::new().solve(&p).unwrap();
        assert!(res.weights[0] >= 0.3 - 1e-6, "weights {:?}", res.weights);
        assert_eq!(res.error, p.objective_value(&res.weights));
    }

    #[test]
    fn infeasible_constraints_detected() {
        let p = problem_from(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![Some(1), Some(2)])
            .with_constraints(
                WeightConstraints::none()
                    .min_weight(0, 0.8)
                    .max_weight(0, 0.1),
            )
            .unwrap();
        assert!(matches!(
            SatSearch::new().solve(&p),
            Err(SolverError::Infeasible)
        ));
    }

    #[test]
    fn position_windows_rejected() {
        let p = problem_from(
            vec![vec![2.0, 1.0], vec![1.0, 2.0], vec![0.0, 0.0]],
            vec![Some(1), Some(2), None],
        )
        .with_positions(crate::PositionConstraints::none().pin(0, 1))
        .unwrap();
        assert!(matches!(
            SatSearch::new().solve(&p),
            Err(SolverError::PositionsUnsupported)
        ));
    }

    #[test]
    fn kendall_objective_supported() {
        let p = problem_from(
            vec![
                vec![2.0, 1.0],
                vec![1.0, 2.0],
                vec![9.0, 9.0],
                vec![8.0, 8.0],
            ],
            vec![Some(1), Some(2), None, None],
        )
        .with_objective(ErrorMeasure::KendallTau);
        let res = SatSearch::new().solve(&p).unwrap();
        assert_eq!(res.error, 0, "relative order of tuples 0,1 is free");
        assert!(res.optimal);
    }

    #[test]
    fn probe_trace_is_a_binary_search() {
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![1.0, 5.0],
                vec![4.0, 2.0],
                vec![2.0, 4.0],
            ],
            vec![Some(4), Some(3), Some(2), Some(1)],
        );
        let res = SatSearch::new().solve(&p).unwrap();
        assert!(res.optimal);
        // Bounds must be strictly bracketing: every UNSAT bound is below
        // the final error, every SAT bound at or above it.
        for pr in &res.probes {
            if pr.sat {
                assert!(
                    pr.bound >= res.error,
                    "SAT at {} < final {}",
                    pr.bound,
                    res.error
                );
            } else {
                assert!(
                    pr.bound < res.error,
                    "UNSAT at {} ≥ final {}",
                    pr.bound,
                    res.error
                );
            }
        }
    }

    #[test]
    fn time_limit_reports_not_optimal_or_finishes() {
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![1.0, 5.0],
                vec![4.0, 2.0],
                vec![2.0, 4.0],
            ],
            vec![Some(4), Some(3), Some(2), Some(1)],
        );
        let cfg = SatSearchConfig {
            time_limit: Some(Duration::from_nanos(1)),
            ..SatSearchConfig::default()
        };
        let res = SatSearch::with_config(cfg).solve(&p).unwrap();
        // With a 1 ns budget either the seed was already optimal (tiny
        // instances) or the search stops unproved — both must be sound.
        assert_eq!(res.error, p.objective_value(&res.weights));
    }
}
