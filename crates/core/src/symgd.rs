//! Symbolic gradient descent (paper Section IV, Algorithms 1 and 2).
//!
//! SYM-GD is "gradient descent on steroids": instead of stepping along a
//! gradient (the position-error landscape is piecewise constant — there
//! is no useful gradient), it finds the *true optimum within a cell* of
//! size `c` around the current point using the exact solver, then
//! recenters the cell on that optimum and repeats until a fixpoint.
//!
//! Why cells make the exact solve cheap (Section IV-A): the smaller the
//! cell, the fewer indicator hyperplanes intersect it; every
//! non-intersecting hyperplane's indicator constant-folds away
//! ([`crate::formulation::reduce_against_box`]), collapsing the MILP
//! toward a pure LP. In the extreme a cell crossed by no hyperplane is a
//! single arrangement cell with constant error.
//!
//! Algorithm 2 (adaptive) additionally doubles the cell whenever the
//! inner loop stalls in a local optimum, trading time for the chance to
//! escape — the paper uses it whenever a total timeout is given.

use crate::engine::{RankHow, Solution, SolverConfig, SolverError};
use crate::OptProblem;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where SYM-GD submits its cell solves.
///
/// The outer loop of Algorithms 1 and 2 is a *chain of jobs*: each cell
/// solve is an independent box-restricted OPT instance, warm-started
/// from the previous cell's optimum. Implementors decide how those jobs
/// run — `rankhow-serve`'s `Scheduler` multiplexes them over its shared
/// worker pool (so several SYM-GD chains and ad-hoc queries can share
/// one pool), while the built-in blocking path of [`SymGd::solve`] runs
/// each cell inline on [`RankHow`].
pub trait CellScheduler {
    /// Solve one cell-restricted job to completion (blocking).
    fn solve_cell(
        &self,
        problem: &Arc<OptProblem>,
        config: SolverConfig,
    ) -> Result<Solution, SolverError>;
}

/// SYM-GD configuration.
#[derive(Clone, Debug)]
pub struct SymGdConfig {
    /// Cell edge length `c ∈ (0, 2)` (paper default experiments use
    /// 0.1 for fixed-cell runs, 10⁻⁴ as the adaptive starting size).
    pub cell_size: f64,
    /// Algorithm 2: double the cell on stall instead of stopping.
    pub adaptive: bool,
    /// Total wall-clock budget `t_total` (Algorithm 2's outer loop; also
    /// honored by Algorithm 1).
    pub total_time: Option<Duration>,
    /// Hard cap on recentering iterations.
    pub max_iterations: usize,
    /// Node limit per cell solve.
    pub cell_node_limit: usize,
    /// Time limit per cell solve.
    pub cell_time_limit: Option<Duration>,
    /// Worker threads for each cell's branch-and-bound. Defaults to 1:
    /// cell solves are small and SYM-GD's outer loop is sequential, so
    /// oversubscribing every cell usually loses to the constant-folding
    /// savings. Raise it for large cells / coarse grids.
    pub threads: usize,
}

impl Default for SymGdConfig {
    fn default() -> Self {
        SymGdConfig {
            cell_size: 0.1,
            adaptive: false,
            total_time: None,
            max_iterations: 60,
            cell_node_limit: 20_000,
            // Bound each cell solve: the *last* iteration of Algorithm 1
            // always runs to exhaustion (it must fail to improve before
            // the loop stops), so an unbounded exact solve would burn
            // the whole node budget proving local optimality.
            cell_time_limit: Some(Duration::from_secs(10)),
            threads: 1,
        }
    }
}

impl SymGdConfig {
    /// The paper's adaptive setup: starting cell 10⁻⁴, doubling, with a
    /// total timeout.
    pub fn adaptive(total_time: Duration) -> Self {
        SymGdConfig {
            cell_size: 1e-4,
            adaptive: true,
            total_time: Some(total_time),
            ..SymGdConfig::default()
        }
    }

    /// Solver configuration for one cell solve: restricted to the cell
    /// box, warm-started from the current center (i.e. the previous
    /// cell's optimum — the job-chain handoff), with the per-cell
    /// budgets applied.
    pub fn cell_config(&self, lo: Vec<f64>, hi: Vec<f64>, warm: Vec<f64>) -> SolverConfig {
        SolverConfig {
            initial_box: Some((lo, hi)),
            warm_start: Some(warm),
            node_limit: self.cell_node_limit,
            time_limit: self.cell_time_limit,
            threads: self.threads,
            ..SolverConfig::default()
        }
    }
}

/// One recentering step of the trace.
#[derive(Clone, Debug)]
pub struct SymGdStep {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Error after the step.
    pub error: u64,
    /// Cell size used.
    pub cell_size: f64,
    /// Elapsed time since the run started.
    pub elapsed: Duration,
}

/// Result of a SYM-GD run.
#[derive(Clone, Debug)]
pub struct SymGdResult {
    /// Final weight vector.
    pub weights: Vec<f64>,
    /// Its position error.
    pub error: u64,
    /// Cell solves performed.
    pub iterations: usize,
    /// Times the adaptive loop doubled the cell.
    pub cell_growths: usize,
    /// Per-iteration trace.
    pub trace: Vec<SymGdStep>,
}

/// The SYM-GD optimizer.
///
/// # Example
/// ```
/// use rankhow_core::{OptProblem, SymGd, SymGdConfig};
/// use rankhow_data::Dataset;
/// use rankhow_ranking::GivenRanking;
///
/// let data = Dataset::from_rows(
///     vec!["A1".into(), "A2".into(), "A3".into()],
///     vec![vec![3.0, 2.0, 8.0], vec![4.0, 1.0, 15.0], vec![1.0, 1.0, 14.0]],
/// )
/// .unwrap();
/// let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
/// let problem = OptProblem::new(data, pi).unwrap();
///
/// // Start from the uniform point; a cell of size 0.5 is generous
/// // enough to reach the zero-error region of Example 5 in one hop.
/// let seed = vec![1.0 / 3.0; 3];
/// let result = SymGd::with_config(SymGdConfig {
///     cell_size: 0.5,
///     ..SymGdConfig::default()
/// })
/// .solve(&problem, &seed)
/// .unwrap();
/// assert_eq!(result.error, 0);
/// // The per-iteration trace is monotone non-increasing.
/// assert!(result.trace.windows(2).all(|w| w[1].error <= w[0].error));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymGd {
    config: SymGdConfig,
}

impl SymGd {
    /// Optimizer with default configuration (Algorithm 1, cell 0.1).
    pub fn new() -> Self {
        SymGd::default()
    }

    /// Optimizer with explicit configuration.
    pub fn with_config(config: SymGdConfig) -> Self {
        SymGd { config }
    }

    /// Run from a seed point (see [`crate::seeding`] for strategies),
    /// solving each cell inline on the blocking [`RankHow`] solver.
    pub fn solve(&self, problem: &OptProblem, seed: &[f64]) -> Result<SymGdResult, SolverError> {
        self.drive(problem, seed, |config| {
            RankHow::with_config(config).solve(problem)
        })
    }

    /// Run from a seed point, submitting every cell solve as a job on a
    /// caller-provided scheduler. Cells are chained: each is
    /// warm-started from the previous optimum via
    /// [`SolverConfig::warm_start`], and `problem` is shared with the
    /// scheduler by `Arc` clone (no dataset copies per cell).
    ///
    /// With a single-worker scheduler this path is step-for-step
    /// identical to [`SymGd::solve`] at `threads: 1` — same trace, same
    /// weights — while a wider pool lets the cell jobs (and any other
    /// concurrent queries) share its workers.
    pub fn solve_on<S: CellScheduler>(
        &self,
        scheduler: &S,
        problem: &Arc<OptProblem>,
        seed: &[f64],
    ) -> Result<SymGdResult, SolverError> {
        self.drive(problem, seed, |config| {
            scheduler.solve_cell(problem, config)
        })
    }

    /// The recentering loop shared by the blocking and scheduler paths;
    /// `solve_cell` runs one configured cell job to completion.
    fn drive(
        &self,
        problem: &OptProblem,
        seed: &[f64],
        mut solve_cell: impl FnMut(SolverConfig) -> Result<Solution, SolverError>,
    ) -> Result<SymGdResult, SolverError> {
        assert_eq!(seed.len(), problem.m(), "seed dimensionality");
        let start = Instant::now();
        let mut w: Vec<f64> = rankhow_baselines::project_to_simplex(seed);
        // A seed violating position constraints starts from "no solution
        // yet" — the first feasible cell optimum replaces it.
        let mut err = problem.evaluate_constrained(&w).unwrap_or(u64::MAX);
        let mut c = self.config.cell_size.clamp(1e-9, 2.0);
        let mut iterations = 0usize;
        let mut cell_growths = 0usize;
        let mut trace = Vec::new();

        'outer: loop {
            // Inner loop: Algorithm 1 — recenter until no improvement.
            loop {
                if iterations >= self.config.max_iterations {
                    break 'outer;
                }
                if let Some(tt) = self.config.total_time {
                    if start.elapsed() >= tt {
                        break 'outer;
                    }
                }
                iterations += 1;
                let (lo, hi) = cell_around(&w, c);
                let sol = match solve_cell(self.config.cell_config(lo, hi, w.clone())) {
                    Ok(s) => s,
                    // Cell ∩ constraints empty: treat as a stall so the
                    // adaptive loop can grow past it.
                    Err(SolverError::Infeasible) => break,
                    Err(e) => return Err(e),
                };
                trace.push(SymGdStep {
                    iteration: iterations,
                    error: sol.error.min(err),
                    cell_size: c,
                    elapsed: start.elapsed(),
                });
                if sol.error < err {
                    err = sol.error;
                    w = sol.weights;
                    if err == 0 {
                        break 'outer;
                    }
                } else {
                    break; // fixpoint within this cell size
                }
            }
            // Algorithm 2: grow the cell; Algorithm 1: stop.
            if !self.config.adaptive {
                break;
            }
            if c >= 2.0 {
                break;
            }
            c = (c * 2.0).min(2.0);
            cell_growths += 1;
        }

        if err == u64::MAX {
            // Every visited cell was infeasible under the constraints.
            return Err(SolverError::Infeasible);
        }
        Ok(SymGdResult {
            weights: w,
            error: err,
            iterations,
            cell_growths,
            trace,
        })
    }
}

/// The cell of edge `c` around `w`, clipped to `[0, 1]^m`
/// (`max(w_i − c/2, 0) ≤ w_i ≤ min(w_i + c/2, 1)` — Section IV-A).
fn cell_around(w: &[f64], c: f64) -> (Vec<f64>, Vec<f64>) {
    let lo = w.iter().map(|&x| (x - c / 2.0).max(0.0)).collect();
    let hi = w.iter().map(|&x| (x + c / 2.0).min(1.0)).collect();
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn linear_instance(n: usize, hidden: &[f64], k: usize) -> OptProblem {
        let m = hidden.len();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| (((i * (7 + 3 * j) + j) % n) as f64) / n as f64)
                    .collect()
            })
            .collect();
        let scores: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(hidden).map(|(a, w)| a * w).sum())
            .collect();
        let names = (0..m).map(|j| format!("A{j}")).collect();
        let data = Dataset::from_rows(names, rows).unwrap();
        let given = GivenRanking::from_scores(&scores, k, 0.0).unwrap();
        OptProblem::new(data, given).unwrap()
    }

    #[test]
    fn cell_clipping() {
        let (lo, hi) = cell_around(&[0.05, 0.5, 0.98], 0.2);
        let expect_lo = [0.0, 0.4, 0.88];
        let expect_hi = [0.15, 0.6, 1.0];
        for j in 0..3 {
            assert!((lo[j] - expect_lo[j]).abs() < 1e-12, "{lo:?}");
            assert!((hi[j] - expect_hi[j]).abs() < 1e-12, "{hi:?}");
        }
    }

    #[test]
    fn error_is_monotone_nonincreasing() {
        let p = linear_instance(30, &[0.6, 0.3, 0.1], 8);
        let seed = vec![1.0 / 3.0; 3];
        let res = SymGd::new().solve(&p, &seed).unwrap();
        let mut prev = u64::MAX;
        for step in &res.trace {
            assert!(step.error <= prev, "monotone trace");
            prev = step.error;
        }
        assert_eq!(res.error, prev.min(res.error));
    }

    #[test]
    fn recovers_hidden_linear_function_near_seed() {
        let p = linear_instance(24, &[0.55, 0.35, 0.1], 6);
        // Seed near the hidden weights: small cells suffice.
        let res = SymGd::new().solve(&p, &[0.5, 0.4, 0.1]).unwrap();
        assert_eq!(res.error, 0, "weights {:?}", res.weights);
    }

    #[test]
    fn adaptive_escapes_where_fixed_cell_stalls() {
        let p = linear_instance(24, &[0.8, 0.15, 0.05], 6);
        // Seed far from the hidden weights with a tiny cell.
        let bad_seed = vec![0.05, 0.15, 0.8];
        let fixed = SymGd::with_config(SymGdConfig {
            cell_size: 0.02,
            adaptive: false,
            max_iterations: 12,
            ..SymGdConfig::default()
        })
        .solve(&p, &bad_seed)
        .unwrap();
        let adaptive = SymGd::with_config(SymGdConfig {
            cell_size: 0.02,
            adaptive: true,
            total_time: Some(Duration::from_secs(20)),
            max_iterations: 40,
            ..SymGdConfig::default()
        })
        .solve(&p, &bad_seed)
        .unwrap();
        assert!(adaptive.error <= fixed.error);
        if fixed.error > 0 {
            assert!(adaptive.cell_growths > 0, "adaptive must have grown");
        }
    }

    #[test]
    fn result_weights_live_on_simplex() {
        let p = linear_instance(20, &[0.4, 0.6], 5);
        let res = SymGd::new().solve(&p, &[0.9, 0.1]).unwrap();
        let sum: f64 = res.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(res.weights.iter().all(|&x| x >= -1e-9));
    }

    #[test]
    fn iteration_cap_respected() {
        let p = linear_instance(30, &[0.5, 0.3, 0.2], 8);
        let res = SymGd::with_config(SymGdConfig {
            max_iterations: 3,
            cell_size: 0.01,
            adaptive: true,
            total_time: Some(Duration::from_secs(60)),
            ..SymGdConfig::default()
        })
        .solve(&p, &[1.0, 0.0, 0.0])
        .unwrap();
        assert!(res.iterations <= 3);
    }

    #[test]
    fn seed_off_simplex_is_projected() {
        let p = linear_instance(15, &[0.5, 0.5], 4);
        let res = SymGd::new().solve(&p, &[3.0, -1.0]).unwrap();
        let sum: f64 = res.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}
