//! Seed-point strategies for SYM-GD (paper Section IV-B).
//!
//! Two strategies, as in the paper:
//! 1. a fast heuristic fit — ordinal regression (the default;
//!    "especially ordinal regression often identified good weight
//!    vectors that SYM-GD was able to improve") or linear regression;
//! 2. a grid scan that lower-bounds the error of each cell via indicator
//!    interval analysis and seeds at the most promising cell's center.

use crate::formulation;
use crate::OptProblem;
use rankhow_baselines::ordinal_regression::{self, OrdinalConfig};
use rankhow_baselines::{linear_regression, project_to_simplex, Instance};

/// Ordinal-regression seed (the paper's default).
pub fn ordinal_seed(problem: &OptProblem) -> Vec<f64> {
    let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
    let cfg = OrdinalConfig {
        gap: problem.tol.eps1,
        tie_band: problem.tol.eps2.max(0.0),
        ..OrdinalConfig::default()
    };
    let fitted = ordinal_regression::fit(&inst, &cfg);
    project_to_simplex(&fitted.weights)
}

/// Linear-regression seed (weights projected onto the simplex).
pub fn linear_regression_seed(problem: &OptProblem) -> Vec<f64> {
    let inst = Instance::new(problem.data.features(), &problem.given, problem.tol);
    let fitted = linear_regression::fit(&inst, linear_regression::Variant::Default);
    project_to_simplex(&fitted.weights)
}

/// Grid seed: split `[0,1]^m` into `cells_per_dim^m` cells, lower-bound
/// each cell intersecting the simplex via
/// [`formulation::reduce_against_box`], return the center of the cell
/// with the smallest bound. Falls back to the uniform center when the
/// grid would exceed `max_cells`.
pub fn grid_seed(problem: &OptProblem, cells_per_dim: usize, max_cells: usize) -> Vec<f64> {
    let m = problem.m();
    assert!(cells_per_dim >= 1);
    // Shrink the grid until it fits the cell budget.
    let mut per_dim = cells_per_dim;
    while per_dim > 1 && (per_dim as f64).powi(m as i32) > max_cells as f64 {
        per_dim -= 1;
    }
    if per_dim <= 1 {
        return vec![1.0 / m as f64; m];
    }
    let width = 1.0 / per_dim as f64;
    let mut best: Option<(u64, Vec<f64>)> = None;
    let mut idx = vec![0usize; m];
    loop {
        // Cell [idx·width, (idx+1)·width] per dimension.
        let lo: Vec<f64> = idx.iter().map(|&i| i as f64 * width).collect();
        let hi: Vec<f64> = idx.iter().map(|&i| (i + 1) as f64 * width).collect();
        let lo_sum: f64 = lo.iter().sum();
        let hi_sum: f64 = hi.iter().sum();
        if lo_sum <= 1.0 && hi_sum >= 1.0 {
            let sys = formulation::reduce_against_box(problem, &lo, &hi);
            let bound = sys.error_lower_bound();
            if best.as_ref().map_or(true, |(b, _)| bound < *b) {
                let center: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| 0.5 * (l + h)).collect();
                best = Some((bound, project_to_simplex(&center)));
            }
        }
        // Advance the multi-index.
        let mut d = 0;
        loop {
            if d == m {
                return best
                    .map(|(_, w)| w)
                    .unwrap_or_else(|| vec![1.0 / m as f64; m]);
            }
            idx[d] += 1;
            if idx[d] < per_dim {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn instance(hidden: &[f64]) -> OptProblem {
        let m = hidden.len();
        let n = 25;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| (((i * (11 + 5 * j)) % n) as f64) / n as f64)
                    .collect()
            })
            .collect();
        let scores: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(hidden).map(|(a, w)| a * w).sum())
            .collect();
        let data = Dataset::from_rows((0..m).map(|j| format!("A{j}")).collect(), rows).unwrap();
        let given = GivenRanking::from_scores(&scores, 6, 0.0).unwrap();
        OptProblem::new(data, given).unwrap()
    }

    #[test]
    fn ordinal_seed_is_simplex_point_with_low_error() {
        let p = instance(&[0.7, 0.3]);
        let seed = ordinal_seed(&p);
        let sum: f64 = seed.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // OR recovers a linear ranking nearly exactly (it optimizes a
        // score-based proxy, so a small position error is expected).
        assert!(p.evaluate(&seed) <= 6, "error {}", p.evaluate(&seed));
    }

    #[test]
    fn linreg_seed_is_simplex_point() {
        let p = instance(&[0.5, 0.5]);
        let seed = linear_regression_seed(&p);
        let sum: f64 = seed.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(seed.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn grid_seed_prefers_good_cells() {
        let p = instance(&[0.9, 0.1]);
        let seed = grid_seed(&p, 5, 100);
        // Grid bound should steer toward high w0: the chosen seed must
        // be at least as good as the uniform center.
        let uniform = vec![0.5, 0.5];
        assert!(p.evaluate(&seed) <= p.evaluate(&uniform));
    }

    #[test]
    fn grid_seed_budget_fallback() {
        let p = instance(&[0.25, 0.25, 0.25, 0.25]);
        // 10^4 cells > 10 budget → falls back to uniform center.
        let seed = grid_seed(&p, 10, 10);
        assert_eq!(seed, vec![0.25; 4]);
    }

    #[test]
    fn grid_seed_skips_cells_off_simplex() {
        // With 2 dims and 4 cells/dim, only cells crossing Σw = 1
        // qualify; result must still be a valid simplex point.
        let p = instance(&[0.6, 0.4]);
        let seed = grid_seed(&p, 4, 1000);
        let sum: f64 = seed.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}
