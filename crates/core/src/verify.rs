//! Exact-arithmetic verification and the τ search (paper Section V-A).
//!
//! A floating-point solver can believe it found a zero-error function
//! while the function's *actual* induced ranking (computed precisely)
//! disagrees — the false positives of Table III. Verification recomputes
//! every score as an exact rational and compares the exact position
//! error against the solver's claim.

use crate::{OptProblem, Tolerances};
use rankhow_numeric::Rational;
use rankhow_ranking::{score_ranks_exact, scores_exact};

/// Outcome of verifying one weight vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerificationReport {
    /// Objective value under exact rational arithmetic.
    pub exact_error: u64,
    /// Objective value under f64 arithmetic (what the solver saw).
    pub f64_error: u64,
    /// Whether the two agree — a "verified" solution.
    pub consistent: bool,
}

/// Verify a weight vector against the exact scores, under the problem's
/// configured objective. Returns `None` when inputs are not finite
/// (cannot happen for validated datasets).
pub fn verify(problem: &OptProblem, weights: &[f64]) -> Option<VerificationReport> {
    let exact_scores = scores_exact(problem.data.features(), weights)?;
    let eps = Rational::from_f64(problem.tol.eps)?;
    let top = problem.given.top_k();
    let exact_ranks = score_ranks_exact(&exact_scores, &eps, top);
    // Rebuild a full-length rank vector (the measures only read ranked
    // tuples, so unranked slots can stay 0).
    let mut full_ranks = vec![0u32; problem.n()];
    for (&r, &rho) in top.iter().zip(&exact_ranks) {
        full_ranks[r] = rho;
    }
    let exact_error =
        rankhow_ranking::error_by_measure(problem.objective, &problem.given, &full_ranks);
    let f64_error = problem.objective_value(weights);
    Some(VerificationReport {
        exact_error,
        f64_error,
        consistent: exact_error == f64_error,
    })
}

/// Verify a solver's *claimed* error: the claim must match the exact
/// error (this is the Table III acceptance test — a claimed error lower
/// than the exact one is a false positive).
pub fn verify_claim(problem: &OptProblem, weights: &[f64], claimed_error: u64) -> bool {
    match verify(problem, weights) {
        Some(rep) => rep.exact_error == claimed_error,
        None => false,
    }
}

/// Pairs whose score difference falls inside the uncertified band
/// `(ε2, ε1)` for the given weights.
///
/// The Equation (2) thresholds deliberately exclude this band from the
/// certified solution space (Section V-A): a certified `δ_sr = 1`
/// requires `f(s) − f(r) ≥ ε1`, a certified `δ_sr = 0` requires
/// `f(s) − f(r) ≤ ε2`. A weight vector with a pair difference strictly
/// between the thresholds is still a *valid* OPT solution under
/// Definition 2 (beats iff the difference exceeds `ε`), but no certified
/// search — the literal MILP, the TREE arrangement enumeration, or the
/// branch-and-bound optimality proof — covers it. These are exactly the
/// paper's Section V-A "false negatives": the safety gap can hide
/// solutions from the solver. Sampling-based incumbents *can* land in
/// the band, which is why a verified [`crate::RankHow`] answer may
/// strictly beat the certified optimum.
///
/// Returns `(s, r, f(s) − f(r))` for each offending pair.
pub fn gap_band_pairs(problem: &OptProblem, weights: &[f64]) -> Vec<(usize, usize, f64)> {
    let features = problem.data.features();
    let (e1, e2) = (problem.tol.eps1, problem.tol.eps2);
    let mut out = Vec::new();
    let mut row_r = vec![0.0; features.m()];
    let mut row_s = vec![0.0; features.m()];
    for &r in problem.given.top_k() {
        features.copy_row_into(r, &mut row_r);
        for s in 0..features.n() {
            if s == r {
                continue;
            }
            features.copy_row_into(s, &mut row_s);
            // Pairwise-difference dot, matching the MILP's constraint
            // form `Σ (s.A_j − r.A_j)·w_j` bit for bit (a score
            // subtraction would round differently at the band edges).
            let diff: f64 = row_s
                .iter()
                .zip(&row_r)
                .zip(weights)
                .map(|((a, b), w)| (a - b) * w)
                .sum();
            if diff > e2 && diff < e1 {
                out.push((s, r, diff));
            }
        }
    }
    out
}

/// Whether `weights` relies on the uncertified `(ε2, ε1)` band — i.e.
/// whether any pair's score difference is outside every certified cell.
/// See [`gap_band_pairs`].
///
/// # Example
/// ```
/// use rankhow_core::{OptProblem, Tolerances};
/// use rankhow_data::Dataset;
/// use rankhow_ranking::GivenRanking;
///
/// let data = Dataset::from_rows(
///     vec!["a".into()],
///     vec![vec![1.0], vec![0.0]],
/// )
/// .unwrap();
/// let pi = GivenRanking::from_positions(vec![Some(1), Some(2)]).unwrap();
/// // ε = 0.5, ε1 = 2.0, ε2 = 0: the pair difference is w·1 = 1.0,
/// // which lies strictly inside (0, 2) — a gap-band point.
/// let p = OptProblem::with_tolerances(data, pi, Tolerances::explicit(0.5, 2.0, 0.0)).unwrap();
/// assert!(rankhow_core::verify::relies_on_gap_band(&p, &[1.0]));
/// // With a tight gap the same point is certified.
/// let mut tight = p.clone();
/// tight.tol = Tolerances::explicit(0.5, 0.6, 0.4);
/// assert!(!rankhow_core::verify::relies_on_gap_band(&tight, &[1.0]));
/// ```
pub fn relies_on_gap_band(problem: &OptProblem, weights: &[f64]) -> bool {
    !gap_band_pairs(problem, weights).is_empty()
}

/// The τ binary-search heuristic (Section V-A): find the smallest
/// precision tolerance τ̂ for which the solver's output verifies.
///
/// `solve` runs the solver on a problem with candidate tolerances and
/// returns `(weights, claimed_error)`. Each probe sets
/// `ε1 = ε + τ̂⁺, ε2 = max(ε − τ̂, 0)` per Lemmas 2–3. Larger τ̂ values
/// are safer (fewer false positives) but shrink the solution space
/// (false negatives), so the search returns the smallest verified τ̂.
pub fn find_tau<F>(problem: &OptProblem, solve: F, rounds: usize) -> f64
where
    F: Fn(&OptProblem) -> Option<(Vec<f64>, u64)>,
{
    let eps = problem.tol.eps;
    let mut lo = 0.0f64; // known-bad or untested
    let mut hi = eps.max(1e-6); // probe ceiling
    let mut best = hi;
    for _ in 0..rounds {
        let mid = 0.5 * (lo + hi);
        let tau = mid.min(eps);
        let probe_tol = Tolerances::from_eps_tau(eps, tau);
        let mut probe = problem.clone();
        probe.tol = probe_tol;
        match solve(&probe) {
            Some((w, claimed)) => {
                if verify_claim(&probe, &w, claimed) {
                    best = mid;
                    hi = mid; // try smaller
                } else {
                    lo = mid; // numerical problems: need larger τ
                }
            }
            None => {
                lo = mid;
            }
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn toy() -> OptProblem {
        let data = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![3.0, 1.0], vec![2.0, 2.0], vec![1.0, 3.0]],
        )
        .unwrap();
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), Some(3)]).unwrap();
        OptProblem::new(data, given).unwrap()
    }

    #[test]
    fn clean_solution_verifies() {
        let p = toy();
        let rep = verify(&p, &[1.0, 0.0]).unwrap();
        assert_eq!(rep.exact_error, 0);
        assert_eq!(rep.f64_error, 0);
        assert!(rep.consistent);
        assert!(verify_claim(&p, &[1.0, 0.0], 0));
    }

    #[test]
    fn wrong_claim_rejected() {
        let p = toy();
        // Claiming error 0 for the reversed function is a false positive.
        assert!(!verify_claim(&p, &[0.0, 1.0], 0));
        // Claiming its true error (4) passes.
        let rep = verify(&p, &[0.0, 1.0]).unwrap();
        assert!(verify_claim(&p, &[0.0, 1.0], rep.exact_error));
        assert_eq!(rep.exact_error, 4);
    }

    #[test]
    fn exact_and_f64_agree_on_well_separated_data() {
        let p = toy();
        for w in [[0.5, 0.5], [0.8, 0.2], [0.1, 0.9]] {
            let rep = verify(&p, &w).unwrap();
            assert!(rep.consistent, "w = {w:?}");
        }
    }

    #[test]
    fn catastrophic_cancellation_detected() {
        // Scores collide in f64 but differ exactly: f64 declares a tie
        // (both rank 1 at ε = 0 needs *exact* equality — here the f64
        // sums are bit-identical) while exact arithmetic separates them.
        let data = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![1e16, 1.0], vec![1e16, 2.0]],
        )
        .unwrap();
        let given = GivenRanking::from_positions(vec![Some(1), Some(2)]).unwrap();
        let p = OptProblem::new(data, given).unwrap();
        let w = [1.0 - 0.25, 0.25];
        let rep = verify(&p, &w).unwrap();
        // Exact: tuple 1 scores higher (bigger b) → ranking [2,1],
        // exact error = 2. f64: both scores absorb the small component.
        assert_eq!(rep.exact_error, 2);
        assert!(!rep.consistent, "f64 view: {}", rep.f64_error);
    }

    #[test]
    fn find_tau_returns_verified_value() {
        let mut p = toy();
        p.tol = Tolerances::from_eps_tau(1e-6, 1e-7);
        // A well-behaved "solver": always returns the perfect function
        // with its true error — every τ verifies, so the search drives
        // τ̂ toward the bottom.
        let tau = find_tau(
            &p,
            |probe| {
                let w = vec![1.0, 0.0];
                let e = probe.evaluate(&w);
                Some((w, e))
            },
            20,
        );
        assert!(tau <= 1e-6, "tau {tau}");
    }

    #[test]
    fn find_tau_grows_on_false_positives() {
        let mut p = toy();
        p.tol = Tolerances::from_eps_tau(1e-6, 1e-7);
        // A pathological solver that lies (claims error 0 for the
        // reversed function) whenever τ̂ is below a threshold.
        let tau = find_tau(
            &p,
            |probe| {
                if probe.tol.tau < 4e-7 {
                    Some((vec![0.0, 1.0], 0)) // false positive
                } else {
                    let w = vec![1.0, 0.0];
                    Some((w, 0))
                }
            },
            24,
        );
        assert!(tau >= 4e-7, "tau {tau} must clear the lying threshold");
    }
}
